#!/usr/bin/env python3
"""Data-mining a code base for weak-memory idioms with mole (Sec. 9).

The paper runs mole over a whole Debian release to find out which
weak-memory patterns programmers actually use and which axioms of the
model they rely on.  This example runs mole over the shipped corpus of
systems-code miniatures and prints the per-package census (the flavour
of Tab. XIII and XIV), then zooms into the RCU package to show the
individual cycles.

Run with::

    python examples/mole_census.py
"""

from collections import Counter

from repro.mole import analyse_corpus, analyse_program, debian_corpus
from repro.verification.examples import rcu_example


def corpus_census() -> None:
    corpus = debian_corpus()
    # Packages are independent: shard the censuses over one worker per
    # core (serial fallback on a single-core machine, same reports).
    reports = analyse_corpus(corpus, processes="auto")
    print(f"== corpus census: {len(corpus)} packages")
    total_patterns: Counter = Counter()
    total_axioms: Counter = Counter()
    for package in sorted(reports):
        report = reports[package]
        total_patterns.update(report.patterns())
        total_axioms.update(report.axioms())
        patterns = ", ".join(f"{name}x{count}" for name, count in report.patterns().items())
        print(f"  {package:22s} {report.num_cycles:3d} cycles   {patterns}")
    print()
    print("  aggregate pattern counts (most common idioms first):")
    for name, count in total_patterns.most_common():
        print(f"    {name:12s} {count}")
    print()
    print("  aggregate by axiom (what programmers rely on):")
    for axiom, count in total_axioms.most_common():
        print(f"    {axiom:18s} {count}")
    print()


def zoom_into_rcu() -> None:
    print("== the RCU publish/read idiom, cycle by cycle (Tab. XIV flavour)")
    report = analyse_program(rcu_example(fenced=True))
    for cycle in report.cycles:
        fences = {fence for fence_set in cycle.fences for fence in fence_set}
        fence_note = f" [fences: {', '.join(sorted(fences))}]" if fences else ""
        print(f"  {cycle.describe()}{fence_note}")
    print()
    print("  The mp cycles fall under OBSERVATION: the lwsync on the updater and the")
    print("  address dependency on the reader are exactly what the axiom requires.")


def main() -> None:
    corpus_census()
    zoom_into_rcu()


if __name__ == "__main__":
    main()
