#!/usr/bin/env python3
"""Fix your litmus test: automatic fence synthesis and repair.

A racy store-buffering program allows the non-SC outcome ``r1=0, r2=0``
on every weak architecture.  The :mod:`repro.fences` subsystem finds the
cheapest set of fences (and dependencies) that forbids it, splices them
into the instruction stream, and proves the repair by re-running the
herd simulator under the target model.

Run with::

    python examples/fix_your_litmus_test.py
"""

from repro.diy.families import shared_gap_family
from repro.fences import repair_test
from repro.fences.aeg import aeg_from_litmus
from repro.fences.cycles import critical_cycles
from repro.herd import simulate
from repro.litmus.ast import TestBuilder
from repro.litmus.registry import get_test


def racy_sb():
    """The canonical racy program: both threads publish then check."""
    builder = TestBuilder("my-sb", arch="power", doc="store buffering, unfenced")
    t0 = builder.thread()
    t0.store("x", 1)
    r1 = t0.load("y")
    t1 = builder.thread()
    t1.store("y", 1)
    r2 = t1.load("x")
    builder.exists({(0, r1): 0, (1, r2): 0})
    return builder.build()


def walkthrough() -> None:
    test = racy_sb()
    print("== the racy test")
    print(test.pretty())
    print()

    # 1. Before the repair, the non-SC outcome is observable on Power.
    before = simulate(test, "power")
    print(f"under power, {test.condition}: {before.verdict}")
    assert before.verdict == "Allow"
    print()

    # 2. The static analysis: one critical cycle, two write-read delays.
    aeg = aeg_from_litmus(test)
    cycles = critical_cycles(aeg)
    print(f"abstract event graph: {aeg.num_accesses()} accesses, "
          f"{len(cycles)} critical cycle(s)")
    for cycle in cycles:
        print(" ", cycle.describe())
    print()

    # 3. Synthesize, splice, validate.  Write-read pairs need the full
    #    fence on Power (lwsync would not do: sb+lwsyncs stays allowed).
    report = repair_test(test, "power")
    print(report.describe())
    assert report.success
    print()
    print("== the repaired test")
    print(report.repaired.pretty())
    print()
    after = simulate(report.repaired, "power")
    print(f"under power, after repair: {after.verdict}")
    assert after.verdict == "Forbid"


def cost_differentiation() -> None:
    """Where a cheap mechanism suffices, the synthesis picks it."""
    print()
    print("== cost differentiation on Power")
    for name in ("mp", "lb", "sb", "iriw"):
        report = repair_test(get_test(name), "power")
        mechanisms = ",".join(report.mechanisms)
        print(f"  {name:5s} -> {mechanisms:14s} (cost {report.cost:g})")
    # mp gets lwsync+addr (cheap), sb and iriw need full syncs.


def greedy_overpays() -> None:
    """Where cycles overlap, the greedy cover is not optimal.

    The ``sharedgap`` test interleaves two critical cycles through one
    reader thread: their delay spans overlap on a single insertion gap,
    and the cheapest cover puts one ``sync`` there.  Greedy instead
    grabs the cheap mechanism with the best pairs-per-cost ratio first
    and then still has to pay for the expensive pair separately.  The
    exact ILP strategy (``strategy="ilp"``, a pure-Python
    branch-and-bound over the 0/1 covering program) finds the shared
    fence — both repairs herd-validate, the optimal one costs less.
    """
    print()
    print("== greedy vs ILP on overlapping cycles")
    (test,) = shared_gap_family()
    print(test.pretty())
    greedy = repair_test(test, "power")
    optimal = repair_test(test, "power", strategy="ilp")
    for report in (greedy, optimal):
        print(f"  {report.strategy:6s} -> {','.join(report.mechanisms):22s} "
              f"(cost {report.cost:g})")
        assert report.success
        assert simulate(report.repaired, "power").verdict == "Forbid"
    assert optimal.cost < greedy.cost
    print(f"  the ILP cover saves {greedy.cost - optimal.cost:g} "
          f"over greedy, validated under power")


if __name__ == "__main__":
    walkthrough()
    cost_differentiation()
    greedy_overpays()
