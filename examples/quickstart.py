#!/usr/bin/env python3
"""Quickstart: simulate classic litmus tests under several memory models.

This walks through the core loop of the paper: take a litmus test
(message passing, store buffering, load buffering...), enumerate its
candidate executions, and ask different models — SC, TSO, Power, ARM —
which outcomes they allow.

Run with::

    python examples/quickstart.py
"""

from repro.herd import simulate
from repro.litmus.ast import TestBuilder
from repro.litmus.registry import get_entry, get_test

MODELS = ("sc", "tso", "power", "arm")


def show(test_name: str) -> None:
    entry = get_entry(test_name)
    test = entry.build()
    print(f"== {test.name}  ({entry.figure})")
    print(test.pretty())
    for model in MODELS:
        result = simulate(test, model)
        expected = entry.expectations.get(model)
        note = f"   (paper: {expected})" if expected else ""
        print(f"  {model:6s} -> {result.verdict}{note}")
    print()


def build_your_own() -> None:
    """Litmus tests can also be built programmatically."""
    builder = TestBuilder("my-mp+sync+ctrlisync", arch="power",
                          doc="message passing, hand-built")
    writer = builder.thread()
    writer.store("data", 1)
    writer.fence("sync")
    writer.store("ready", 1)

    reader = builder.thread()
    seen = reader.load("ready")
    value = reader.load_ctrl_dep("data", dep_on=seen, cfence="isync")
    builder.exists({(1, seen): 1, (1, value): 0})

    test = builder.build()
    print("== a hand-built test")
    print(test.pretty())
    for model in MODELS:
        print(f"  {model:6s} -> {simulate(test, model).verdict}")
    print()


def main() -> None:
    for name in ("mp", "mp+lwsync+addr", "sb", "sb+syncs", "lb", "lb+addrs", "iriw+syncs"):
        show(name)
    build_your_own()
    print("The 'Forbid' verdicts are the guarantees a programmer can rely on;")
    print("the 'Allow' verdicts are the reorderings the hardware may exhibit.")


if __name__ == "__main__":
    main()
