#!/usr/bin/env python3
"""Quickstart: one Session, many analyses.

The toolbox has one front door — ``repro.Session`` — that owns the
resolved models, the simulation-context cache and the campaign pool for
every verb.  This walks the core loop of the paper through it: take a
litmus test (message passing, store buffering, load buffering...), ask
different models — SC, TSO, Power, ARM — which outcomes they allow,
then stay in the same session to repair a racy test and sweep a batch,
with every verb reusing the state the previous ones warmed up.

Run with::

    python examples/quickstart.py
"""

from repro import Session
from repro.litmus.ast import TestBuilder
from repro.litmus.registry import get_entry

MODELS = ("sc", "tso", "power", "arm")


def show(session: Session, test_name: str) -> None:
    entry = get_entry(test_name)
    test = entry.build()
    print(f"== {test.name}  ({entry.figure})")
    print(test.pretty())
    for model in MODELS:
        result = session.simulate(test, model=model)
        expected = entry.expectations.get(model)
        note = f"   (paper: {expected})" if expected else ""
        print(f"  {model:6s} -> {result.verdict}{note}")
    print()


def build_your_own(session: Session) -> None:
    """Litmus tests can also be built programmatically."""
    builder = TestBuilder("my-mp+sync+ctrlisync", arch="power",
                          doc="message passing, hand-built")
    writer = builder.thread()
    writer.store("data", 1)
    writer.fence("sync")
    writer.store("ready", 1)

    reader = builder.thread()
    seen = reader.load("ready")
    value = reader.load_ctrl_dep("data", dep_on=seen, cfence="isync")
    builder.exists({(1, seen): 1, (1, value): 0})

    test = builder.build()
    print("== a hand-built test")
    print(test.pretty())
    for model in MODELS:
        print(f"  {model:6s} -> {session.verdict(test, model=model)}")
    print()


def one_session_many_verbs(session: Session) -> None:
    """The same session repairs, sweeps and serializes — sharing state."""
    mp = get_entry("mp").build()

    report = session.repair(mp)                     # validated fence synthesis
    print("== repairing mp on the same session")
    print("  " + report.describe())

    batch = [get_entry(name).build() for name in ("mp", "sb", "lb", "wrc")]
    swept = session.sweep(batch, model="tso")       # batch verdicts, one call
    print("  " + swept.describe())
    print("  as JSON:", swept.to_json()[:72] + "...")

    stats = session.stats()
    print(f"  session cache stats: {stats['context_cache']['hits']} context hits,"
          f" {stats['model_cache']['hits']} model-cache hits")
    print()


def main() -> None:
    with Session(model="power") as session:
        for name in ("mp", "mp+lwsync+addr", "sb", "sb+syncs", "lb",
                     "lb+addrs", "iriw+syncs"):
            show(session, name)
        build_your_own(session)
        one_session_many_verbs(session)
    print("The 'Forbid' verdicts are the guarantees a programmer can rely on;")
    print("the 'Allow' verdicts are the reorderings the hardware may exhibit.")


if __name__ == "__main__":
    main()
