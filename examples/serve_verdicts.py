#!/usr/bin/env python3
"""Serve verdicts over HTTP: the resilient front door to a session.

A long-running herding campaign wants one warm :class:`repro.Session`
— hot caches, a supervised worker pool — shared by many callers.  The
:mod:`repro.service` package wraps one session in a small asyncio HTTP
server with admission control, per-request deadlines, micro-batching
and a circuit breaker that degrades to in-process serial execution
when the worker pool misbehaves.

This example starts the service on a background thread (the same code
path ``python -m repro.service`` uses behind a real port), talks to it
with :class:`repro.service.ServiceClient`, and reads the operational
counters back from ``GET /stats``.

Run with::

    python examples/serve_verdicts.py
"""

import threading

from repro.service import ServiceClient, ServiceConfig, ServiceThread

SB_X86 = """
X86 my-sb
{ x=0; y=0; }
 P0          | P1          ;
 mov r1,$1   | mov r1,$1   ;
 mov [x],r1  | mov [y],r1  ;
 mov r2,[y]  | mov r2,[x]  ;
exists (0:r2=0 /\\ 1:r2=0)
"""


def main() -> None:
    config = ServiceConfig(port=0, batch_window=0.005)  # port=0: pick a free one
    with ServiceThread(config=config, model="power", processes=2) as handle:
        host, port = handle.address
        print(f"== verdict service listening on http://{host}:{port}")
        client = ServiceClient(host, port)

        # -- verdicts by registry name, with a per-request deadline ----------
        response = client.verdict(["sb", "mp", "lb"], deadline=30.0)
        print("\n== POST /verdict (registry names)")
        for line in response.results:
            print(f"  {line['test']:8s} {line['status']:8s} {line['verdict']}")

        # -- a verdict for litmus source, under a different model ------------
        response = client.verdict([{"source": SB_X86}], model="tso")
        print("\n== POST /verdict (inline litmus source, model=tso)")
        for line in response.results:
            print(f"  {line['test']:8s} {line['status']:8s} {line['verdict']}")

        # -- repair: the service batches it onto the same warm pool ----------
        response = client.repair(["sb"], deadline=60.0)
        print("\n== POST /repair")
        for line in response.results:
            report = line["report"]
            print(
                f"  {report['test']}: {report['before_verdict']} -> "
                f"{report['after_verdict']} via {report['mechanisms']}"
            )

        # -- concurrent clients coalesce into shared campaign batches --------
        def one_request(results, index):
            results[index] = client.verdict(["sb", "mp"], deadline=30.0).ok

        results = [None] * 4
        threads = [
            threading.Thread(target=one_request, args=(results, i)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(results), results

        stats = client.stats()["service"]["counters"]
        print("\n== GET /stats after the concurrent burst")
        print(f"  admitted      {stats['admitted']}")
        print(f"  batches       {stats['batches']}")
        print(f"  batched items {stats['batched_items']}")
        print(f"  shed (429)    {stats['shed']}")
        print(f"  breaker       {client.healthz()['breaker']}")

    print("\n== drained: in-flight work finished, pool closed, exit clean")


if __name__ == "__main__":
    main()
