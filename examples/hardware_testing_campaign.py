#!/usr/bin/env python3
"""A diy-style hardware testing campaign on simulated chips (Sec. 8.1).

The paper generates thousands of litmus tests and runs them on Power and
ARM machines, then compares the observations with the model.  This
example replays the methodology at a small scale:

1. generate a family of tests from critical cycles (the diy approach);
2. run them on the simulated Power and ARM machines — sharded over one
   worker process per core by the shared campaign runtime
   (``processes="auto"``; on a single-core machine this degrades to the
   serial path, with identical results either way);
3. report the Tab. V-style summary ("invalid" = observed but forbidden,
   "unseen" = allowed but never observed) and the Tab. VIII-style
   classification of the ARM anomalies by violated axiom.

Run with::

    python examples/hardware_testing_campaign.py
"""

from repro.core.architectures import power_arm_architecture
from repro.core.model import Model
from repro.diy.families import standard_family
from repro.hardware import (
    classify_anomalies,
    default_arm_chips,
    default_power_chips,
    run_campaign,
)
from repro.litmus.registry import get_test

ANOMALY_TESTS = (
    "coRR",
    "mp+dmb+fri-rfi-ctrlisb",
    "lb+data+fri-rfi-ctrl",
    "s+dmb+fri-rfi-data",
    "mp+dmb+pos-ctrlisb+bis",
)


def power_campaign() -> None:
    print("== Power campaign (Tab. V, left column)")
    tests = standard_family("power", max_threads=2, limit=80)
    report = run_campaign(
        tests, default_power_chips(), "power", iterations=200_000, processes="auto"
    )
    print("  " + report.describe())
    unseen = [result.test.name for result in report.unseen_tests][:8]
    print(f"  examples of unseen (allowed but not implemented): {', '.join(unseen)}")
    print()


def arm_campaign() -> None:
    print("== ARM campaign (Tab. V right column, Tab. VI, Tab. VIII)")
    tests = standard_family("arm", max_threads=2, limit=60)
    tests += [get_test(name) for name in ANOMALY_TESTS]
    chips = default_arm_chips()

    for model_name in ("power-arm", "arm", "arm-llh"):
        report = run_campaign(
            tests, chips, model_name, iterations=2_000_000, processes="auto"
        )
        print("  " + report.describe())
        if model_name == "power-arm":
            print("    anomalous observations (Tab. VI flavour):")
            for result in report.invalid_tests:
                count = result.total_target_observations()
                print(f"      {result.test.name:28s} Forbid, observed {count} times")
            classification = classify_anomalies(report, Model(power_arm_architecture()))
            print(f"    classification by violated axioms (Tab. VIII): {classification}")
    print()
    print("  Moving from the Power-ARM model to the proposed ARM model (and to the")
    print("  llh testing variant) makes the early-commit and load-load-hazard")
    print("  observations legal, which is exactly the paper's argument for the")
    print("  final ARM model.")


def main() -> None:
    power_campaign()
    arm_campaign()


if __name__ == "__main__":
    main()
