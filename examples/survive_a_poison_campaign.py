#!/usr/bin/env python3
"""Survive a poison campaign: quarantine, retry and self-healing pools.

Large sweeps and repair campaigns fan thousands of independent jobs
over worker processes, and at that scale the rare failure modes become
routine: a worker OOM-killed mid-chunk, a pathological test hanging the
enumeration, an exception that cannot even be pickled back to the
parent.  The campaign runtime supervises every pooled batch, so one
poison test costs exactly one result — never the batch.  This example

1. sweeps a diy family with a deterministic worker *crash* injected on
   one test: the batch completes, the victim is quarantined as a
   structured ``FailedItem``, and every other verdict matches a clean
   serial run,
2. re-runs with ``on_error="serial_retry"``: the fault only exists in
   worker processes, so the in-process retry heals it and the sweep is
   complete,
3. prints the supervision counters (``retries`` / ``worker_deaths`` /
   ``respawns`` / ``bisections`` / ``quarantined``) that
   ``session.stats()`` accumulates.

The injected fault comes from :mod:`repro.campaign.faults` — a
test-only seam; production campaigns pay one ``None`` check per job.

Run with::

    python examples/survive_a_poison_campaign.py
"""

from repro import Session
from repro.campaign import faults
from repro.diy import two_thread_family

# A small family, sized to span several worker chunks.
FAMILY = two_thread_family("power", limit=12)
VICTIM = FAMILY[5].name


def clean_reference():
    with Session(model="power") as session:
        return session.sweep(FAMILY)


def sweep_with_a_crashing_worker(reference) -> None:
    print(f"== quarantine: a worker crashes (os._exit) on {VICTIM!r}")
    faults.install(faults.FaultSpec("crash", VICTIM))
    try:
        with Session(
            model="power", processes=2, max_retries=1, retry_backoff=0.01
        ) as session:
            swept = session.sweep(FAMILY)
            for failed in swept.errors:
                print(
                    f"  quarantined {failed.item!r}: {failed.kind} "
                    f"after {failed.attempts} attempts ({failed.error})"
                )
            survivors = [v for v in reference.verdicts if v[0] != VICTIM]
            assert list(swept.verdicts) == survivors
            print(f"  {len(swept.verdicts)}/{len(FAMILY)} verdicts intact, "
                  "identical to the clean serial sweep")
            counters = session.stats()["supervisor"]["counters"]
            interesting = {k: v for k, v in counters.items() if v}
            print(f"  supervision counters: {interesting}")
    finally:
        faults.uninstall()
    print()


def heal_with_serial_retry(reference) -> None:
    print("== serial_retry: the same fault, healed in-process")
    faults.install(faults.FaultSpec("crash", VICTIM))
    try:
        with Session(
            model="power",
            processes=2,
            on_error="serial_retry",
            max_retries=0,
            retry_backoff=0.01,
        ) as session:
            swept = session.sweep(FAMILY)
            assert swept.errors == ()
            assert swept.verdicts == reference.verdicts
            retries = session.stats()["supervisor"]["counters"]["serial_retries"]
            print(f"  all {len(swept.verdicts)} verdicts recovered "
                  f"({retries:g} serial retries) — the fault only lived in workers")
    finally:
        faults.uninstall()
    print()


def main() -> None:
    reference = clean_reference()
    sweep_with_a_crashing_worker(reference)
    heal_with_serial_retry(reference)
    print("a poison job costs one result, never the campaign")


if __name__ == "__main__":
    main()
