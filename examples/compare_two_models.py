#!/usr/bin/env python3
"""Compare two memory models and find the smallest test telling them apart.

The paper's models form a hierarchy — SC forbids everything TSO
forbids, TSO everything Power forbids — but only *relative to what the
tests exercise*.  This example uses :mod:`repro.compare` to make those
claims mechanical:

1. compare TSO and Power over the 4-event corpus and rediscover the
   classic ``sb+syncs``-style separators (sync-fenced store buffering:
   TSO's fences restore SC there, Power's ``sync`` is needed and the
   unfenced shape stays allowed),
2. show that the *fence-free* corpus makes the hierarchy total:
   sc >= tso >= power with zero counterexamples,
3. run the memalloy-style filter: every corpus test forbidden by one
   model and allowed by another,
4. do the same through a :class:`~repro.session.Session` (warm pool,
   shared caches) — the comparator is a session verb like any other.

Run with::

    python examples/compare_two_models.py
"""

from repro import CorpusBudget, Session, compare_models
from repro.compare import find_distinguishing_tests


def tso_vs_power() -> None:
    print("== TSO vs Power on the 4-event corpus")
    report = compare_models("tso", "power", budget=CorpusBudget(max_events=4))
    print(report.describe())
    print(f"   corpus: {report.num_tests} tests, "
          f"{len(report.distinguishing)} distinguishing")
    assert report.verdict == "incomparable"
    assert "sb+syncs" in report.distinguishing, "the classic separator"
    witness = report.witness_a
    print(f"   minimal witness: {witness.name} "
          f"({witness.events} events) — verdicts {dict(witness.verdicts)}")
    print()


def fence_free_hierarchy() -> None:
    print("== the fence-free corpus, where the hierarchy is total")
    budget = CorpusBudget(max_events=6, fences=False)
    for strong, weak in (("sc", "tso"), ("tso", "power"), ("sc", "power")):
        report = compare_models(strong, weak, budget=budget)
        assert report.verdict == "stronger", report.describe()
        witness = report.witness_b
        print(f"   {strong} >= {weak}: {len(report.distinguishing)} tests "
              f"separate them, e.g. {witness.name} "
              f"(allowed by {weak}, forbidden by {strong})")
    print()


def memalloy_filter() -> None:
    print("== tests forbidden by Power but allowed by TSO (smallest first)")
    matches = find_distinguishing_tests(
        violates="power", satisfies="tso", budget=CorpusBudget(max_events=4)
    )
    for test in matches:
        print(f"   {test.name}")
    print()


def as_a_session_verb() -> None:
    print("== the same comparison as a Session verb (sharded, cached)")
    with Session(model="power", processes=2) as session:
        report = session.compare("tso", "power", budget=CorpusBudget(max_events=4))
        print(f"   {report.model_a} vs {report.model_b}: {report.verdict}, "
              f"witness {report.witness_a.name}")
        # model_b defaults to the session's own model:
        same = session.compare("power")
        assert same.equivalent
        print(f"   power vs itself: {same.verdict} over {same.num_tests} tests")
    print()


if __name__ == "__main__":
    tso_vs_power()
    fence_free_hierarchy()
    memalloy_filter()
    as_a_session_verb()
    print("done.")
