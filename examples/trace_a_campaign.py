#!/usr/bin/env python3
"""Observability: trace a repair campaign and read the counter tree.

Every layer of the toolbox is instrumented — the pruning engine counts
the rf/co candidates it enumerated and the subtrees it cut, the ILP
solver counts branch-and-bound nodes and LP-bound prunes, the campaign
runtime times every chunk, and all the caches report hits and misses
through one interface.  Nothing is collected until you ask:

* ``Session(telemetry=True)`` (or ``session.enable_telemetry()``) turns
  collection on for the process, including any campaign workers the
  session fans out to — their counters are merged back into the
  session's registry, so ``session.stats()`` is one coherent tree no
  matter where the work ran;
* ``session.trace(path)`` additionally tees the span trace (one JSON
  line per timed region, plus a trailing summary line) to a file.

Run with::

    python examples/trace_a_campaign.py
"""

import json
import os
import tempfile

from repro import Session
from repro.litmus.registry import get_test

TESTS = ("mp", "sb", "lb", "wrc", "iriw", "2+2w")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = os.path.join(tmp, "campaign-trace.jsonl")

        with Session(model="power", processes=2) as session:
            # Collect telemetry for the block and tee the trace to disk.
            with session.trace(trace_path):
                campaign = session.repair([get_test(name) for name in TESTS])
                sweep = session.sweep([get_test(name) for name in TESTS])
            stats = session.stats()

        print("== the campaign itself")
        print(campaign.describe())
        print(f"sweep: {[v for _, v in sweep.verdicts]}")

        print("\n== the merged counter tree (session + workers)")
        counters = stats["telemetry"]["counters"]
        for name in sorted(counters):
            print(f"  {name:<32} {counters[name]}")

        print("\n== every cache, one interface")
        for name, cache in sorted(stats["caches"].items()):
            print(
                f"  {name:<10} entries={cache['entries']:<4}"
                f" hits={cache['hits']:<4} misses={cache['misses']:<4}"
                f" hit_rate={cache['hit_rate']:.2f}"
            )

        print("\n== the span trace on disk")
        with open(trace_path) as handle:
            lines = [json.loads(line) for line in handle]
        spans, summary = lines[:-1], lines[-1]
        print(f"  {trace_path}: {len(spans)} spans + 1 summary line")
        slowest = sorted(spans, key=lambda s: -s["duration"])[:3]
        for span in slowest:
            tags = ",".join(f"{k}={v}" for k, v in sorted(span["tags"].items()))
            print(f"  {span['duration'] * 1e3:8.3f} ms  {span['name']}  [{tags}]")
        assert summary["type"] == "metrics"

        # The human-readable table of the same snapshot:
        print("\n== session.telemetry.snapshot().describe()")
        print(session.telemetry.snapshot().describe())


if __name__ == "__main__":
    main()
