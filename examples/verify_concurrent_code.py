#!/usr/bin/env python3
"""Verify concurrent systems code under weak memory (Sec. 8.4) and place fences.

This example uses the bounded model checker on the paper's three case
studies — the PostgreSQL latch idiom, Linux RCU and the Apache queue —
plus Dekker-style mutual exclusion:

* with the fences/dependencies the real code uses, every assertion holds
  under the Power model;
* strip them and the checker produces a counterexample execution, whose
  shape tells you (via the axioms, Sec. 4.7) which fence to insert.

Run with::

    python examples/verify_concurrent_code.py
"""

from repro.verification import all_examples, verify_program
from repro.verification.examples import dekker_example


def report(program, model="power") -> None:
    result = verify_program(program, model)
    print(f"  {result.describe()}")
    if not result.safe and result.counterexample is not None:
        execution = result.counterexample.execution
        reads = ", ".join(
            f"{event.eid}:{event.action}" for event in sorted(execution.reads)
        )
        print(f"    counterexample reads: {reads}")


def main() -> None:
    print("== the paper's case studies, as shipped (fenced) — Tab. XII")
    for program in all_examples(fenced=True):
        report(program)
    print()

    print("== the same idioms with fences and dependencies removed")
    for program in all_examples(fenced=False):
        report(program)
    report(dekker_example(fenced=False))
    print()

    print("== fence placement, guided by the axioms (Sec. 4.7)")
    print("  message-passing shapes (PgSQL, RCU, Apache) violate OBSERVATION when")
    print("  unfenced: a lightweight fence on the writer plus a dependency or")
    print("  control+isync on the reader restores safety.")
    for program in all_examples(fenced=True):
        result = verify_program(program, "power")
        print(f"    {program.name:8s} fenced again -> {'SAFE' if result.safe else 'UNSAFE'}")
    print("  store-buffering shapes (Dekker) violate PROPAGATION: only full fences help.")
    result = verify_program(dekker_example(fenced=True), "power")
    print(f"    Dekker with sync on both sides -> {'SAFE' if result.safe else 'UNSAFE'}")
    print()

    print("== everything is safe under Sequential Consistency, fences or not")
    for program in all_examples(fenced=False):
        result = verify_program(program, "sc")
        print(f"    {program.name:18s} under SC -> {'SAFE' if result.safe else 'UNSAFE'}")


if __name__ == "__main__":
    main()
