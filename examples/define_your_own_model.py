#!/usr/bin/env python3
"""Define a memory model in the cat language and simulate with it.

herd's defining feature (Sec. 8.3) is that the model is an input: a few
lines of relational definitions turn the tool into a simulator for that
model.  This example

1. loads the shipped ``power.cat`` (the text of Fig. 38) and checks a
   few tests with it,
2. defines a brand-new toy model — "TSO without the write-read
   relaxation", i.e. SC written in the TSO style — and compares it with
   the built-in models,
3. shows how easily a model can be weakened: removing the NO THIN AIR
   check makes load-buffering behaviours appear.

Run with::

    python examples/define_your_own_model.py
"""

from repro.cat import load_builtin_model, load_cat_model
from repro.herd import simulate
from repro.litmus.registry import get_test

TESTS = ("mp", "mp+lwsync+addr", "sb", "sb+syncs", "lb", "lb+addrs", "2+2w+lwsyncs")


def with_fig38_power() -> None:
    print("== the Power model of Fig. 38, interpreted from power.cat")
    cat_power = load_builtin_model("power")
    for name in TESTS:
        test = get_test(name)
        cat_verdict = simulate(test, cat_power).verdict
        builtin_verdict = simulate(test, "power").verdict
        marker = "==" if cat_verdict == builtin_verdict else "!!"
        print(f"  {name:18s} cat:{cat_verdict:7s} {marker} built-in:{builtin_verdict}")
    print()


STRONG_MODEL = """
strong-tso
(* TSO without the write-read relaxation: every program-order pair is
   preserved, so this is Sequential Consistency in TSO clothing. *)
acyclic po-loc|rf|fr|co as sc-per-location
let ppo = po
let fence = mfence
let hb = ppo|fence|rfe
acyclic hb as no-thin-air
let prop = ppo|fence|rfe|fr
irreflexive fre;prop;hb* as observation
acyclic co|prop as propagation
"""

NO_THIN_AIR_FREE = """
power-without-no-thin-air
(* The Power model with the NO THIN AIR check removed (Sec. 4.9 notes
   that software models such as C++ or Java allow certain lb patterns). *)
acyclic po-loc|rf|fr|co as sc-per-location
let dp = addr|data
let ii0 = dp|rdw|rfi
let ci0 = (ctrl+isync)|detour
let cc0 = dp|po-loc|ctrl|(addr;po)
let rec ii = ii0|ci|(ic;ci)|(ii;ii)
and ic = ii|cc|(ic;cc)|(ii;ic)
and ci = ci0|(ci;ii)|(cc;ci)
and cc = cc0|ci|(ci;ic)|(cc;cc)
let ppo = RR(ii)|RW(ic)
let fence = RM(lwsync)|WW(lwsync)|sync
let hb = ppo|fence|rfe
let prop-base = (fence|(rfe;fence));hb*
let prop = WW(prop-base)|(com*;prop-base*;sync;hb*)
irreflexive fre;prop;hb* as observation
acyclic co|prop as propagation
"""


def with_custom_models() -> None:
    print("== a hand-written strong model vs the built-in ones")
    strong = load_cat_model(STRONG_MODEL, name="strong-tso")
    for name in ("sb", "mp", "iriw"):
        test = get_test(name)
        print(
            f"  {name:6s} strong-tso:{simulate(test, strong).verdict:7s} "
            f"tso:{simulate(test, 'tso').verdict:7s} sc:{simulate(test, 'sc').verdict}"
        )
    print()

    print("== dropping NO THIN AIR makes lb+addrs observable")
    permissive = load_cat_model(NO_THIN_AIR_FREE, name="power-no-thin-air")
    for name in ("lb", "lb+addrs", "mp+lwsync+addr"):
        test = get_test(name)
        print(
            f"  {name:16s} power:{simulate(test, 'power').verdict:7s} "
            f"without-no-thin-air:{simulate(test, permissive).verdict}"
        )
    print()


def main() -> None:
    with_fig38_power()
    with_custom_models()


if __name__ == "__main__":
    main()
