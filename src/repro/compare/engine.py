"""The comparison driver: paired verdicts, classification, witnesses.

``compare_models(a, b)`` answers "is A stronger than B, and show me a
minimal witness" the way memalloy's comparator does — sweep a bounded
corpus of candidate tests under both models and classify the allowed
sets — with two economies on top:

* **paired contexts** — both models' verdicts of one test share one
  :class:`~repro.campaign.context.SimulationContext`, so the
  model-independent front half of the pipeline (thread paths, event
  interning, plan skeletons) is paid once per test instead of once per
  (test, model) pair;
* **campaign sharding** — the paired jobs fan out over the supervised
  campaign runtime (:class:`~repro.campaign.jobs.VerdictPairJob`) when
  a pool or worker count is supplied, with exactly the serial results
  (asserted in the test-suite) and quarantine semantics for poison
  tests.

Minimality of a witness is certified, not assumed: after the sweep,
every budget-corpus member strictly smaller than the candidate witness
that was *not* already swept (possible when the caller supplies its own
test list) is re-checked serially before the witness is declared
minimal.

``find_distinguishing_tests(violates=..., satisfies=...)`` is the
memalloy use-case as a first-class filter: the corpus tests forbidden
by every ``violates`` model and allowed by every ``satisfies`` model,
smallest first.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.compare.corpus import (
    CorpusBudget,
    comparison_corpus,
    event_count,
    size_key,
    smaller_members,
)
from repro.compare.report import (
    ComparisonReport,
    Row,
    classify,
    minimal_witness,
)
from repro.herd.simulator import ModelLike, Simulator, resolve_model
from repro.litmus.ast import LitmusTest

__all__ = ["compare_models", "find_distinguishing_tests", "paired_verdicts"]

PairedVerdicts = List[Tuple[str, Tuple[str, ...]]]


def model_label(model: ModelLike) -> str:
    """The display name of a model-like value (the resolved name for
    strings, exactly as the sweep drivers report it)."""
    if isinstance(model, str):
        return getattr(resolve_model(model), "name", model.lower())
    return getattr(model, "name", str(model))


def paired_verdicts(
    tests: Sequence[LitmusTest],
    models: Sequence[ModelLike],
    *,
    engine: str = "auto",
    processes=None,
    pool=None,
    context_cache=None,
    chunk_size: int = 8,
    policy=None,
    errors: Optional[List] = None,
) -> PairedVerdicts:
    """``(test name, verdict per model)`` for every test, in order.

    Shards :class:`~repro.campaign.jobs.VerdictPairJob` chunks over the
    campaign runtime when every model is a *name* and a pool (or a
    worker count above one) is available; otherwise runs in-process,
    still sharing one context per test across all models.  Quarantined
    tests of a sharded run are dropped from the result and recorded on
    ``errors``.
    """
    from repro.campaign import runner as campaign_runner

    tests = list(tests)
    models = list(models)
    sharded = (
        all(isinstance(model, str) for model in models)
        and (pool is not None or campaign_runner.worker_count(processes) > 1)
        and len(tests) > 1
    )
    if sharded:
        from repro.campaign.jobs import VerdictPairJob, verdict_pair_chunk

        jobs = [
            VerdictPairJob(test, tuple(models), engine) for test in tests
        ]
        return list(
            campaign_runner.run_sharded(
                verdict_pair_chunk,
                jobs,
                processes=processes,
                chunk_size=chunk_size,
                pool=pool,
                policy=policy,
                errors=errors,
            )
        )

    simulators = [Simulator(model, engine=engine) for model in models]
    results: PairedVerdicts = []
    for test in tests:
        context = context_cache.get(test) if context_cache is not None else None
        results.append(
            (
                test.name,
                tuple(
                    simulator.verdict(test, context=context)
                    for simulator in simulators
                ),
            )
        )
    return results


def _build_rows(
    pairs: PairedVerdicts, by_name: Dict[str, LitmusTest]
) -> List[Row]:
    rows: List[Row] = []
    for name, verdicts in pairs:
        test = by_name[name]
        verdict_a, verdict_b = verdicts[0], verdicts[1]
        rows.append(
            (name, verdict_a, verdict_b, event_count(test), test.num_threads())
        )
    return rows


def compare_models(
    model_a: ModelLike,
    model_b: ModelLike,
    *,
    budget: Optional[CorpusBudget] = None,
    tests: Optional[Sequence[LitmusTest]] = None,
    engine: str = "auto",
    processes=None,
    pool=None,
    context_cache=None,
    chunk_size: int = 8,
    policy=None,
    errors: Optional[List] = None,
) -> ComparisonReport:
    """Compare two models over a bounded corpus (or explicit tests).

    ``budget`` (default :class:`~repro.compare.corpus.CorpusBudget`)
    selects the corpus when ``tests`` is not given; when both are
    given, the budget additionally drives the minimality re-check —
    smaller budget-corpus members missing from ``tests`` are swept
    serially before a witness is declared minimal.
    """
    if tests is None and budget is None:
        budget = CorpusBudget()
    corpus = list(tests) if tests is not None else comparison_corpus(budget)
    by_name = {test.name: test for test in corpus}

    failed: List = [] if errors is None else errors
    first_failure = len(failed)
    pairs = paired_verdicts(
        corpus,
        (model_a, model_b),
        engine=engine,
        processes=processes,
        pool=pool,
        context_cache=context_cache,
        chunk_size=chunk_size,
        policy=policy,
        errors=failed,
    )
    rows = _build_rows(pairs, by_name)

    label_a, label_b = model_label(model_a), model_label(model_b)
    witness_a = minimal_witness(rows, label_a, label_b, "a")
    witness_b = minimal_witness(rows, label_a, label_b, "b")

    # Minimality re-check: any budget-corpus member strictly smaller
    # than a candidate witness that the sweep did not cover gets its own
    # paired verdict (serially, contexts shared) before minimality is
    # declared.  A no-op when the corpus came from the budget itself.
    if budget is not None and (witness_a or witness_b):
        bound = max(
            (witness.events, witness.threads, witness.name)
            for witness in (witness_a, witness_b)
            if witness is not None
        )
        missing = [
            test
            for test in smaller_members(budget, bound)
            if test.name not in by_name
        ]
        if missing:
            extra = paired_verdicts(
                missing,
                (model_a, model_b),
                engine=engine,
                context_cache=context_cache,
            )
            by_name.update({test.name: test for test in missing})
            rows.extend(_build_rows(extra, by_name))
            rows.sort(key=lambda row: (row[3], row[4], row[0]))
            witness_a = minimal_witness(rows, label_a, label_b, "a")
            witness_b = minimal_witness(rows, label_a, label_b, "b")

    return ComparisonReport(
        model_a=label_a,
        model_b=label_b,
        verdict=classify(rows),
        rows=tuple(rows),
        witness_a=witness_a,
        witness_b=witness_b,
        budget=budget.as_dict() if budget is not None else None,
        errors=tuple(failed[first_failure:]),
    )


def find_distinguishing_tests(
    violates: Union[ModelLike, Sequence[ModelLike]] = (),
    satisfies: Union[ModelLike, Sequence[ModelLike]] = (),
    *,
    budget: Optional[CorpusBudget] = None,
    tests: Optional[Sequence[LitmusTest]] = None,
    engine: str = "auto",
    processes=None,
    pool=None,
    context_cache=None,
    chunk_size: int = 8,
    policy=None,
    errors: Optional[List] = None,
) -> List[LitmusTest]:
    """Corpus tests forbidden by every ``violates`` model and allowed
    by every ``satisfies`` model, smallest first (memalloy's
    ``-violates X -satisfies Y``)."""
    violates = list(violates) if isinstance(violates, (list, tuple)) else [violates]
    satisfies = list(satisfies) if isinstance(satisfies, (list, tuple)) else [satisfies]
    if not violates and not satisfies:
        raise ValueError("pass at least one violates= or satisfies= model")
    if tests is None and budget is None:
        budget = CorpusBudget()
    corpus = list(tests) if tests is not None else comparison_corpus(budget)
    by_name = {test.name: test for test in corpus}

    pairs = paired_verdicts(
        corpus,
        [*violates, *satisfies],
        engine=engine,
        processes=processes,
        pool=pool,
        context_cache=context_cache,
        chunk_size=chunk_size,
        policy=policy,
        errors=errors,
    )
    split = len(violates)
    matching = [
        by_name[name]
        for name, verdicts in pairs
        if all(verdict == "Forbid" for verdict in verdicts[:split])
        and all(verdict == "Allow" for verdict in verdicts[split:])
    ]
    return sorted(matching, key=size_key)
