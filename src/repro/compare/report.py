"""The structured result of one model comparison.

Terminology follows the memalloy comparator: model A is **stronger**
than model B when A forbids every test B forbids *and* forbids at least
one test B allows — equivalently, allowed(A) is a strict subset of
allowed(B) over the swept corpus.  A test allowed by one model and
forbidden by the other is a **distinguishing** test (a witness of one
direction); the minimal witness of a direction is the smallest such
test by (events, threads, name).  With witnesses in both directions the
models are **incomparable**; with none they are **equivalent on the
corpus** — never "equivalent", because the claim cannot outrun the
budget that was swept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.report import JsonReportMixin

__all__ = ["ComparisonReport", "Row", "Witness", "classify", "minimal_witness"]

#: One swept test: (name, verdict under A, verdict under B, events, threads).
Row = Tuple[str, str, str, int, int]

STRONGER = "stronger"
WEAKER = "weaker"
INCOMPARABLE = "incomparable"
EQUIVALENT = "equivalent-on-corpus"


@dataclass(frozen=True)
class Witness:
    """A minimal distinguishing test of one direction."""

    name: str
    events: int
    threads: int
    #: the verdict of the model that *allows* this witness, and of the
    #: model that forbids it, keyed by model name.
    verdicts: Tuple[Tuple[str, str], ...]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "test": self.name,
            "events": self.events,
            "threads": self.threads,
            "verdicts": {model: verdict for model, verdict in self.verdicts},
        }


def _distinguishers(rows: Sequence[Row]) -> Tuple[List[Row], List[Row]]:
    """Rows allowed only by A, and rows allowed only by B."""
    allowed_a_only = [r for r in rows if r[1] == "Allow" and r[2] == "Forbid"]
    allowed_b_only = [r for r in rows if r[2] == "Allow" and r[1] == "Forbid"]
    return allowed_a_only, allowed_b_only


def classify(rows: Sequence[Row]) -> str:
    """The comparison verdict of a full paired-verdict table."""
    allowed_a_only, allowed_b_only = _distinguishers(rows)
    if allowed_a_only and allowed_b_only:
        return INCOMPARABLE
    if allowed_b_only:
        # B allows tests A forbids, and never the converse: A stronger.
        return STRONGER
    if allowed_a_only:
        return WEAKER
    return EQUIVALENT


def minimal_witness(
    rows: Sequence[Row], model_a: str, model_b: str, direction: str = "a"
) -> Optional[Witness]:
    """The smallest row allowed only by A (``direction="a"``) or only
    by B (``direction="b"``); rows are assumed corpus-sorted."""
    allowed_a_only, allowed_b_only = _distinguishers(rows)
    pool = allowed_a_only if direction == "a" else allowed_b_only
    if not pool:
        return None
    name, verdict_a, verdict_b, events, threads = min(
        pool, key=lambda row: (row[3], row[4], row[0])
    )
    return Witness(
        name=name,
        events=events,
        threads=threads,
        verdicts=((model_a, verdict_a), (model_b, verdict_b)),
    )


@dataclass
class ComparisonReport(JsonReportMixin):
    """Everything one comparison established, on the Report protocol."""

    model_a: str
    model_b: str
    #: the comparison verdict: "stronger" / "weaker" (of A relative to
    #: B), "incomparable", or "equivalent-on-corpus".
    verdict: str
    #: per swept test, in corpus (size) order.
    rows: Tuple[Row, ...]
    #: minimal test allowed by A and forbidden by B (None if A's
    #: allowed set is contained in B's over the corpus).
    witness_a: Optional[Witness] = None
    #: minimal test allowed by B and forbidden by A.
    witness_b: Optional[Witness] = None
    #: the search budget swept (None when the caller supplied tests).
    budget: Optional[Dict[str, Any]] = None
    #: quarantined tests of a sharded comparison.
    errors: Tuple = field(default=())

    @property
    def num_tests(self) -> int:
        return len(self.rows)

    @property
    def distinguishing(self) -> Tuple[str, ...]:
        """Names of every test the two models disagree on."""
        return tuple(row[0] for row in self.rows if row[1] != row[2])

    @property
    def equivalent(self) -> bool:
        return self.verdict == EQUIVALENT

    def verdicts_of(self, name: str) -> Tuple[str, str]:
        for row in self.rows:
            if row[0] == name:
                return row[1], row[2]
        raise KeyError(f"no test named {name!r} in this comparison")

    def _describe_witness(self, witness: Witness, allowing: str, forbidding: str) -> str:
        return (
            f"{allowing} allows {witness.name} ({witness.events} events, "
            f"{witness.threads} threads) where {forbidding} forbids it"
        )

    def describe(self) -> str:
        lines = [
            f"{self.model_a} vs {self.model_b} on {self.num_tests} tests: "
            f"{self.verdict} ({len(self.distinguishing)} distinguishing)"
        ]
        if self.witness_a is not None:
            lines.append(
                "  " + self._describe_witness(self.witness_a, self.model_a, self.model_b)
            )
        if self.witness_b is not None:
            lines.append(
                "  " + self._describe_witness(self.witness_b, self.model_b, self.model_a)
            )
        if self.errors:
            lines.append(f"  {len(self.errors)} tests quarantined")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "model-comparison",
            "model_a": self.model_a,
            "model_b": self.model_b,
            "verdict": self.verdict,
            "num_tests": self.num_tests,
            "distinguishing": list(self.distinguishing),
            "witness_a": self.witness_a.to_dict() if self.witness_a else None,
            "witness_b": self.witness_b.to_dict() if self.witness_b else None,
            "budget": dict(self.budget) if self.budget is not None else None,
            "errors": [error.to_dict() for error in self.errors],
            "rows": [list(row) for row in self.rows],
        }
