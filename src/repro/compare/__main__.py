"""Command line for the model comparator: ``python -m repro.compare A B``.

Compares two models over a bounded corpus and prints the verdict with
the minimal witness per direction, or — with ``--violates`` /
``--satisfies`` — lists the corpus tests matching a memalloy-style
filter (forbidden by every ``--violates`` model, allowed by every
``--satisfies`` model), smallest first.

::

    $ python -m repro.compare tso power --events 4
    tso vs power on 187 tests: incomparable (57 distinguishing)
      tso allows r+syncs (4 events, 2 threads) where power forbids it
      power allows lb (4 events, 2 threads) where tso forbids it

Exit status is 0 whenever the comparison ran; ``--json`` emits the full
:class:`~repro.compare.report.ComparisonReport` dictionary instead.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.compare.corpus import CorpusBudget, event_count


def _processes(value: str):
    return value if value == "auto" else int(value)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.compare",
        description=(
            "Compare two weak-memory models by sweeping a bounded corpus "
            "of litmus tests and reporting minimal distinguishing witnesses."
        ),
    )
    parser.add_argument(
        "models",
        nargs="*",
        help="two model names to compare (omit when using --violates/--satisfies)",
    )
    parser.add_argument(
        "--violates",
        action="append",
        default=[],
        metavar="MODEL",
        help="filter mode: keep tests forbidden by MODEL (repeatable)",
    )
    parser.add_argument(
        "--satisfies",
        action="append",
        default=[],
        metavar="MODEL",
        help="filter mode: keep tests allowed by MODEL (repeatable)",
    )
    parser.add_argument(
        "--events", type=int, default=6, help="event-count bound of the corpus"
    )
    parser.add_argument(
        "--threads", type=int, default=3, help="thread-count bound of the corpus"
    )
    parser.add_argument("--arch", default="power", help="corpus architecture")
    parser.add_argument(
        "--no-fences",
        action="store_true",
        help="fence-free corpus (where sc >= tso >= power is total)",
    )
    parser.add_argument(
        "--no-deps", action="store_true", help="drop dependency mechanisms"
    )
    parser.add_argument(
        "--no-registry", action="store_true", help="diy-generated tests only"
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="keep only the N smallest tests"
    )
    parser.add_argument(
        "--engine",
        default="auto",
        help="enumeration engine (auto/pruning/optimal/naive)",
    )
    parser.add_argument(
        "--processes",
        type=_processes,
        default=None,
        help='shard paired verdicts over N workers ("auto" for one per core)',
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    budget = CorpusBudget(
        max_events=options.events,
        max_threads=options.threads,
        arch=options.arch,
        fences=not options.no_fences,
        dependencies=not options.no_deps,
        include_registry=not options.no_registry,
        limit=options.limit,
    )
    filtering = bool(options.violates or options.satisfies)
    if filtering and options.models:
        print(
            "pass either two positional models or --violates/--satisfies, not both",
            file=sys.stderr,
        )
        return 2
    if not filtering and len(options.models) != 2:
        print("pass exactly two model names (e.g. tso power)", file=sys.stderr)
        return 2

    if filtering:
        from repro.compare.engine import find_distinguishing_tests

        matches = find_distinguishing_tests(
            violates=options.violates,
            satisfies=options.satisfies,
            budget=budget,
            engine=options.engine,
            processes=options.processes,
        )
        if options.json:
            print(
                json.dumps(
                    [
                        {
                            "test": test.name,
                            "events": event_count(test),
                            "threads": test.num_threads(),
                        }
                        for test in matches
                    ],
                    indent=2,
                )
            )
        else:
            clause = " and ".join(
                part
                for part in (
                    f"forbidden by {', '.join(options.violates)}" if options.violates else "",
                    f"allowed by {', '.join(options.satisfies)}" if options.satisfies else "",
                )
                if part
            )
            print(f"{len(matches)} tests {clause} (smallest first):")
            for test in matches:
                print(
                    f"  {test.name} ({event_count(test)} events, "
                    f"{test.num_threads()} threads)"
                )
        return 0

    from repro.compare.engine import compare_models

    model_a, model_b = options.models
    report = compare_models(
        model_a,
        model_b,
        budget=budget,
        engine=options.engine,
        processes=options.processes,
    )
    if options.json:
        print(report.to_json(indent=2))
    else:
        print(report.describe())
    return 0


if __name__ == "__main__":
    sys.exit(main())
