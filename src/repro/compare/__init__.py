"""Model comparison: synthesize litmus tests that distinguish two models.

The memalloy-style comparator (ROADMAP: "is model A stronger than B,
and show me a witness"): sweep a bounded corpus of diy-generated and
registry tests under two models at once — one shared simulation context
per test, paired jobs sharded over the campaign runtime — and classify
the allowed sets into ``stronger`` / ``weaker`` / ``incomparable`` /
``equivalent-on-corpus`` with a minimal distinguishing witness per
direction.

::

    from repro.compare import CorpusBudget, compare_models

    report = compare_models("tso", "power", budget=CorpusBudget(max_events=4))
    print(report.verdict)                  # "incomparable"
    print(report.witness_a.name)           # "r+syncs" (4 events)
    assert "sb+syncs" in report.distinguishing

Also available as :meth:`repro.session.Session.compare` (warm pool and
caches), ``POST /compare`` on the verdict service, and the
``python -m repro.compare A B`` command line.
"""

from repro.compare.corpus import (
    CorpusBudget,
    comparison_corpus,
    event_count,
    size_key,
    uses_dependencies,
    uses_fences,
)
from repro.compare.engine import (
    compare_models,
    find_distinguishing_tests,
    paired_verdicts,
)
from repro.compare.report import (
    ComparisonReport,
    Witness,
    classify,
    minimal_witness,
)

__all__ = [
    "ComparisonReport",
    "CorpusBudget",
    "Witness",
    "classify",
    "compare_models",
    "comparison_corpus",
    "event_count",
    "find_distinguishing_tests",
    "minimal_witness",
    "paired_verdicts",
    "size_key",
    "uses_dependencies",
    "uses_fences",
]
