"""Bounded search corpora for model comparison.

A comparison between two models is only as strong as the tests it
sweeps, so the corpus is the comparator's search *budget*: every diy
critical cycle whose generated test fits under an event-count bound,
the extended (wrc/iriw) shapes, and optionally the named registry tests
of the same architecture.  The enumeration mirrors memalloy's
``-events N`` switch (SNIPPETS.md #3): the claim "A is stronger than B"
is always relative to the swept corpus, and the *minimal* witness is
minimal over it.

Tests are deduplicated by canonical diy name (same name == same shape,
exactly as :func:`repro.diy.families._generate` does) with diy-generated
tests taking precedence over registry homonyms, and returned sorted by
:func:`size_key` — fewest events, then fewest threads, then name — so a
linear scan of the corpus visits smaller candidates first and the first
distinguishing row *is* the minimal witness.

``fences=False`` drops every cycle with a Fenced edge (and every
registry test containing a fence instruction): the fence-free corpus is
where the paper's hierarchy sc >= tso >= power is total — fences such
as Power's ``sync`` are uninterpreted by the TSO architecture, which
makes the full corpora incomparable in both directions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.diy.cycles import Cycle
from repro.diy.families import critical_cycles, extended_family
from repro.diy.generator import generate_test
from repro.litmus.ast import LitmusTest
from repro.litmus.instructions import (
    Branch,
    Compare,
    CompareImmediate,
    Fence,
    Load,
    Store,
    Xor,
)

__all__ = [
    "CorpusBudget",
    "comparison_corpus",
    "event_count",
    "size_key",
    "uses_dependencies",
    "uses_fences",
]

#: Instruction classes that only appear in dependency idioms (false
#: address/data dependencies are built on xor, control dependencies on
#: compare-and-branch).
_DEP_MARKERS = (Xor, Compare, CompareImmediate, Branch)


@dataclass(frozen=True)
class CorpusBudget:
    """The search budget of one comparison.

    ``max_events`` bounds the memory-access count of every candidate
    test (memalloy's ``-events``); ``max_threads`` additionally bounds
    the critical-cycle enumeration (each cycle thread carries two
    accesses, so threads beyond ``max_events // 2`` never fit anyway);
    ``fences``/``dependencies`` gate the per-thread mechanism
    vocabulary; ``include_registry`` adds the named registry tests of
    the budget's architecture; ``limit`` keeps only the smallest N
    corpus members after sorting.
    """

    max_events: int = 6
    max_threads: int = 3
    arch: str = "power"
    fences: bool = True
    dependencies: bool = True
    include_registry: bool = True
    limit: Optional[int] = None

    def __post_init__(self):
        if self.max_events < 4:
            raise ValueError(
                f"max_events must be at least 4 (the smallest critical "
                f"cycle has two 2-access threads), got {self.max_events}"
            )
        if self.max_threads < 2:
            raise ValueError(
                f"max_threads must be at least 2, got {self.max_threads}"
            )
        if self.limit is not None and self.limit < 1:
            raise ValueError(f"limit must be positive or None, got {self.limit}")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "max_events": self.max_events,
            "max_threads": self.max_threads,
            "arch": self.arch,
            "fences": self.fences,
            "dependencies": self.dependencies,
            "include_registry": self.include_registry,
            "limit": self.limit,
        }


def event_count(test: LitmusTest) -> int:
    """Memory accesses of a test (loads + stores, all threads)."""
    return sum(
        isinstance(instruction, (Load, Store))
        for thread in test.threads
        for instruction in thread
    )


def size_key(test: LitmusTest) -> Tuple[int, int, str]:
    """The corpus order: fewest events, then fewest threads, then name."""
    return (event_count(test), test.num_threads(), test.name)


def uses_fences(test: LitmusTest) -> bool:
    """Does the test contain any fence instruction?"""
    return any(
        isinstance(instruction, Fence)
        for thread in test.threads
        for instruction in thread
    )


def uses_dependencies(test: LitmusTest) -> bool:
    """Does the test contain a dependency idiom (xor / compare+branch)?"""
    return any(
        isinstance(instruction, _DEP_MARKERS)
        for thread in test.threads
        for instruction in thread
    )


def _cycle_in_budget(cycle: Cycle, budget: CorpusBudget) -> bool:
    for edge in cycle.edges:
        if edge.kind == "Fenced" and not budget.fences:
            return False
        if edge.kind == "Dp" and not budget.dependencies:
            return False
    return True


def _test_in_budget(test: LitmusTest, budget: CorpusBudget) -> bool:
    if event_count(test) > budget.max_events:
        return False
    if test.num_threads() > budget.max_threads:
        return False
    if not budget.fences and uses_fences(test):
        return False
    if not budget.dependencies and uses_dependencies(test):
        return False
    return True


def _candidates(budget: CorpusBudget) -> Iterator[LitmusTest]:
    """All in-budget candidates, diy cycles first (they own the
    canonical names), then the extended shapes, then the registry."""
    cycle_threads = range(2, min(budget.max_threads, budget.max_events // 2) + 1)
    for num_threads in cycle_threads:
        for cycle in critical_cycles(num_threads, budget.arch):
            if not _cycle_in_budget(cycle, budget):
                continue
            test = generate_test(cycle, arch=budget.arch)
            # The edge-level filter is only a cheap pre-screen: some
            # mechanisms cross categories at the instruction level (a
            # ctrl+isync dependency emits a fence), so the generated
            # test is re-checked against the instruction-level truth.
            if _test_in_budget(test, budget):
                yield test
    for test in extended_family(budget.arch):
        if _test_in_budget(test, budget):
            yield test
    if budget.include_registry:
        from repro.litmus.registry import all_tests

        for test in all_tests():
            if test.arch == budget.arch and _test_in_budget(test, budget):
                yield test


def comparison_corpus(budget: Optional[CorpusBudget] = None) -> List[LitmusTest]:
    """The sorted, deduplicated corpus of one comparison budget."""
    budget = budget or CorpusBudget()
    tests: Dict[str, LitmusTest] = {}
    for test in _candidates(budget):
        # First occurrence wins: diy tests precede registry homonyms,
        # so "sb" always means the canonical generated shape.
        tests.setdefault(test.name, test)
    ordered = sorted(tests.values(), key=size_key)
    if budget.limit is not None:
        ordered = ordered[: budget.limit]
    return ordered


def smaller_members(
    budget: CorpusBudget, key: Tuple[int, int, str]
) -> Iterator[LitmusTest]:
    """Corpus members strictly smaller than *key* (the witness
    re-checking walk of :func:`repro.compare.engine.compare_models`)."""
    for test in comparison_corpus(budget):
        if size_key(test) < key:
            yield test
        else:
            break
