"""The pseudo instruction set used by litmus tests.

The paper's litmus tests are written in Power, ARM or x86 assembly; the
only thing the models care about is the *event structure* each
instruction generates (Sec. 5).  We therefore use a single architecture
neutral instruction set and map the assembly mnemonics of each dialect
onto it in :mod:`repro.litmus.parser`.

====================  =============  ==========  =======================
instruction           Power          ARM         x86 (simplified)
====================  =============  ==========  =======================
MoveImmediate         li             mov         MOV reg, $imm
Load                  lwz / lwzx     ldr         MOV reg, [loc]
Store                 stw / stwx     str         MOV [loc], reg/$imm
Xor                   xor            eor         XOR
Add                   add            add         ADD
CompareImmediate      cmpwi          cmp         CMP
Branch                bne / beq      bne / beq   JNE / JE
Fence                 sync, lwsync,  dmb, dsb,   MFENCE
                      eieio, isync   dmb.st,
                                     dsb.st, isb
====================  =============  ==========  =======================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

#: Fence mnemonics understood by the semantics, grouped by architecture.
POWER_FENCES = ("sync", "lwsync", "eieio", "isync")
ARM_FENCES = ("dmb", "dsb", "dmb.st", "dsb.st", "isb")
X86_FENCES = ("mfence",)
ALL_FENCES = POWER_FENCES + ARM_FENCES + X86_FENCES

#: Fences that act as control fences (they matter for ctrl+cfence).
CONTROL_FENCES = ("isync", "isb")


@dataclass(frozen=True)
class Instruction:
    """Base class of all pseudo instructions."""

    def mnemonic(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class MoveImmediate(Instruction):
    """``dst <- value`` where value is a literal int or a location name."""

    dst: str
    value: Union[int, str]

    def mnemonic(self) -> str:
        return f"li {self.dst},{self.value}"


@dataclass(frozen=True)
class Load(Instruction):
    """Load from memory: ``dst <- mem[address(addr_reg [+ index_reg])]``.

    The effective address is the location held by ``addr_reg``; when
    ``index_reg`` is given its (integer) content is added, which is how
    litmus tests build "false" address dependencies (the index is always
    zero, but the data-flow path still exists).
    """

    dst: str
    addr_reg: str
    index_reg: Optional[str] = None

    def mnemonic(self) -> str:
        if self.index_reg is None:
            return f"lwz {self.dst},0({self.addr_reg})"
        return f"lwzx {self.dst},{self.index_reg},{self.addr_reg}"


@dataclass(frozen=True)
class Store(Instruction):
    """Store to memory: ``mem[address(addr_reg [+ index_reg])] <- src``."""

    src: str
    addr_reg: str
    index_reg: Optional[str] = None

    def mnemonic(self) -> str:
        if self.index_reg is None:
            return f"stw {self.src},0({self.addr_reg})"
        return f"stwx {self.src},{self.index_reg},{self.addr_reg}"


@dataclass(frozen=True)
class Xor(Instruction):
    """``dst <- left xor right`` (used for false dependencies)."""

    dst: str
    left: str
    right: str

    def mnemonic(self) -> str:
        return f"xor {self.dst},{self.left},{self.right}"


@dataclass(frozen=True)
class Add(Instruction):
    """``dst <- left + right``."""

    dst: str
    left: str
    right: str

    def mnemonic(self) -> str:
        return f"add {self.dst},{self.left},{self.right}"


@dataclass(frozen=True)
class CompareImmediate(Instruction):
    """Compare a register with an immediate; writes the condition register CR0."""

    reg: str
    value: int

    def mnemonic(self) -> str:
        return f"cmpwi {self.reg},{self.value}"


@dataclass(frozen=True)
class Compare(Instruction):
    """Compare two registers; writes the condition register CR0.

    ``cmpw left, right`` on Power, ``cmp left, right`` on ARM.  Litmus
    tests typically compare a register with itself so that a following
    conditional branch is statically decided yet the control dependency
    on the register's value remains.
    """

    left: str
    right: str

    def mnemonic(self) -> str:
        return f"cmpw {self.left},{self.right}"


@dataclass(frozen=True)
class Branch(Instruction):
    """Conditional branch on the condition register.

    ``condition`` is ``"ne"`` (branch if not equal) or ``"eq"``.
    Only forward branches are supported, which is all litmus tests need.
    """

    condition: str
    label: str

    def mnemonic(self) -> str:
        op = "bne" if self.condition == "ne" else "beq"
        return f"{op} {self.label}"


@dataclass(frozen=True)
class Label(Instruction):
    """A branch target."""

    name: str

    def mnemonic(self) -> str:
        return f"{self.name}:"


@dataclass(frozen=True)
class Fence(Instruction):
    """A memory or control fence, named after its assembly mnemonic."""

    name: str

    def __post_init__(self) -> None:
        if self.name not in ALL_FENCES:
            raise ValueError(f"unknown fence {self.name!r}; known: {ALL_FENCES}")

    def is_control_fence(self) -> bool:
        return self.name in CONTROL_FENCES

    def mnemonic(self) -> str:
        return self.name
