"""The named litmus tests of the paper and their documented verdicts.

Every figure of Sections 4-8 that depicts a litmus test is represented
here, either as a diy cycle (the common case) or as an explicit builder
program (the coherence tests of Fig. 6 and the anomaly tests of
Sec. 8.1.2 whose shapes do not fit the simple critical-cycle vocabulary).

Each entry records the *expected verdicts* stated by the paper —
``"Allow"`` or ``"Forbid"`` for the test's target outcome under the
relevant models — which the test-suite and the figure benchmark check
against the herd simulator's output.

Notes on reconstructions: ``mp+lwsync+addr-po-detour`` (Fig. 36) is
reconstructed from the prose (the discriminating feature is the
``addr;po`` chain on the observer thread plus a detour-supplying third
thread); the verdict pattern — allowed by this paper's Power model,
forbidden by the PLDI-2011 model — is what matters for Tab. I and
Sec. 8.2 and is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.diy.cycles import Cycle, coe, coi, dep, fenced, fre, fri, po, rfe, rfi
from repro.diy.generator import generate_test
from repro.litmus.ast import LitmusTest, TestBuilder

ALLOW = "Allow"
FORBID = "Forbid"


@dataclass(frozen=True)
class RegistryEntry:
    """One named test: how to build it, where it appears, what the paper says."""

    name: str
    factory: Callable[[], LitmusTest]
    figure: str
    expectations: Mapping[str, str]
    description: str = ""

    def build(self) -> LitmusTest:
        test = self.factory()
        test.name = self.name
        return test


_REGISTRY: Dict[str, RegistryEntry] = {}


def _register(
    name: str,
    factory: Callable[[], LitmusTest],
    figure: str,
    expectations: Mapping[str, str],
    description: str = "",
) -> None:
    if name in _REGISTRY:
        raise ValueError(f"duplicate registry entry {name!r}")
    _REGISTRY[name] = RegistryEntry(
        name=name,
        factory=factory,
        figure=figure,
        expectations=dict(expectations),
        description=description,
    )


def _cycle(edges, arch: str = "power") -> Callable[[], LitmusTest]:
    def factory() -> LitmusTest:
        return generate_test(Cycle.of(list(edges)), arch=arch)

    return factory


# ---------------------------------------------------------------------------
# Fig. 6 — the five SC-per-location tests
# ---------------------------------------------------------------------------

def _cow_w() -> LitmusTest:
    builder = TestBuilder("coWW", arch="power", doc="Fig. 6: two po-ordered writes")
    t0 = builder.thread()
    t0.store("x", 1)
    t0.store("x", 2)
    builder.exists({"x": 1})
    return builder.build()


def _co_rw1() -> LitmusTest:
    builder = TestBuilder("coRW1", arch="power", doc="Fig. 6: read from po-later write")
    t0 = builder.thread()
    r1 = t0.load("x")
    t0.store("x", 1)
    builder.exists({(0, r1): 1})
    return builder.build()


def _co_rw2() -> LitmusTest:
    builder = TestBuilder("coRW2", arch="power", doc="Fig. 6: coRW2")
    t0 = builder.thread()
    r1 = t0.load("x")
    t0.store("x", 1)
    t1 = builder.thread()
    t1.store("x", 2)
    builder.exists({(0, r1): 2, "x": 2})
    return builder.build()


def _co_wr() -> LitmusTest:
    builder = TestBuilder("coWR", arch="power", doc="Fig. 6: coWR")
    t0 = builder.thread()
    t0.store("x", 1)
    r2 = t0.load("x")
    t1 = builder.thread()
    t1.store("x", 2)
    builder.exists({(0, r2): 2, "x": 1})
    return builder.build()


def _co_rr() -> LitmusTest:
    builder = TestBuilder("coRR", arch="power", doc="Fig. 6: load-load hazard")
    t0 = builder.thread()
    r1 = t0.load("x")
    r2 = t0.load("x")
    t1 = builder.thread()
    t1.store("x", 1)
    builder.exists({(0, r1): 1, (0, r2): 0})
    return builder.build()


_ALL_FORBID = {
    "sc": FORBID,
    "tso": FORBID,
    "power": FORBID,
    "arm": FORBID,
    "power-arm": FORBID,
    "pldi2011": FORBID,
}

_register("coWW", _cow_w, "Fig. 6", _ALL_FORBID)
_register("coRW1", _co_rw1, "Fig. 6", _ALL_FORBID)
_register("coRW2", _co_rw2, "Fig. 6", _ALL_FORBID)
_register("coWR", _co_wr, "Fig. 6", _ALL_FORBID)
_register(
    "coRR",
    _co_rr,
    "Fig. 6",
    {**_ALL_FORBID, "arm-llh": ALLOW},
    "Load-load hazard: officially a bug on ARM Cortex-A9 (Sec. 8.1.2).",
)


# ---------------------------------------------------------------------------
# Two-thread classics (Figs. 7, 8, 13(a), 14, 16, 39)
# ---------------------------------------------------------------------------

_register(
    "lb",
    _cycle([po("R", "W"), rfe(), po("R", "W"), rfe()]),
    "Fig. 7",
    {"sc": FORBID, "tso": FORBID, "power": ALLOW, "arm": ALLOW},
    "Load buffering without dependencies.",
)
_register(
    "lb+addrs",
    _cycle([dep("addr", "W"), rfe(), dep("addr", "W"), rfe()]),
    "Fig. 7",
    {"power": FORBID, "arm": FORBID, "power-arm": FORBID},
    "lb+ppos: NO THIN AIR.",
)
_register(
    "lb+datas",
    _cycle([dep("data", "W"), rfe(), dep("data", "W"), rfe()]),
    "Fig. 7",
    {"power": FORBID, "arm": FORBID},
)
_register(
    "lb+ctrls",
    _cycle([dep("ctrl", "W"), rfe(), dep("ctrl", "W"), rfe()]),
    "Fig. 7",
    {"power": FORBID, "arm": FORBID},
)
_register(
    "lb+po+addr",
    _cycle([po("R", "W"), rfe(), dep("addr", "W"), rfe()]),
    "Fig. 7",
    {"power": ALLOW, "arm": ALLOW},
    "One unordered side makes lb observable again.",
)

_register(
    "mp",
    _cycle([po("W", "W"), rfe(), po("R", "R"), fre()]),
    "Fig. 1/8",
    {"sc": FORBID, "tso": FORBID, "power": ALLOW, "arm": ALLOW, "cpp-ra": FORBID},
    "Message passing without fences or dependencies.",
)
_register(
    "mp+lwsync+addr",
    _cycle([fenced("lwsync", "W", "W"), rfe(), dep("addr", "R"), fre()]),
    "Fig. 8",
    {"power": FORBID, "pldi2011": FORBID},
    "mp+lwfence+ppo: OBSERVATION.",
)
_register(
    "mp+lwsync+po",
    _cycle([fenced("lwsync", "W", "W"), rfe(), po("R", "R"), fre()]),
    "Fig. 8",
    {"power": ALLOW, "arm": ALLOW},
)
_register(
    "mp+addrs",
    _cycle([po("W", "W"), rfe(), dep("addr", "R"), fre()]),
    "Fig. 8",
    {"power": ALLOW, "arm": ALLOW},
    "No fence on the writer: Alpha-style reordering remains possible.",
)
_register(
    "mp+lwsync+ctrl",
    _cycle([fenced("lwsync", "W", "W"), rfe(), dep("ctrl", "R"), fre()]),
    "Sec. 5.2.3",
    {"power": ALLOW, "arm": ALLOW},
    "A control dependency to a read does not order reads.",
)
_register(
    "mp+lwsync+ctrlisync",
    _cycle([fenced("lwsync", "W", "W"), rfe(), dep("ctrlisync", "R"), fre()]),
    "Sec. 5.2.4",
    {"power": FORBID},
)
_register(
    "mp+sync+addr",
    _cycle([fenced("sync", "W", "W"), rfe(), dep("addr", "R"), fre()]),
    "Fig. 8",
    {"power": FORBID},
)
_register(
    "mp+syncs",
    _cycle([fenced("sync", "W", "W"), rfe(), fenced("sync", "R", "R"), fre()]),
    "Fig. 8",
    {"power": FORBID},
)
_register(
    "mp+dmb+addr",
    _cycle([fenced("dmb", "W", "W"), rfe(), dep("addr", "R"), fre()], arch="arm"),
    "Fig. 8",
    {"arm": FORBID, "power-arm": FORBID, "arm-llh": FORBID},
)
_register(
    "mp+dmb+ctrlisb",
    _cycle([fenced("dmb", "W", "W"), rfe(), dep("ctrlisb", "R"), fre()], arch="arm"),
    "Fig. 8",
    {"arm": FORBID, "power-arm": FORBID, "arm-llh": FORBID},
)
_register(
    "mp+dmbs",
    _cycle([fenced("dmb", "W", "W"), rfe(), fenced("dmb", "R", "R"), fre()], arch="arm"),
    "Fig. 8",
    {"arm": FORBID, "power-arm": FORBID},
)

_register(
    "sb",
    _cycle([po("W", "R"), fre(), po("W", "R"), fre()]),
    "Fig. 14",
    {"sc": FORBID, "tso": ALLOW, "power": ALLOW, "arm": ALLOW, "cpp-ra": ALLOW},
    "Store buffering: the canonical relaxed behaviour.",
)
_register(
    "sb+mfences",
    _cycle([fenced("mfence", "W", "R"), fre(), fenced("mfence", "W", "R"), fre()], arch="x86"),
    "Fig. 14",
    {"tso": FORBID},
)
_register(
    "sb+syncs",
    _cycle([fenced("sync", "W", "R"), fre(), fenced("sync", "W", "R"), fre()]),
    "Fig. 14",
    {"power": FORBID},
)
_register(
    "sb+lwsyncs",
    _cycle([fenced("lwsync", "W", "R"), fre(), fenced("lwsync", "W", "R"), fre()]),
    "Fig. 14",
    {"power": ALLOW},
    "lwsync does not order write-read pairs.",
)
_register(
    "sb+dmbs",
    _cycle([fenced("dmb", "W", "R"), fre(), fenced("dmb", "W", "R"), fre()], arch="arm"),
    "Fig. 14",
    {"arm": FORBID, "power-arm": FORBID},
)

_register(
    "2+2w",
    _cycle([po("W", "W"), coe(), po("W", "W"), coe()]),
    "Fig. 13(a)",
    {"sc": FORBID, "tso": FORBID, "power": ALLOW, "arm": ALLOW, "cpp-ra": ALLOW},
)
_register(
    "2+2w+lwsyncs",
    _cycle([fenced("lwsync", "W", "W"), coe(), fenced("lwsync", "W", "W"), coe()]),
    "Fig. 13(a)",
    {"power": FORBID},
    "Coherence and lightweight fences interact (PROPAGATION).",
)

_register(
    "r",
    _cycle([po("W", "W"), coe(), po("W", "R"), fre()]),
    "Fig. 16",
    {"sc": FORBID, "power": ALLOW, "arm": ALLOW},
)
_register(
    "r+syncs",
    _cycle([fenced("sync", "W", "W"), coe(), fenced("sync", "W", "R"), fre()]),
    "Fig. 16",
    {"power": FORBID},
)
_register(
    "r+lwsync+sync",
    _cycle([fenced("lwsync", "W", "W"), coe(), fenced("sync", "W", "R"), fre()]),
    "Fig. 16",
    {"power": ALLOW},
    "Allowed by this model, against earlier models; unobserved on hardware.",
)

_register(
    "s",
    _cycle([po("W", "W"), rfe(), po("R", "W"), coe()]),
    "Fig. 39",
    {"sc": FORBID, "power": ALLOW, "arm": ALLOW},
)
_register(
    "s+lwsync+data",
    _cycle([fenced("lwsync", "W", "W"), rfe(), dep("data", "W"), coe()]),
    "Fig. 16",
    {"power": FORBID},
    "s+lwfence+ppo.",
)


# ---------------------------------------------------------------------------
# Three- and four-thread classics (Figs. 11, 12, 13(b), 15, 19, 20)
# ---------------------------------------------------------------------------

_register(
    "wrc",
    _cycle([rfe(), po("R", "W"), rfe(), po("R", "R"), fre()]),
    "Fig. 11",
    {"sc": FORBID, "tso": FORBID, "power": ALLOW, "arm": ALLOW},
)
_register(
    "wrc+lwsync+addr",
    _cycle([rfe(), fenced("lwsync", "R", "W"), rfe(), dep("addr", "R"), fre()]),
    "Fig. 11",
    {"power": FORBID},
    "A-cumulativity of lwsync.",
)
_register(
    "wrc+addrs",
    _cycle([rfe(), dep("addr", "W"), rfe(), dep("addr", "R"), fre()]),
    "Fig. 11",
    {"power": ALLOW, "arm": ALLOW},
    "Dependencies alone are not cumulative.",
)

_register(
    "isa2",
    _cycle([po("W", "W"), rfe(), po("R", "W"), rfe(), po("R", "R"), fre()]),
    "Fig. 12",
    {"sc": FORBID, "power": ALLOW, "arm": ALLOW},
)
_register(
    "isa2+lwsync+addrs",
    _cycle(
        [fenced("lwsync", "W", "W"), rfe(), dep("addr", "W"), rfe(), dep("addr", "R"), fre()]
    ),
    "Fig. 12",
    {"power": FORBID},
    "B-cumulativity of lwsync (isa2+lwfence+ppos).",
)

_register(
    "w+rw+2w",
    _cycle([rfe(), po("R", "W"), coe(), po("W", "W"), coe()]),
    "Fig. 13(b)",
    {"power": ALLOW, "arm": ALLOW},
)
_register(
    "w+rw+2w+lwsyncs",
    _cycle([rfe(), fenced("lwsync", "R", "W"), coe(), fenced("lwsync", "W", "W"), coe()]),
    "Fig. 13(b)",
    {"power": FORBID},
)

_register(
    "rwc",
    _cycle([rfe(), po("R", "R"), fre(), po("W", "R"), fre()]),
    "Fig. 15",
    {"sc": FORBID, "power": ALLOW, "arm": ALLOW},
)
_register(
    "rwc+syncs",
    _cycle([rfe(), fenced("sync", "R", "R"), fre(), fenced("sync", "W", "R"), fre()]),
    "Fig. 15",
    {"power": FORBID},
    "Strong A-cumulativity of the full fence.",
)

_register(
    "w+rwc+eieio+addr+sync",
    _cycle(
        [fenced("eieio", "W", "W"), rfe(), dep("addr", "R"), fre(), fenced("sync", "W", "R"), fre()]
    ),
    "Fig. 19",
    {"power": ALLOW},
    "Shows eieio cannot be a full barrier (observed on Power 6/7).",
)
_register(
    "w+rwc+sync+addr+sync",
    _cycle(
        [fenced("sync", "W", "W"), rfe(), dep("addr", "R"), fre(), fenced("sync", "W", "R"), fre()]
    ),
    "Fig. 19",
    {"power": FORBID},
    "The same pattern with a full fence instead of eieio is forbidden.",
)

_register(
    "iriw",
    _cycle([rfe(), po("R", "R"), fre(), rfe(), po("R", "R"), fre()]),
    "Fig. 20",
    {"sc": FORBID, "tso": FORBID, "power": ALLOW, "arm": ALLOW},
)
_register(
    "iriw+syncs",
    _cycle([rfe(), fenced("sync", "R", "R"), fre(), rfe(), fenced("sync", "R", "R"), fre()]),
    "Fig. 20",
    {"power": FORBID},
)
_register(
    "iriw+lwsyncs",
    _cycle([rfe(), fenced("lwsync", "R", "R"), fre(), rfe(), fenced("lwsync", "R", "R"), fre()]),
    "Fig. 20",
    {"power": ALLOW},
    "Lightweight fences are not enough for iriw.",
)
_register(
    "iriw+addrs",
    _cycle([rfe(), dep("addr", "R"), fre(), rfe(), dep("addr", "R"), fre()]),
    "Fig. 20",
    {"power": ALLOW, "arm": ALLOW},
)
_register(
    "iriw+dmbs",
    _cycle([rfe(), fenced("dmb", "R", "R"), fre(), rfe(), fenced("dmb", "R", "R"), fre()], arch="arm"),
    "Fig. 20",
    {"arm": FORBID, "power-arm": FORBID},
    "dmb is a full fence.",
)


# ---------------------------------------------------------------------------
# Early-commit / fri-rfi behaviours (Figs. 32, 33) and Power ppo subtleties
# ---------------------------------------------------------------------------

_register(
    "mp+dmb+fri-rfi-ctrlisb",
    _cycle(
        [fenced("dmb", "W", "W"), rfe(), fri(), rfi(), dep("ctrlisb", "R"), fre()], arch="arm"
    ),
    "Fig. 32",
    {"power-arm": FORBID, "arm": ALLOW, "arm-llh": ALLOW},
    "Observed on APQ8060; desirable per ARM designers; motivates removing po-loc from cc0.",
)
_register(
    "lb+data+fri-rfi-ctrl",
    _cycle([dep("data", "W"), rfe(), fri(), rfi(), dep("ctrl", "W"), rfe()], arch="arm"),
    "Fig. 33",
    {"power-arm": FORBID, "arm": ALLOW},
)
_register(
    "s+dmb+fri-rfi-data",
    _cycle([fenced("dmb", "W", "W"), rfe(), fri(), rfi(), dep("data", "W"), coe()], arch="arm"),
    "Fig. 33",
    {"power-arm": FORBID, "arm": ALLOW},
)
_register(
    "lb+data+data-wsi-rfi-addr",
    _cycle(
        [dep("data", "W"), rfe(), dep("data", "W"), coi(), rfi(), dep("addr", "W"), rfe()],
        arch="arm",
    ),
    "Fig. 33",
    {"power-arm": FORBID, "arm": ALLOW},
)

_register(
    "lb+addrs+ww",
    _cycle([dep("addr", "W"), po("W", "W"), rfe(), dep("addr", "W"), po("W", "W"), rfe()]),
    "Fig. 29",
    {"power": FORBID, "arm": FORBID},
    "addr;po reaches the ppo through cc0.",
)
_register(
    "lb+datas+ww",
    _cycle([dep("data", "W"), po("W", "W"), rfe(), dep("data", "W"), po("W", "W"), rfe()]),
    "Fig. 29",
    {"power": ALLOW, "arm": ALLOW},
    "data;po is not in cc0: the same shape with data dependencies is allowed.",
)


def _mp_lwsync_addr_po() -> LitmusTest:
    builder = TestBuilder(
        "mp+lwsync+addr-po",
        arch="power",
        doc="Observer orders its reads through addr;po only (allowed by this model).",
    )
    t0 = builder.thread()
    t0.store("x", 2)
    t0.fence("lwsync")
    t0.store("y", 1)
    t1 = builder.thread()
    r1 = t1.load("y")
    r2 = t1.load_addr_dep("z", dep_on=r1)
    r3 = t1.load("x")
    builder.exists({(1, r1): 1, (1, r2): 0, (1, r3): 0})
    return builder.build()


def _mp_lwsync_addr_po_detour() -> LitmusTest:
    builder = TestBuilder(
        "mp+lwsync+addr-po-detour",
        arch="power",
        doc=(
            "Reconstruction of Fig. 36: addr;po chain on the observer plus a "
            "detour-supplying third thread; allowed by this model, forbidden by "
            "the PLDI 2011 model, observed on Power hardware."
        ),
    )
    t0 = builder.thread()
    t0.store("x", 2)
    t0.fence("lwsync")
    t0.store("y", 1)
    t1 = builder.thread()
    r1 = t1.load("y")
    r2 = t1.load_addr_dep("z", dep_on=r1)
    r3 = t1.load("x")
    t2 = builder.thread()
    t2.store("x", 1)
    r4 = t2.load("x")
    builder.exists({(1, r1): 1, (1, r2): 0, (1, r3): 0, (2, r4): 2, "x": 2})
    return builder.build()


_register(
    "mp+lwsync+addr-po",
    _mp_lwsync_addr_po,
    "Fig. 36 (core)",
    {"power": ALLOW, "pldi2011": FORBID},
)
_register(
    "mp+lwsync+addr-po-detour",
    _mp_lwsync_addr_po_detour,
    "Fig. 36",
    {"power": ALLOW, "pldi2011": FORBID},
    "The experimental flaw of the PLDI 2011 model (Tab. I).",
)


def _mp_dmb_pos_ctrlisb_bis() -> LitmusTest:
    builder = TestBuilder(
        "mp+dmb+pos-ctrlisb+bis",
        arch="arm",
        doc="Fig. 35: mp+dmb+ctrlisb with an extra same-location read and an extra writer.",
    )
    t0 = builder.thread()
    t0.store("x", 1)
    t0.fence("dmb")
    t0.store("y", 1)
    t1 = builder.thread()
    r1 = t1.load("y")
    r2 = t1.load("y")
    r3 = t1.load_ctrl_dep("x", dep_on=r2, cfence="isb")
    t2 = builder.thread()
    t2.store("y", 2)
    builder.exists({(1, r1): 1, (1, r2): 1, (1, r3): 0, "y": 2})
    return builder.build()


_register(
    "mp+dmb+pos-ctrlisb+bis",
    _mp_dmb_pos_ctrlisb_bis,
    "Fig. 35",
    {"arm": FORBID, "power-arm": FORBID},
    "Its observation on Tegra3 is a violation of OBSERVATION (hardware anomaly).",
)


# ---------------------------------------------------------------------------
# Public accessors
# ---------------------------------------------------------------------------

def entries() -> Tuple[RegistryEntry, ...]:
    """All registry entries, in registration (paper) order."""
    return tuple(_REGISTRY.values())


def names() -> Tuple[str, ...]:
    return tuple(_REGISTRY)


def get_entry(name: str) -> RegistryEntry:
    if name not in _REGISTRY:
        raise KeyError(f"unknown litmus test {name!r}")
    return _REGISTRY[name]


def get_test(name: str) -> LitmusTest:
    """Build the named litmus test."""
    return get_entry(name).build()


def all_tests() -> List[LitmusTest]:
    return [entry.build() for entry in entries()]


def expectations_for(model_name: str) -> Dict[str, str]:
    """Map test name -> expected verdict under the given model."""
    return {
        entry.name: entry.expectations[model_name]
        for entry in entries()
        if model_name in entry.expectations
    }
