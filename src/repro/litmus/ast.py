"""Litmus test structure and a programmatic builder.

A :class:`LitmusTest` is the in-memory form of a litmus test: initial
memory and register state, one instruction list per thread, and a final
condition (``exists``, ``~exists`` or ``forall``).

The :class:`TestBuilder` / :class:`ThreadBuilder` pair offers the
high-level vocabulary used by the registry and by the diy generator:
``store``, ``load``, ``fence``, and the dependency-carrying variants
(``load_addr_dep``, ``store_data_dep``, ``ctrl_dep``...), taking care of
register allocation and of the compare/branch boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.litmus.instructions import (
    Add,
    Branch,
    Compare,
    Fence,
    Instruction,
    Label,
    Load,
    MoveImmediate,
    Store,
    Xor,
)

RegisterValue = Union[int, str]
RegisterKey = Tuple[int, str]  # (thread index, register name)


@dataclass(frozen=True)
class ConditionAtom:
    """One equality atom of a final condition.

    ``kind`` is ``"reg"`` (a final register value, qualified by thread)
    or ``"mem"`` (a final memory value).
    """

    kind: str
    thread: Optional[int]
    name: str
    value: int

    @classmethod
    def register(cls, thread: int, register: str, value: int) -> "ConditionAtom":
        return cls("reg", thread, register, value)

    @classmethod
    def memory(cls, location: str, value: int) -> "ConditionAtom":
        return cls("mem", None, location, value)

    def holds(
        self,
        final_registers: Mapping[RegisterKey, RegisterValue],
        final_memory: Mapping[str, int],
    ) -> bool:
        if self.kind == "reg":
            return final_registers.get((self.thread, self.name)) == self.value
        return final_memory.get(self.name, 0) == self.value

    def __str__(self) -> str:
        if self.kind == "reg":
            return f"{self.thread}:{self.name}={self.value}"
        return f"{self.name}={self.value}"


@dataclass(frozen=True)
class Condition:
    """The final condition of a litmus test.

    ``kind`` is one of ``"exists"``, ``"not exists"`` or ``"forall"``;
    the atoms are a conjunction.

    * ``exists``: the test's *target outcome* is reachable iff some valid
      execution satisfies all atoms.
    * ``not exists`` / ``forall`` are the dual forms (used when a test is
      phrased as an invariant).
    """

    kind: str
    atoms: Tuple[ConditionAtom, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("exists", "not exists", "forall"):
            raise ValueError(f"unknown condition kind {self.kind!r}")

    def outcome_matches(
        self,
        final_registers: Mapping[RegisterKey, RegisterValue],
        final_memory: Mapping[str, int],
    ) -> bool:
        """Does one execution's final state satisfy the conjunction of atoms?"""
        return all(atom.holds(final_registers, final_memory) for atom in self.atoms)

    def verdict(self, any_outcome_matches: bool, all_outcomes_match: bool) -> bool:
        """Truth value of the whole condition given the two quantified facts."""
        if self.kind == "exists":
            return any_outcome_matches
        if self.kind == "not exists":
            return not any_outcome_matches
        return all_outcomes_match

    def __str__(self) -> str:
        body = " /\\ ".join(str(atom) for atom in self.atoms)
        if self.kind == "exists":
            return f"exists ({body})"
        if self.kind == "not exists":
            return f"~exists ({body})"
        return f"forall ({body})"


@dataclass
class LitmusTest:
    """A complete litmus test."""

    name: str
    arch: str
    threads: List[List[Instruction]]
    init_registers: Dict[RegisterKey, RegisterValue] = field(default_factory=dict)
    init_memory: Dict[str, int] = field(default_factory=dict)
    condition: Optional[Condition] = None
    doc: str = ""

    def locations(self) -> Tuple[str, ...]:
        """All shared memory locations named by the test."""
        locations = set(self.init_memory)
        for value in self.init_registers.values():
            if isinstance(value, str):
                locations.add(value)
        if self.condition is not None:
            for atom in self.condition.atoms:
                if atom.kind == "mem":
                    locations.add(atom.name)
        return tuple(sorted(locations))

    def num_threads(self) -> int:
        return len(self.threads)

    def pretty(self) -> str:
        """A compact textual rendering (litmus-style)."""
        lines = [f"{self.arch.upper()} {self.name}"]
        if self.doc:
            lines.append(f'"{self.doc}"')
        inits = [f"{loc}={val}" for loc, val in sorted(self.init_memory.items())]
        inits += [
            f"{thread}:{reg}={val}"
            for (thread, reg), val in sorted(self.init_registers.items())
        ]
        lines.append("{ " + "; ".join(inits) + " }")
        for index, instructions in enumerate(self.threads):
            lines.append(f" P{index}:")
            for instruction in instructions:
                lines.append(f"   {instruction.mnemonic()}")
        if self.condition is not None:
            lines.append(str(self.condition))
        return "\n".join(lines)


class ThreadBuilder:
    """Builds one thread's instruction list, managing registers.

    Register conventions: ``rA<location>`` registers hold addresses and
    are pre-initialised; ``r1, r2, ...`` are scratch/value registers.
    """

    def __init__(self, test_builder: "TestBuilder", index: int):
        self._test = test_builder
        self.index = index
        self.instructions: List[Instruction] = []
        self._next_register = 1
        self._next_label = 0
        self._address_registers: Dict[str, str] = {}

    # -- low-level helpers --------------------------------------------------------

    def fresh_register(self) -> str:
        register = f"r{self._next_register}"
        self._next_register += 1
        return register

    def _fresh_label(self) -> str:
        label = f"LC{self.index}{self._next_label}"
        self._next_label += 1
        return label

    def address_register(self, location: str) -> str:
        """The register holding the address of *location* (allocated lazily)."""
        if location not in self._address_registers:
            register = f"rA{location}"
            self._address_registers[location] = register
            self._test.init_registers[(self.index, register)] = location
            self._test.register_location(location)
        return self._address_registers[location]

    def emit(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    # -- plain accesses -----------------------------------------------------------

    def store(self, location: str, value: int) -> None:
        """``location <- value`` through a scratch register."""
        value_register = self.fresh_register()
        self.emit(MoveImmediate(value_register, value))
        self.emit(Store(value_register, self.address_register(location)))
        self._test.register_value(value)

    def load(self, location: str) -> str:
        """``reg <- location``; returns the destination register."""
        destination = self.fresh_register()
        self.emit(Load(destination, self.address_register(location)))
        return destination

    def fence(self, name: str) -> None:
        self.emit(Fence(name))

    # -- dependency-carrying accesses ----------------------------------------------

    def _false_dep_register(self, dep_on: str) -> str:
        """``xor r, dep, dep`` — a register that is always 0 yet depends on *dep_on*."""
        zero = self.fresh_register()
        self.emit(Xor(zero, dep_on, dep_on))
        return zero

    def load_addr_dep(self, location: str, dep_on: str) -> str:
        """Load with a (false) address dependency on *dep_on*."""
        zero = self._false_dep_register(dep_on)
        destination = self.fresh_register()
        self.emit(Load(destination, self.address_register(location), index_reg=zero))
        return destination

    def store_addr_dep(self, location: str, value: int, dep_on: str) -> None:
        """Store with a (false) address dependency on *dep_on*."""
        zero = self._false_dep_register(dep_on)
        value_register = self.fresh_register()
        self.emit(MoveImmediate(value_register, value))
        self.emit(Store(value_register, self.address_register(location), index_reg=zero))
        self._test.register_value(value)

    def store_data_dep(self, location: str, value: int, dep_on: str) -> None:
        """Store of *value* whose data flows (vacuously) through *dep_on*."""
        zero = self._false_dep_register(dep_on)
        immediate = self.fresh_register()
        self.emit(MoveImmediate(immediate, value))
        total = self.fresh_register()
        self.emit(Add(total, zero, immediate))
        self.emit(Store(total, self.address_register(location)))
        self._test.register_value(value)

    def store_loaded_value(self, location: str, dep_on: str) -> None:
        """Store the value previously loaded into *dep_on* (a true data dependency)."""
        self.emit(Store(dep_on, self.address_register(location)))

    def ctrl_dep(self, dep_on: str, cfence: Optional[str] = None) -> None:
        """A control dependency on *dep_on* guarding everything emitted after.

        Emits ``cmpw dep, dep; beq L; L:`` (the branch is statically taken
        to the very next instruction, so no access is skipped — the classic
        litmus idiom).  When ``cfence`` is given (``isync`` or ``isb``) it
        is placed right after the branch, turning the dependency into a
        ctrl+cfence one.
        """
        label = self._fresh_label()
        self.emit(Compare(dep_on, dep_on))
        self.emit(Branch("eq", label))
        self.emit(Label(label))
        if cfence is not None:
            self.emit(Fence(cfence))

    def load_ctrl_dep(
        self, location: str, dep_on: str, cfence: Optional[str] = None
    ) -> str:
        """Load guarded by a control (or control+cfence) dependency."""
        self.ctrl_dep(dep_on, cfence)
        return self.load(location)

    def store_ctrl_dep(
        self, location: str, value: int, dep_on: str, cfence: Optional[str] = None
    ) -> None:
        """Store guarded by a control (or control+cfence) dependency."""
        self.ctrl_dep(dep_on, cfence)
        self.store(location, value)


class TestBuilder:
    """Programmatic construction of litmus tests."""

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, name: str, arch: str = "power", doc: str = ""):
        self.name = name
        self.arch = arch
        self.doc = doc
        self.init_registers: Dict[RegisterKey, RegisterValue] = {}
        self.init_memory: Dict[str, int] = {}
        self._threads: List[ThreadBuilder] = []
        self._condition: Optional[Condition] = None
        self._value_pool: set = {0}

    def thread(self) -> ThreadBuilder:
        builder = ThreadBuilder(self, len(self._threads))
        self._threads.append(builder)
        return builder

    def register_location(self, location: str) -> None:
        self.init_memory.setdefault(location, 0)

    def register_value(self, value: int) -> None:
        self._value_pool.add(value)

    # -- final condition ------------------------------------------------------------

    def exists(self, atoms: Mapping[Union[Tuple[int, str], str], int]) -> None:
        self._condition = Condition("exists", self._atoms(atoms))

    def not_exists(self, atoms: Mapping[Union[Tuple[int, str], str], int]) -> None:
        self._condition = Condition("not exists", self._atoms(atoms))

    def forall(self, atoms: Mapping[Union[Tuple[int, str], str], int]) -> None:
        self._condition = Condition("forall", self._atoms(atoms))

    def _atoms(
        self, atoms: Mapping[Union[Tuple[int, str], str], int]
    ) -> Tuple[ConditionAtom, ...]:
        result = []
        for key, value in atoms.items():
            if isinstance(key, tuple):
                thread, register = key
                result.append(ConditionAtom.register(thread, register, value))
            else:
                result.append(ConditionAtom.memory(key, value))
            self.register_value(value)
        return tuple(result)

    def build(self) -> LitmusTest:
        return LitmusTest(
            name=self.name,
            arch=self.arch,
            threads=[thread.instructions for thread in self._threads],
            init_registers=dict(self.init_registers),
            init_memory=dict(self.init_memory),
            condition=self._condition,
            doc=self.doc,
        )
