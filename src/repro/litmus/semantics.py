"""Instruction semantics (Sec. 5): from instructions to events and dependencies.

Each thread of a litmus test is executed symbolically into a *thread
path*: the sequence of memory events it performs, together with the
dependency relations (addr, data, ctrl, ctrl+cfence) and the per-fence
relations over those events, plus its final register state.

Because the values read from memory are not known before the data-flow
(rf) is chosen, the execution is parameterised by the values returned by
loads: :func:`enumerate_thread_paths` explores every assignment of load
values drawn from the test's (small) value domain, yielding one
:class:`ThreadExecution` per assignment/control path.  The herd
enumerator then combines one path per thread and keeps the combinations
for which a well-formed read-from map exists.

Dependency tracking follows the dd-reg construction of Fig. 22: for
every register we maintain the set of memory *read events* its current
value (transitively) depends on; address/data/control dependencies are
then read off the dependency sets of the registers feeding each access's
address port, value port, or branch condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.events import Event, FenceEvent, MemoryRead, MemoryWrite
from repro.litmus.ast import LitmusTest, RegisterValue
from repro.litmus.instructions import (
    Add,
    Branch,
    Compare,
    CompareImmediate,
    Fence,
    Instruction,
    Label,
    Load,
    MoveImmediate,
    Store,
    Xor,
)

Pair = Tuple[Event, Event]


class SemanticsError(ValueError):
    """Raised when a thread's program cannot be executed (bad register, label...)."""


@dataclass
class ThreadExecution:
    """One control/data path of one thread."""

    thread: int
    memory_events: List[Event]
    addr: List[Pair]
    data: List[Pair]
    ctrl: List[Pair]
    ctrl_cfence: List[Pair]
    fences: Dict[str, List[Pair]]
    final_registers: Dict[str, RegisterValue]
    load_values: Tuple[int, ...]

    @property
    def reads(self) -> List[Event]:
        return [e for e in self.memory_events if e.is_read()]

    @property
    def writes(self) -> List[Event]:
        return [e for e in self.memory_events if e.is_write()]


class _NeedValue(Exception):
    """Internal signal: the executor needs one more load value choice."""


@dataclass
class _BranchScope:
    """A branch whose condition depends on `deps`; `fenced` becomes True
    once a control fence (isync/isb) has been executed after the branch."""

    deps: FrozenSet[Event]
    fenced: bool = False


def _run_thread(
    thread: int,
    instructions: Sequence[Instruction],
    init_registers: Mapping[str, RegisterValue],
    load_values: Tuple[int, ...],
) -> ThreadExecution:
    """Execute one thread with the given load-value choices.

    Raises :class:`_NeedValue` when the program performs more loads than
    there are values in ``load_values``.
    """
    registers: Dict[str, RegisterValue] = dict(init_registers)
    deps: Dict[str, FrozenSet[Event]] = {reg: frozenset() for reg in registers}

    memory_events: List[Event] = []
    addr_pairs: List[Pair] = []
    data_pairs: List[Pair] = []
    ctrl_pairs: List[Pair] = []
    ctrl_cfence_pairs: List[Pair] = []
    fence_markers: List[Tuple[str, int]] = []
    branch_scopes: List[_BranchScope] = []

    cr0_equal: Optional[bool] = None
    cr0_deps: FrozenSet[Event] = frozenset()

    load_index = 0
    event_counter = 0

    labels = {
        instruction.name: position
        for position, instruction in enumerate(instructions)
        if isinstance(instruction, Label)
    }

    def register_value(name: str) -> RegisterValue:
        if name not in registers:
            # Uninitialised registers read as 0 (litmus convention).
            registers[name] = 0
            deps.setdefault(name, frozenset())
        return registers[name]

    def register_deps(name: str) -> FrozenSet[Event]:
        register_value(name)
        return deps.get(name, frozenset())

    def effective_location(addr_reg: str, index_reg: Optional[str]) -> str:
        base = register_value(addr_reg)
        location: Optional[str] = base if isinstance(base, str) else None
        offset = 0 if isinstance(base, str) else int(base)
        if index_reg is not None:
            index = register_value(index_reg)
            if isinstance(index, str):
                location = index
            else:
                offset += int(index)
        if location is None:
            raise SemanticsError(
                f"thread {thread}: no address register holds a location "
                f"(addr_reg={addr_reg!r}, index_reg={index_reg!r})"
            )
        if offset != 0:
            raise SemanticsError(
                f"thread {thread}: non-zero address offsets are not supported"
            )
        return location

    def new_memory_event(action) -> Event:
        nonlocal event_counter
        event = Event(
            thread=thread,
            poi=len(memory_events),
            eid=f"T{thread}e{event_counter}",
            action=action,
        )
        event_counter += 1
        memory_events.append(event)
        return event

    def record_control_dependencies(event: Event) -> None:
        for scope in branch_scopes:
            for source in scope.deps:
                ctrl_pairs.append((source, event))
                if scope.fenced:
                    ctrl_cfence_pairs.append((source, event))

    position = 0
    while position < len(instructions):
        instruction = instructions[position]
        position += 1

        if isinstance(instruction, Label):
            continue

        if isinstance(instruction, MoveImmediate):
            registers[instruction.dst] = instruction.value
            deps[instruction.dst] = frozenset()
            continue

        if isinstance(instruction, (Xor, Add)):
            left = register_value(instruction.left)
            right = register_value(instruction.right)
            if isinstance(left, str) or isinstance(right, str):
                raise SemanticsError(
                    f"thread {thread}: arithmetic on address values is not supported"
                )
            if isinstance(instruction, Xor):
                result: RegisterValue = int(left) ^ int(right)
            else:
                result = int(left) + int(right)
            registers[instruction.dst] = result
            deps[instruction.dst] = register_deps(instruction.left) | register_deps(
                instruction.right
            )
            continue

        if isinstance(instruction, Compare):
            left = register_value(instruction.left)
            right = register_value(instruction.right)
            cr0_equal = left == right
            cr0_deps = register_deps(instruction.left) | register_deps(instruction.right)
            continue

        if isinstance(instruction, CompareImmediate):
            left = register_value(instruction.reg)
            cr0_equal = left == instruction.value
            cr0_deps = register_deps(instruction.reg)
            continue

        if isinstance(instruction, Branch):
            if cr0_equal is None:
                raise SemanticsError(
                    f"thread {thread}: branch before any comparison"
                )
            branch_scopes.append(_BranchScope(deps=cr0_deps))
            taken = cr0_equal if instruction.condition == "eq" else not cr0_equal
            if taken:
                if instruction.label not in labels:
                    raise SemanticsError(
                        f"thread {thread}: unknown branch label {instruction.label!r}"
                    )
                target = labels[instruction.label]
                if target < position - 1:
                    raise SemanticsError(
                        f"thread {thread}: backward branches are not supported"
                    )
                position = target
            continue

        if isinstance(instruction, Fence):
            if instruction.is_control_fence():
                for scope in branch_scopes:
                    scope.fenced = True
            fence_markers.append((instruction.name, len(memory_events)))
            continue

        if isinstance(instruction, Load):
            location = effective_location(instruction.addr_reg, instruction.index_reg)
            if load_index >= len(load_values):
                raise _NeedValue()
            value = load_values[load_index]
            load_index += 1
            event = new_memory_event(MemoryRead(location, value))
            address_deps = register_deps(instruction.addr_reg)
            if instruction.index_reg is not None:
                address_deps |= register_deps(instruction.index_reg)
            for source in address_deps:
                addr_pairs.append((source, event))
            record_control_dependencies(event)
            registers[instruction.dst] = value
            deps[instruction.dst] = frozenset({event})
            continue

        if isinstance(instruction, Store):
            location = effective_location(instruction.addr_reg, instruction.index_reg)
            value = register_value(instruction.src)
            if isinstance(value, str):
                raise SemanticsError(
                    f"thread {thread}: storing an address value is not supported"
                )
            event = new_memory_event(MemoryWrite(location, int(value)))
            address_deps = register_deps(instruction.addr_reg)
            if instruction.index_reg is not None:
                address_deps |= register_deps(instruction.index_reg)
            for source in address_deps:
                addr_pairs.append((source, event))
            for source in register_deps(instruction.src):
                data_pairs.append((source, event))
            record_control_dependencies(event)
            continue

        raise SemanticsError(f"unsupported instruction {instruction!r}")

    fences: Dict[str, List[Pair]] = {}
    for name, marker in fence_markers:
        before = memory_events[:marker]
        after = memory_events[marker:]
        fences.setdefault(name, []).extend(
            (earlier, later) for earlier in before for later in after
        )

    return ThreadExecution(
        thread=thread,
        memory_events=memory_events,
        addr=addr_pairs,
        data=data_pairs,
        ctrl=ctrl_pairs,
        ctrl_cfence=ctrl_cfence_pairs,
        fences=fences,
        final_registers=dict(registers),
        load_values=tuple(load_values[:load_index]),
    )


def enumerate_thread_paths(
    thread: int,
    instructions: Sequence[Instruction],
    init_registers: Mapping[str, RegisterValue],
    value_domain: Iterable[int],
) -> List[ThreadExecution]:
    """Every control/data path of a thread over the given value domain.

    One path is produced per assignment of values to the loads the path
    performs; branches are resolved concretely by each assignment.
    """
    values = sorted(set(int(v) for v in value_domain))
    if not values:
        values = [0]
    results: List[ThreadExecution] = []
    pending: List[Tuple[int, ...]] = [()]
    while pending:
        choices = pending.pop()
        try:
            results.append(_run_thread(thread, instructions, init_registers, choices))
        except _NeedValue:
            # Fork: the next load can return any value in the domain.
            pending.extend(choices + (value,) for value in reversed(values))
    results.sort(key=lambda path: path.load_values)
    return results


def value_domain_of(test: LitmusTest) -> List[int]:
    """The set of integer values that can flow through the test.

    Collected from immediates, the initial memory and register state and
    the final condition.  0 is always included (the initial value of
    every location).
    """
    values: Set[int] = {0}
    for instructions in test.threads:
        for instruction in instructions:
            if isinstance(instruction, MoveImmediate) and isinstance(instruction.value, int):
                values.add(instruction.value)
            if isinstance(instruction, CompareImmediate):
                values.add(instruction.value)
    values.update(test.init_memory.values())
    for value in test.init_registers.values():
        if isinstance(value, int):
            values.add(value)
    if test.condition is not None:
        for atom in test.condition.atoms:
            values.add(atom.value)
    return sorted(values)


def thread_init_registers(test: LitmusTest, thread: int) -> Dict[str, RegisterValue]:
    """The initial register state of one thread."""
    return {
        register: value
        for (owner, register), value in test.init_registers.items()
        if owner == thread
    }
