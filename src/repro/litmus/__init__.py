"""Litmus tests: the pseudo-ISA, instruction semantics and test corpus.

This package provides:

* :mod:`repro.litmus.instructions` — a compact pseudo assembly language
  covering the Power, ARM and x86 instructions used by the paper's
  litmus tests (loads, stores, register arithmetic, compare/branch and
  every fence);
* :mod:`repro.litmus.ast` — the litmus test structure (initial state,
  per-thread programs, final condition) and a programmatic builder;
* :mod:`repro.litmus.semantics` — the instruction semantics of Sec. 5:
  each thread is executed into memory/register/branch/fence events
  related by ``iico`` and register read-from, from which the dependency
  relations addr, data, ctrl and ctrl+cfence are computed;
* :mod:`repro.litmus.parser` — a parser for the textual litmus format
  (Power, ARM and x86 dialects);
* :mod:`repro.litmus.registry` — the named tests of the paper
  (mp, sb, lb, wrc, iriw, ... and their fence/dependency variants).
"""

from repro.litmus.instructions import (
    Instruction,
    Load,
    Store,
    MoveImmediate,
    Xor,
    Add,
    CompareImmediate,
    Branch,
    Label,
    Fence,
)
from repro.litmus.ast import (
    LitmusTest,
    Condition,
    ConditionAtom,
    ThreadBuilder,
    TestBuilder,
)
from repro.litmus.parser import parse_litmus
from repro.litmus.semantics import ThreadExecution, enumerate_thread_paths

__all__ = [
    "Instruction",
    "Load",
    "Store",
    "MoveImmediate",
    "Xor",
    "Add",
    "CompareImmediate",
    "Branch",
    "Label",
    "Fence",
    "LitmusTest",
    "Condition",
    "ConditionAtom",
    "ThreadBuilder",
    "TestBuilder",
    "parse_litmus",
    "ThreadExecution",
    "enumerate_thread_paths",
]
