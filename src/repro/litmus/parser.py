"""Parser for the textual litmus format.

The accepted format follows the diy/litmus convention::

    Power mp+lwsync+addr
    "optional documentation string"
    {
    0:r2=x; 0:r4=y;
    1:r2=y; 1:r4=x;
    x=0; y=0;
    }
     P0            | P1             ;
     li r1,1       | lwz r1,0(r2)   ;
     stw r1,0(r2)  | xor r3,r1,r1   ;
     lwsync        | lwzx r5,r3,r4  ;
     li r3,1       |                ;
     stw r3,0(r4)  |                ;
    exists (1:r1=1 /\\ 1:r5=0)

Three dialects are understood, selected by the header keyword:

* ``Power`` / ``PPC``: li, lwz, lwzx, stw, stwx, xor, add, cmpw, cmpwi,
  bne, beq, sync, lwsync, eieio, isync;
* ``ARM``: mov, ldr, str, eor, add, cmp, bne, beq, dmb, dsb, isb (with
  ``ldr r1,[r2]`` / ``ldr r1,[r2,r3]`` addressing);
* ``X86``: ``mov``-style pseudo syntax plus ``mfence``.

The final condition accepts ``exists``, ``~exists`` and ``forall`` with a
conjunction of ``thread:reg=value`` and ``location=value`` atoms.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from repro.litmus.ast import Condition, ConditionAtom, LitmusTest, RegisterValue
from repro.litmus.instructions import (
    Add,
    Branch,
    Compare,
    CompareImmediate,
    Fence,
    Instruction,
    Label,
    Load,
    MoveImmediate,
    Store,
    Xor,
)


class LitmusParseError(ValueError):
    """Raised on malformed litmus input."""


def _parse_value(text: str) -> RegisterValue:
    text = text.strip()
    try:
        return int(text, 0)
    except ValueError:
        return text


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",") if part.strip()]


def _parse_power_arm_instruction(line: str, dialect: str) -> Optional[Instruction]:
    line = line.strip()
    if not line:
        return None
    if line.endswith(":"):
        return Label(line[:-1].strip())

    match = re.match(r"^(\S+)\s*(.*)$", line)
    if match is None:
        raise LitmusParseError(f"cannot parse instruction {line!r}")
    opcode, rest = match.group(1).lower(), match.group(2).strip()
    operands = _split_operands(rest)

    fences = {
        "sync": "sync",
        "lwsync": "lwsync",
        "eieio": "eieio",
        "isync": "isync",
        "dmb": "dmb",
        "dsb": "dsb",
        "dmb.st": "dmb.st",
        "dsb.st": "dsb.st",
        "isb": "isb",
        "mfence": "mfence",
    }
    if opcode in fences and not operands:
        return Fence(fences[opcode])

    if opcode in ("li", "mov", "movi"):
        return MoveImmediate(operands[0], _parse_value(operands[1].lstrip("#$")))

    if opcode in ("lwz", "ldr"):
        destination = operands[0]
        addressing = ",".join(operands[1:])
        bracket = re.match(r"^\[(\w+)(?:,(\w+))?\]$", addressing.replace(" ", ""))
        if bracket:
            return Load(destination, bracket.group(1), index_reg=bracket.group(2))
        offset = re.match(r"^(-?\d+)\((\w+)\)$", addressing.replace(" ", ""))
        if offset:
            if int(offset.group(1)) != 0:
                raise LitmusParseError("non-zero load offsets are not supported")
            return Load(destination, offset.group(2))
        raise LitmusParseError(f"cannot parse load addressing in {line!r}")

    if opcode == "lwzx":
        return Load(operands[0], operands[2], index_reg=operands[1])

    if opcode in ("stw", "str"):
        source = operands[0]
        addressing = ",".join(operands[1:])
        bracket = re.match(r"^\[(\w+)(?:,(\w+))?\]$", addressing.replace(" ", ""))
        if bracket:
            return Store(source, bracket.group(1), index_reg=bracket.group(2))
        offset = re.match(r"^(-?\d+)\((\w+)\)$", addressing.replace(" ", ""))
        if offset:
            if int(offset.group(1)) != 0:
                raise LitmusParseError("non-zero store offsets are not supported")
            return Store(source, offset.group(2))
        raise LitmusParseError(f"cannot parse store addressing in {line!r}")

    if opcode == "stwx":
        return Store(operands[0], operands[2], index_reg=operands[1])

    if opcode in ("xor", "eor"):
        return Xor(operands[0], operands[1], operands[2])
    if opcode == "add":
        return Add(operands[0], operands[1], operands[2])
    if opcode in ("cmpw", "cmp"):
        second = operands[1].lstrip("#$")
        if re.fullmatch(r"-?\d+", second):
            return CompareImmediate(operands[0], int(second))
        return Compare(operands[0], operands[1])
    if opcode == "cmpwi":
        return CompareImmediate(operands[0], int(operands[1]))
    if opcode == "bne":
        return Branch("ne", operands[0] if operands else rest)
    if opcode == "beq":
        return Branch("eq", operands[0] if operands else rest)

    raise LitmusParseError(f"unknown {dialect} instruction {line!r}")


def _parse_x86_instruction(line: str) -> Optional[Instruction]:
    """A pragmatic x86 subset: MOV between registers/immediates/locations, MFENCE."""
    line = line.strip()
    if not line:
        return None
    lowered = line.lower()
    if lowered == "mfence":
        return Fence("mfence")
    match = re.match(r"^mov\s+(.+?)\s*,\s*(.+)$", lowered)
    if match is None:
        raise LitmusParseError(f"unknown x86 instruction {line!r}")
    destination, source = match.group(1).strip(), match.group(2).strip()

    def is_mem(operand: str) -> bool:
        return operand.startswith("[") and operand.endswith("]")

    if is_mem(destination):
        address = destination[1:-1]
        if source.startswith("$"):
            # MOV [x],$1 — store of an immediate: goes through a scratch register.
            raise LitmusParseError(
                "x86 immediate stores must be written through a register in this subset"
            )
        return Store(source, f"rA{address}")
    if is_mem(source):
        address = source[1:-1]
        return Load(destination, f"rA{address}")
    return MoveImmediate(destination, _parse_value(source.lstrip("$")))


_CONDITION_RE = re.compile(r"^(exists|~exists|forall)\s*\((.*)\)\s*$", re.DOTALL)


def _parse_condition(text: str) -> Condition:
    match = _CONDITION_RE.match(text.strip())
    if match is None:
        raise LitmusParseError(f"cannot parse final condition {text!r}")
    kind = {"exists": "exists", "~exists": "not exists", "forall": "forall"}[match.group(1)]
    atoms: List[ConditionAtom] = []
    body = match.group(2).strip()
    if body:
        for piece in re.split(r"/\\|&&", body):
            piece = piece.strip().strip("()")
            if not piece:
                continue
            left, right = piece.split("=", 1)
            value = int(right.strip(), 0)
            left = left.strip()
            if ":" in left:
                thread_text, register = left.split(":", 1)
                atoms.append(ConditionAtom.register(int(thread_text), register.strip(), value))
            else:
                atoms.append(ConditionAtom.memory(left, value))
    return Condition(kind, tuple(atoms))


def parse_litmus(text: str) -> LitmusTest:
    """Parse a litmus test from its textual form."""
    lines = [line.rstrip() for line in text.strip().splitlines()]
    if not lines:
        raise LitmusParseError("empty litmus source")

    header = lines[0].split()
    if not header:
        raise LitmusParseError("missing architecture header")
    arch_word = header[0].lower()
    arch = {"power": "power", "ppc": "power", "arm": "arm", "x86": "x86"}.get(arch_word)
    if arch is None:
        raise LitmusParseError(f"unknown architecture {header[0]!r}")
    name = header[1] if len(header) > 1 else "anonymous"

    index = 1
    doc = ""
    while index < len(lines) and not lines[index].strip().startswith("{"):
        stripped = lines[index].strip()
        if stripped.startswith('"'):
            doc = stripped.strip('"')
        index += 1
    if index >= len(lines):
        raise LitmusParseError("missing initial-state section '{...}'")

    # Initial state (either "{ ... }" on one line or a brace-delimited block).
    init_text = []
    brace_line = lines[index].strip()
    index += 1
    closed = "}" in brace_line
    if brace_line not in ("{", "{}"):
        init_text.append(brace_line.lstrip("{").rstrip("}"))
    while not closed and index < len(lines):
        line = lines[index]
        index += 1
        if "}" in line:
            init_text.append(line.replace("}", ""))
            closed = True
        else:
            init_text.append(line)

    init_registers: Dict[Tuple[int, str], RegisterValue] = {}
    init_memory: Dict[str, int] = {}
    for assignment in re.split(r"[;\n]", " ".join(init_text)):
        assignment = assignment.strip()
        if not assignment:
            continue
        left, right = assignment.split("=", 1)
        left, right = left.strip(), right.strip()
        value = _parse_value(right)
        if ":" in left:
            thread_text, register = left.split(":", 1)
            init_registers[(int(thread_text), register.strip())] = value
        else:
            if not isinstance(value, int):
                raise LitmusParseError(f"memory locations hold integers, got {right!r}")
            init_memory[left] = value

    # Program columns.
    program_lines: List[str] = []
    condition_lines: List[str] = []
    in_condition = False
    for line in lines[index:]:
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith(("exists", "~exists", "forall")) or in_condition:
            in_condition = True
            condition_lines.append(stripped)
            continue
        program_lines.append(line)

    if not program_lines:
        raise LitmusParseError("missing program section")

    rows = [
        [cell.strip() for cell in line.rstrip(";").split("|")] for line in program_lines
    ]
    header_row = rows[0]
    num_threads = len(header_row)
    threads: List[List[Instruction]] = [[] for _ in range(num_threads)]
    for row in rows[1:]:
        for column in range(num_threads):
            cell = row[column] if column < len(row) else ""
            if not cell:
                continue
            if arch == "x86":
                instruction = _parse_x86_instruction(cell)
            else:
                instruction = _parse_power_arm_instruction(cell, arch)
            if instruction is not None:
                threads[column].append(instruction)

    condition = _parse_condition(" ".join(condition_lines)) if condition_lines else None

    # x86 loads/stores address memory directly: synthesise the address registers.
    if arch == "x86":
        for thread_index, instructions in enumerate(threads):
            for instruction in instructions:
                if isinstance(instruction, (Load, Store)):
                    location = instruction.addr_reg[2:]
                    init_registers.setdefault((thread_index, instruction.addr_reg), location)
                    init_memory.setdefault(location, 0)

    for value in init_registers.values():
        if isinstance(value, str):
            init_memory.setdefault(value, 0)

    return LitmusTest(
        name=name,
        arch=arch,
        threads=threads,
        init_registers=init_registers,
        init_memory=init_memory,
        condition=condition,
        doc=doc,
    )
