"""Simulated Power and ARM chips.

Each chip is described by an implementation model (what the pipeline and
memory system actually do) plus errata (behaviours outside that model
that appear rarely).  The populations mirror Sec. 8.1:

=============  =======  ===========================================================
chip           family   behaviour
=============  =======  ===========================================================
Power G5/6/7   power    architectural Power model minus read-to-write reordering
                        (load-buffering behaviours are allowed but "not yet
                        implemented", hence unseen — Sec. 8.1.1)
Tegra2/3       arm      conservative ARM (no early commit); load-load hazard
                        erratum; Tegra3 additionally exhibits OBSERVATION
                        violations (Fig. 34/35)
APQ8060/8064   arm      proposed ARM model (early-commit behaviours of Fig. 32/33
                        are features); load-load hazard erratum
Exynos, A5X,   arm      conservative ARM with the load-load hazard erratum
A6X
=============  =======  ===========================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.architectures import (
    arm_architecture,
    arm_llh_architecture,
    power_architecture,
    power_arm_architecture,
)
from repro.core.execution import Execution
from repro.core.model import Architecture, CheckResult, Model
from repro.core.relation import Relation
from repro.herd.simulator import Simulator
from repro.litmus.ast import LitmusTest


# ---------------------------------------------------------------------------
# Implementation models
# ---------------------------------------------------------------------------

def _strengthen_no_rw_reordering(base: Architecture, name: str) -> Architecture:
    """An implementation that never reorders a read with a po-later write.

    This is how we model "architecturally allowed but not implemented":
    load-buffering (lb) behaviours disappear, matching the Power
    observations of Sec. 8.1.1 and the conservative ARM implementations.
    """

    def ppo_fn(execution: Execution) -> Relation:
        return base.ppo_fn(execution) | execution.restrict_rw(execution.po)

    return Architecture(
        name=name,
        ppo_fn=ppo_fn,
        fences_fn=base.fences_fn,
        prop_fn=base.prop_fn,
        ffence_fn=base.ffence_fn,
        sc_per_location_variant=base.sc_per_location_variant,
        propagation_variant=base.propagation_variant,
        description=f"{base.description} (implementation: no R->W reordering)",
    )


class _NoObservationModel:
    """An erratum model: ARM with broken write-propagation tracking.

    Used to simulate the Tegra3 anomalies of Fig. 34/35, where behaviours
    that OBSERVATION must uncontroversially forbid (mp+dmb+ctrlisb
    variants with extra same-location accesses) were nonetheless
    observed.  The erratum keeps SC PER LOCATION (in its llh form) and
    NO THIN AIR, but drops OBSERVATION and weakens the propagation order
    to the plain write-to-write fence ordering — i.e. the chip's
    cumulativity machinery is assumed to misbehave.
    """

    def __init__(self) -> None:
        self._base = arm_llh_architecture()
        self.name = "arm-no-observation"

    def _weak_prop(self, execution: Execution, ppo: Relation, fences: Relation) -> Relation:
        hb_star = (ppo | fences | execution.rfe).reflexive_transitive_closure(
            execution.memory_events
        )
        prop_base = (fences | execution.rfe.seq(fences)).seq(hb_star)
        return execution.restrict_ww(prop_base)

    def check(self, execution: Execution, stop_at_first: bool = False) -> CheckResult:
        from repro.core import axioms as ax

        arch = self._base
        violations = []
        violation = ax.check_sc_per_location(execution, arch.sc_per_location_variant)
        if violation is not None:
            violations.append(violation)
            if stop_at_first:
                return CheckResult(False, tuple(violations))
        ppo = arch.ppo(execution)
        fences = arch.fences(execution)
        hb = ppo | fences | execution.rfe
        violation = ax.check_no_thin_air(execution, hb)
        if violation is not None:
            violations.append(violation)
            if stop_at_first:
                return CheckResult(False, tuple(violations))
        prop = self._weak_prop(execution, ppo, fences)
        violation = ax.check_propagation(execution, prop, arch.propagation_variant)
        if violation is not None:
            violations.append(violation)
        return CheckResult(not violations, tuple(violations))

    def allows(self, execution: Execution) -> bool:
        return self.check(execution, stop_at_first=True).allowed


@dataclass(frozen=True)
class Erratum:
    """A hardware anomaly: extra behaviours beyond the implementation model.

    ``model`` is the (weaker) model whose additional outcomes can be
    observed; ``rate`` is the per-run probability of observing one of
    those outcomes, mirroring the very low frequencies of Tab. VI
    (e.g. the load-load hazard shows up a handful of times per billion
    runs).
    """

    name: str
    model: object
    rate: float
    description: str = ""


@dataclass
class SimulatedChip:
    """One simulated machine."""

    name: str
    family: str  # "power" or "arm"
    implementation: object  # a Model-like object (has .check / .allows)
    errata: Tuple[Erratum, ...] = ()
    description: str = ""

    def observed_outcomes(
        self,
        test: LitmusTest,
        iterations: int = 1_000_000,
        rng: Optional[random.Random] = None,
        context=None,
    ) -> Dict[Tuple[Tuple[str, int], ...], int]:
        """Run a litmus test: outcome -> observation count.

        Outcomes allowed by the implementation model are observed with
        "common" frequencies; erratum outcomes appear with their (low)
        rates and may not show up at all in a given campaign, exactly as
        on real silicon.  ``context`` optionally supplies the test's
        memoized :class:`repro.campaign.SimulationContext` — it is
        model-independent, so one context serves the implementation
        model and every erratum model alike.
        """
        rng = rng if rng is not None else random.Random(hash((self.name, test.name)) & 0xFFFF)
        counts: Dict[Tuple[Tuple[str, int], ...], int] = {}

        base = Simulator(self.implementation).run(test, context=context)
        common = sorted(base.allowed_outcomes)
        if common:
            weights = [rng.random() + 0.1 for _ in common]
            total_weight = sum(weights)
            for outcome, weight in zip(common, weights):
                counts[outcome] = max(1, int(iterations * weight / total_weight))

        for erratum in self.errata:
            extra = Simulator(erratum.model).run(test, context=context)
            rare = sorted(extra.allowed_outcomes - base.allowed_outcomes)
            for outcome in rare:
                expectation = iterations * erratum.rate
                observed = rng.randint(0, max(1, int(2 * expectation)))
                if observed > 0:
                    counts[outcome] = counts.get(outcome, 0) + observed
        return counts

    def observes_target(self, test: LitmusTest, iterations: int = 1_000_000,
                        rng: Optional[random.Random] = None) -> bool:
        """Does the chip ever exhibit the test's target (exists) outcome?"""
        assert test.condition is not None
        for outcome in self.observed_outcomes(test, iterations, rng):
            observed = dict(outcome)
            if all(
                observed.get(
                    f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
                )
                == atom.value
                for atom in test.condition.atoms
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# Chip populations
# ---------------------------------------------------------------------------

def default_power_chips() -> List[SimulatedChip]:
    """Power G5 / 6 / 7: sound w.r.t. the Power model, lb not implemented."""
    implementation = Model(_strengthen_no_rw_reordering(power_architecture(), "power-impl"))
    return [
        SimulatedChip(
            name=name,
            family="power",
            implementation=implementation,
            errata=(),
            description="IBM Power machine (no anomalies observed, Sec. 8.1.1)",
        )
        for name in ("Power6", "Power7", "PowerG5")
    ]


def default_arm_chips() -> List[SimulatedChip]:
    """The ARM population of Sec. 8.1.2 with its documented anomalies."""
    conservative = Model(_strengthen_no_rw_reordering(power_arm_architecture(), "arm-conservative"))
    # The Qualcomm systems exhibit the early-commit behaviours of Figs. 32/33,
    # which involve read-to-write reordering around forwarded writes; their
    # implementation model is therefore the full proposed ARM model.
    early_commit = Model(arm_architecture())
    # The load-load hazard erratum only relaxes same-location read-read
    # ordering on top of the conservative implementation: it must not leak
    # the early-commit behaviours, which the paper observed on Qualcomm
    # machines only.
    llh_architecture = replace(
        _strengthen_no_rw_reordering(power_arm_architecture(), "arm-conservative-llh"),
        sc_per_location_variant="llh",
    )
    load_load_hazard = Erratum(
        name="load-load-hazard",
        model=Model(llh_architecture),
        rate=1e-4,
        description="coRR violations, acknowledged as a bug by ARM (Sec. 8.1.2)",
    )
    observation_violation = Erratum(
        name="observation-violation",
        model=_NoObservationModel(),
        rate=5e-6,
        description="mp+dmb+ctrlisb-style violations observed on Tegra3 (Fig. 35)",
    )
    chips = [
        SimulatedChip("Tegra2", "arm", conservative, (load_load_hazard,),
                      "NVIDIA Tegra 2 (Cortex-A9)"),
        SimulatedChip("Tegra3", "arm", conservative,
                      (load_load_hazard, observation_violation),
                      "NVIDIA Tegra 3 (Cortex-A9): load-load hazard and OBSERVATION anomalies"),
        SimulatedChip("APQ8060", "arm", early_commit, (load_load_hazard,),
                      "Qualcomm APQ8060: early-commit behaviours of Fig. 32 are features"),
        SimulatedChip("APQ8064", "arm", early_commit, (load_load_hazard,),
                      "Qualcomm APQ8064 (Krait): early-commit behaviours of Fig. 33"),
        SimulatedChip("Exynos4412", "arm", conservative, (load_load_hazard,),
                      "Samsung Exynos 4412 (Cortex-A9)"),
        SimulatedChip("Exynos5250", "arm", conservative, (load_load_hazard,),
                      "Samsung Exynos 5250 (Cortex-A15)"),
        SimulatedChip("A6X", "arm", conservative, (load_load_hazard,),
                      "Apple Swift (A6X)"),
    ]
    return chips


def chip_by_name(name: str) -> SimulatedChip:
    for chip in default_power_chips() + default_arm_chips():
        if chip.name.lower() == name.lower():
            return chip
    raise KeyError(f"unknown chip {name!r}")
