"""The litmus testing campaign harness (Tab. V, VI, VIII).

``run_campaign`` replays the paper's methodology: every test of a family
is run on a population of (simulated) chips and its observed outcomes
are compared with the outcomes a model allows.

* a test is **invalid** when the hardware exhibits its target outcome
  although the model forbids it — either the model is too strong or the
  hardware is buggy (Sec. 8.1);
* a test is **unseen** when the model allows the target outcome but no
  chip ever exhibits it — the model is weaker than current
  implementations, which is expected (e.g. lb on Power).

``classify_anomalies`` reproduces the Tab. VIII breakdown: for every
observed-but-forbidden execution, record which axioms reject it
(S = SC PER LOCATION, T = NO THIN AIR, O = OBSERVATION, P = PROPAGATION).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.axioms import (
    AXIOM_NO_THIN_AIR,
    AXIOM_OBSERVATION,
    AXIOM_PROPAGATION,
    AXIOM_SC_PER_LOCATION,
)
from repro.core.model import Model
from repro.hardware.chips import SimulatedChip
from repro.herd.enumerate import candidate_executions
from repro.herd.simulator import Simulator
from repro.litmus.ast import LitmusTest
from repro.report import JsonReportMixin, outcome_key

Outcome = Tuple[Tuple[str, int], ...]

_AXIOM_LETTER = {
    AXIOM_SC_PER_LOCATION: "S",
    AXIOM_NO_THIN_AIR: "T",
    AXIOM_OBSERVATION: "O",
    AXIOM_PROPAGATION: "P",
}


@dataclass
class ObservedTest(JsonReportMixin):
    """One test's campaign record."""

    test: LitmusTest
    model_verdict: str
    model_outcomes: FrozenSet[Outcome]
    observed_outcomes: Dict[str, Dict[Outcome, int]]  # chip -> outcome -> count
    target_observed: bool

    @property
    def invalid(self) -> bool:
        """Observed on hardware although the model forbids it."""
        return self.model_verdict == "Forbid" and self.target_observed

    @property
    def unseen(self) -> bool:
        """Allowed by the model but never observed."""
        return self.model_verdict == "Allow" and not self.target_observed

    def total_target_observations(self) -> int:
        total = 0
        for per_chip in self.observed_outcomes.values():
            for outcome, count in per_chip.items():
                if _outcome_matches_condition(self.test, outcome):
                    total += count
        return total

    @property
    def verdict(self) -> str:
        """The model's Allow/Forbid verdict for the test's target outcome."""
        return self.model_verdict

    def describe(self) -> str:
        status = "invalid" if self.invalid else ("unseen" if self.unseen else "agrees")
        return (
            f"{self.test.name}: model says {self.model_verdict}, "
            f"target observed {self.total_target_observations()} times ({status})"
        )

    def to_dict(self) -> Dict:
        return {
            "type": "observed-test",
            "test": self.test.name,
            "verdict": self.model_verdict,
            "model_verdict": self.model_verdict,
            "target_observed": self.target_observed,
            "target_observations": self.total_target_observations(),
            "invalid": self.invalid,
            "unseen": self.unseen,
            "model_outcomes": sorted(
                outcome_key(outcome) for outcome in self.model_outcomes
            ),
            "observed_outcomes": {
                chip: {
                    outcome_key(outcome): count
                    for outcome, count in sorted(per_chip.items())
                }
                for chip, per_chip in sorted(self.observed_outcomes.items())
            },
        }


@dataclass
class CampaignReport(JsonReportMixin):
    """Summary of a campaign: the content of one column of Tab. V."""

    model_name: str
    results: List[ObservedTest] = field(default_factory=list)
    #: quarantined tests of a supervised campaign
    #: (:class:`~repro.campaign.FailedItem` records); ``results`` then
    #: covers exactly the survivors, in family order.
    errors: List = field(default_factory=list)

    @property
    def num_tests(self) -> int:
        return len(self.results)

    @property
    def invalid_tests(self) -> List[ObservedTest]:
        return [result for result in self.results if result.invalid]

    @property
    def unseen_tests(self) -> List[ObservedTest]:
        return [result for result in self.results if result.unseen]

    def summary_row(self) -> Dict[str, int]:
        return {
            "# tests": self.num_tests,
            "invalid": len(self.invalid_tests),
            "unseen": len(self.unseen_tests),
        }

    def describe(self) -> str:
        row = self.summary_row()
        quarantined = f", {len(self.errors)} quarantined" if self.errors else ""
        return (
            f"{self.model_name}: {row['# tests']} tests, "
            f"{row['invalid']} invalid, {row['unseen']} unseen{quarantined}"
        )

    def to_dict(self) -> Dict:
        return {
            "type": "hardware-campaign",
            "model": self.model_name,
            "num_tests": self.num_tests,
            "num_invalid": len(self.invalid_tests),
            "num_unseen": len(self.unseen_tests),
            "errors": [error.to_dict() for error in self.errors],
            "results": [result.to_dict() for result in self.results],
        }


def _outcome_matches_condition(test: LitmusTest, outcome: Outcome) -> bool:
    assert test.condition is not None
    observed = dict(outcome)
    return all(
        observed.get(f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name)
        == atom.value
        for atom in test.condition.atoms
    )


def observe_test(
    simulator: Simulator,
    test: LitmusTest,
    chips: Sequence[SimulatedChip],
    iterations: int,
    seeds: Sequence[int],
    context_cache=None,
) -> ObservedTest:
    """One test's campaign record: model summary plus chip observations.

    ``seeds`` holds one RNG seed per chip, drawn by the campaign parent
    so that sharded and serial campaigns observe identical outcomes.
    The model run and every chip's implementation/erratum simulations
    share the test's memoized context when a ``context_cache`` is given
    (the context is model-independent).
    """
    from repro import telemetry as _telemetry

    registry = _telemetry._ACTIVE
    if registry is not None:
        registry.count("hardware.observations")
        registry.count("hardware.chip_runs", len(chips))
    context = context_cache.get(test) if context_cache is not None else None
    model_result = simulator.run(test, context=context)
    observed: Dict[str, Dict[Outcome, int]] = {}
    target_observed = False
    for chip, chip_seed in zip(chips, seeds):
        chip_rng = random.Random(chip_seed)
        counts = chip.observed_outcomes(
            test, iterations=iterations, rng=chip_rng, context=context
        )
        observed[chip.name] = counts
        if any(_outcome_matches_condition(test, outcome) for outcome in counts):
            target_observed = True
    return ObservedTest(
        test=test,
        model_verdict=model_result.verdict,
        model_outcomes=model_result.allowed_outcomes,
        observed_outcomes=observed,
        target_observed=target_observed,
    )


def _chip_spec(chip: SimulatedChip):
    """Everything comparable about a chip's behaviour-determining config.

    Implementation models carry closures, so they are compared through
    their (model, architecture) name/description surface — the default
    populations give every distinct implementation a distinct name.
    """

    def model_spec(model) -> tuple:
        architecture = getattr(model, "architecture", None)
        return (
            type(model).__name__,
            getattr(model, "name", None),
            getattr(architecture, "description", None),
            getattr(architecture, "sc_per_location_variant", None),
        )

    return (
        chip.name,
        chip.family,
        chip.description,
        model_spec(chip.implementation),
        tuple(
            (e.name, e.rate, e.description, model_spec(e.model)) for e in chip.errata
        ),
    )


def _chip_references(chips: Sequence[SimulatedChip]):
    """Chip names workers can re-hydrate, or None if any chip is custom.

    Chip implementations carry closures and cannot be pickled, so the
    sharded path ships names and rebuilds via
    :func:`repro.hardware.chips.chip_by_name` — but only for chips whose
    whole comparable configuration (:func:`_chip_spec`) matches the
    default registry entry.  Anything else — an unknown name, a swapped
    implementation model, a tweaked erratum — forces the serial path,
    which runs the caller's actual chip objects.
    """
    from repro.hardware.chips import chip_by_name

    references = []
    for chip in chips:
        try:
            rebuilt = chip_by_name(chip.name)
        except KeyError:
            return None
        if _chip_spec(rebuilt) != _chip_spec(chip):
            return None
        references.append(chip.name)
    return tuple(references)


def run_campaign(
    tests: Iterable[LitmusTest],
    chips: Sequence[SimulatedChip],
    model,
    iterations: int = 1_000_000,
    seed: int = 2014,
    processes=None,
    context_cache=None,
    chunk_size: int = 4,
    pool=None,
    policy=None,
    errors: Optional[List] = None,
) -> CampaignReport:
    """Run a family of tests on a chip population and compare with a model.

    ``processes`` (an int, or ``"auto"`` for one worker per core) shards
    the per-test work over the campaign runtime; the model must then be
    a *name* and the chips must come from the default populations, so
    workers can re-hydrate both (custom chip objects fall back to the
    serial path).  Chip RNG seeds are drawn up front by the parent in
    the serial order, so sharded reports are identical to serial ones.
    ``pool`` reuses an open :class:`repro.campaign.CampaignPool` (a
    session's warm workers) instead of spinning a fresh one per call.

    Every test is simulated several times per campaign — once under the
    reference model, then once per chip implementation model plus its
    errata — so the serial path keeps a per-test context cache of its
    own when the caller does not supply one (workers always do, per
    process).

    ``policy`` (a :class:`~repro.campaign.SupervisorPolicy`, or the
    pool's own default) makes the sharded campaign fault-tolerant:
    quarantined tests are dropped from ``report.results`` and recorded
    as :class:`~repro.campaign.FailedItem` entries on ``report.errors``
    (also appended to ``errors`` when the caller passes a list).
    """
    from repro.campaign import ContextCache, runner as campaign_runner

    tests = list(tests)
    if context_cache is None:
        context_cache = ContextCache()
    simulator = Simulator(model)
    report = CampaignReport(model_name=simulator.model_name)
    rng = random.Random(seed)
    seeds = [tuple(rng.randint(0, 2**31) for _ in chips) for _ in tests]

    chip_references = None
    if (
        (pool is not None or campaign_runner.worker_count(processes) > 1)
        and isinstance(model, str)
        and len(tests) > 1
    ):
        chip_references = _chip_references(chips)

    if chip_references is not None:
        from repro.campaign.jobs import HardwareJob, hardware_chunk

        jobs = [
            HardwareJob(test, model, chip_references, iterations, test_seeds)
            for test, test_seeds in zip(tests, seeds)
        ]
        report.results.extend(
            campaign_runner.run_sharded(
                hardware_chunk,
                jobs,
                processes=processes,
                chunk_size=chunk_size,
                pool=pool,
                policy=policy,
                errors=report.errors,
            )
        )
        if errors is not None:
            errors.extend(report.errors)
    else:
        for test, test_seeds in zip(tests, seeds):
            report.results.append(
                observe_test(
                    simulator, test, chips, iterations, test_seeds, context_cache
                )
            )
    return report


def classify_anomalies(
    report: CampaignReport, model
) -> Dict[str, int]:
    """Tab. VIII: count observed-but-forbidden executions per violated-axiom set.

    For every invalid test, every candidate execution whose outcome was
    observed on some chip yet is rejected by the model is classified by
    the set of axioms rejecting it (e.g. ``"S"``, ``"OP"``, ``"STO"``).
    """
    model = model if isinstance(model, Model) or hasattr(model, "check") else Model(model)
    classification: Dict[str, int] = {}

    for result in report.results:
        if not result.invalid:
            continue
        observed_outcomes = set()
        for per_chip in result.observed_outcomes.values():
            observed_outcomes.update(per_chip)
        for candidate in candidate_executions(result.test):
            outcome = candidate.outcome(result.test)
            if outcome not in observed_outcomes:
                continue
            check = model.check(candidate.execution, stop_at_first=False)
            if check.allowed:
                continue
            letters = sorted(
                {_AXIOM_LETTER.get(v.axiom, "?") for v in check.violations},
                key="STOP".index,
            )
            key = "".join(letters)
            classification[key] = classification.get(key, 0) + 1
    return classification
