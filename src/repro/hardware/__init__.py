"""Simulated hardware and the litmus testing campaign (Sec. 8.1).

The paper's experiments ran thousands of generated litmus tests on Power
(G5/6/7) and ARM (Tegra, Qualcomm APQ, Exynos, Apple A5X/A6X) machines.
We do not have that silicon; instead each chip is simulated by

* an *implementation model* — an instance of the framework describing
  what the silicon actually implements, typically **stronger** than the
  architectural model (e.g. current Power cores do not exhibit the
  load-buffering behaviours the architecture allows), and
* a set of *errata* — weaker models whose extra behaviours show up with
  a small observation frequency: the ARM Cortex-A9-era load-load hazard
  (acknowledged as a bug by ARM), the early-commit behaviours of
  Qualcomm systems (Fig. 32/33) and the OBSERVATION violations seen on
  Tegra3 (Fig. 35).

The campaign harness replays the paper's methodology: run a test family
on the simulated chips, compare observed outcomes with a model's allowed
outcomes, and classify the differences ("invalid" = observed but
forbidden, "unseen" = allowed but never observed) — the quantities of
Tab. V, VI and VIII.
"""

from repro.hardware.chips import (
    SimulatedChip,
    Erratum,
    default_power_chips,
    default_arm_chips,
    chip_by_name,
)
from repro.hardware.testing import (
    ObservedTest,
    CampaignReport,
    observe_test,
    run_campaign,
    classify_anomalies,
)

__all__ = [
    "SimulatedChip",
    "Erratum",
    "default_power_chips",
    "default_arm_chips",
    "chip_by_name",
    "ObservedTest",
    "CampaignReport",
    "run_campaign",
    "observe_test",
    "classify_anomalies",
]
