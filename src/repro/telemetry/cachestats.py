"""One hit/miss/eviction interface for every cache of the toolbox.

Before this module each cache grew its own ad-hoc probe —
``fences.ilp.memo_stats()``, ``cat.stdlib.load_stats()``, the Session's
resolved-model hit counters, ``ContextCache.stats()`` — with mutually
inconsistent shapes.  A :class:`CacheStats` is the one shape they all
share now: the owning cache calls :meth:`hit`/:meth:`miss`/:meth:`evict`
at the natural points, supplies an ``entries`` callable so the current
size is always live, and every probe renders through :meth:`as_dict`.

When a telemetry registry is installed (``repro.telemetry.enable()``),
each event is additionally mirrored into the active registry as
``cache.<name>.hits`` / ``.misses`` / ``.evictions`` counters — which is
how *worker-process* cache traffic becomes visible in a merged
``Session.stats()`` tree: the worker's counters ride the per-chunk
snapshot home.  With no registry installed the mirror is a single
``is None`` check per cache event.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

__all__ = ["CacheStats"]


class CacheStats:
    """Hit/miss/eviction counters of one named cache.

    ``expirations`` attributes the *idle-TTL* share of the eviction
    traffic: an entry that aged out counts as both an eviction (the
    historical aggregate every probe already reads) and an expiration,
    so a long-lived owner can tell "the cache is too small" (evictions
    without expirations) from "entries idle out between batches"
    (evictions matched by expirations) straight off ``GET /stats``.
    """

    __slots__ = ("name", "hits", "misses", "evictions", "expirations",
                 "_entries", "_hit_key", "_miss_key", "_evict_key",
                 "_expire_key")

    def __init__(self, name: str, entries: Optional[Callable[[], int]] = None):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self._entries = entries
        self._hit_key = f"cache.{name}.hits"
        self._miss_key = f"cache.{name}.misses"
        self._evict_key = f"cache.{name}.evictions"
        self._expire_key = f"cache.{name}.expirations"

    # The guards read repro.telemetry's module-level registry directly:
    # a cache event while telemetry is disabled costs one attribute load
    # and one `is None` test beyond the local increment.

    def hit(self, amount: int = 1) -> None:
        self.hits += amount
        registry = _active()
        if registry is not None:
            registry.count(self._hit_key, amount)

    def miss(self, amount: int = 1) -> None:
        self.misses += amount
        registry = _active()
        if registry is not None:
            registry.count(self._miss_key, amount)

    def evict(self, amount: int = 1) -> None:
        self.evictions += amount
        registry = _active()
        if registry is not None:
            registry.count(self._evict_key, amount)

    def expire(self, amount: int = 1) -> None:
        """Count *amount* idle-TTL expirations (also counted as
        evictions by the owner — see the class docstring)."""
        self.expirations += amount
        registry = _active()
        if registry is not None:
            registry.count(self._expire_key, amount)

    @property
    def entries(self) -> int:
        """Live entry count (0 when the owner supplied no counter)."""
        return self._entries() if self._entries is not None else 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.total
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def as_dict(self) -> Dict[str, int]:
        """The uniform probe shape of every cache."""
        return {
            "name": self.name,
            "entries": self.entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats({self.name!r}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


_TELEMETRY = None


def _active():
    # Lazy module memo: `repro.telemetry` imports this module, so the
    # reverse reference resolves on first use instead of at import time.
    global _TELEMETRY
    if _TELEMETRY is None:
        from repro import telemetry as _module

        _TELEMETRY = _module
    return _TELEMETRY._ACTIVE
