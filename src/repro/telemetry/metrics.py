"""The process-local metrics registry: counters, gauges, histograms, spans.

A :class:`Metrics` object is a plain in-memory registry.  It knows
nothing about the simulator, the campaign runtime or the session — the
instrumented layers push numbers in, and three read-out shapes come
out:

* :meth:`Metrics.snapshot` — a picklable, JSON-plain
  :class:`MetricsSnapshot` implementing the :class:`repro.report.Report`
  protocol (``describe``/``to_dict``/``to_json``), which is also the
  unit of **cross-process aggregation**: campaign chunk workers snapshot
  their registry and the parent folds the snapshots back in with
  :meth:`Metrics.merge` (counters add, histograms combine, spans
  concatenate — the fold is order-independent on every total);
* :meth:`Metrics.export_jsonl` — one JSON line per recorded span plus a
  trailing summary line, the trace format ``Session.trace`` tees;
* the snapshot's ``describe()`` — a human-readable table.

Histograms keep exact ``count``/``total``/``min``/``max`` plus a
bounded sample window for the p50/p99 read-outs, so a registry's memory
stays bounded no matter how long a campaign runs; likewise the span
buffer is a bounded ring (oldest events fall off first).

Nothing here is hot-path code: the zero-overhead story lives in
:mod:`repro.telemetry` (the package ``__init__``), whose module-level
guards short-circuit to no-ops while no registry is installed.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional

from repro.report import JsonReportMixin

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "MetricsSnapshot",
    "SpanEvent",
]

#: Retained histogram samples per metric (percentiles cover this window).
DEFAULT_MAX_SAMPLES = 1024
#: Retained span events (the ring buffer's capacity).
DEFAULT_MAX_SPANS = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins level (pool sizes, utilization ratios)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


def _percentile(ordered: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


class Histogram:
    """A distribution: exact count/total/min/max, windowed percentiles.

    ``count`` and ``total`` are exact over every recorded value; the
    percentile read-outs are computed over the most recent
    ``max_samples`` values (a bounded window, so long campaigns never
    grow the registry).
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples")

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: "deque[float]" = deque(maxlen=max_samples)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._samples.append(value)

    def percentile(self, fraction: float) -> float:
        """The windowed nearest-rank percentile (``0.5`` for p50)."""
        return _percentile(sorted(self._samples), fraction)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": _percentile(ordered, 0.50),
            "p99": _percentile(ordered, 0.99),
        }

    def _merge_state(
        self, count: int, total: float, lo: Optional[float], hi: Optional[float],
        samples: Iterable[float],
    ) -> None:
        self.count += count
        self.total += total
        if lo is not None and (self.min is None or lo < self.min):
            self.min = lo
        if hi is not None and (self.max is None or hi > self.max):
            self.max = hi
        self._samples.extend(samples)


class SpanEvent:
    """One structured trace event: a named, tagged, timed region."""

    __slots__ = ("metrics", "name", "tags", "start", "duration", "_t0")

    def __init__(self, metrics: Optional["Metrics"], name: str, tags: Dict[str, Any]):
        self.metrics = metrics
        self.name = name
        self.tags = tags
        self.start = 0.0  # wall-clock epoch seconds, comparable across processes
        self.duration = 0.0
        self._t0 = 0.0

    def __enter__(self) -> "SpanEvent":
        self.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.duration = time.perf_counter() - self._t0
        if self.metrics is not None:
            self.metrics._record_span(self)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "name": self.name,
            "tags": {str(key): _plain_tag(value) for key, value in self.tags.items()},
            "start": self.start,
            "duration": self.duration,
        }


def _plain_tag(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class _TimerContext:
    """Times a region into one histogram (no trace event)."""

    __slots__ = ("histogram", "_t0")

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.histogram.record(time.perf_counter() - self._t0)


class Metrics:
    """The registry: named counters, gauges, histograms and a span ring.

    All methods are cheap dictionary operations; none allocate beyond
    the first use of a name.  Registries are process-local — for
    campaign workers the runtime installs a fresh registry per chunk,
    snapshots it, and the parent merges the snapshots (see
    :func:`repro.campaign.runner.run_sharded`).
    """

    def __init__(
        self,
        max_spans: int = DEFAULT_MAX_SPANS,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ):
        self.max_samples = max_samples
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: "deque[SpanEvent]" = deque(maxlen=max_spans)
        #: spans dropped because the ring buffer was full.
        self.spans_dropped = 0

    # -- write side ---------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = Gauge(name)
            self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = Histogram(name, self.max_samples)
            self._histograms[name] = histogram
        return histogram

    def count(self, name: str, amount: int = 1) -> None:
        self.counter(name).add(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).record(value)

    def timer(self, name: str) -> _TimerContext:
        """``with metrics.timer("x"): ...`` records seconds into
        histogram ``x`` (no trace event — use :meth:`span` for those)."""
        return _TimerContext(self.histogram(name))

    def span(self, name: str, **tags: Any) -> SpanEvent:
        """``with metrics.span("x", test="mp"): ...`` appends a
        structured trace event to the ring buffer *and* records the
        duration into histogram ``x`` (so spans get p50/p99 for free)."""
        return SpanEvent(self, name, tags)

    def _record_span(self, event: SpanEvent) -> None:
        if len(self._spans) == self._spans.maxlen:
            self.spans_dropped += 1
        self._spans.append(event)
        self.histogram(event.name).record(event.duration)

    # -- read side ----------------------------------------------------------------

    @property
    def spans(self) -> List[SpanEvent]:
        return list(self._spans)

    def snapshot(self) -> "MetricsSnapshot":
        """A picklable, JSON-plain copy of the registry's current state."""
        return MetricsSnapshot(
            counters={name: c.value for name, c in sorted(self._counters.items())},
            gauges={name: g.value for name, g in sorted(self._gauges.items())},
            histograms={
                name: dict(
                    h.summary(),
                    samples=[float(v) for v in h._samples],
                )
                for name, h in sorted(self._histograms.items())
            },
            spans=[event.as_dict() for event in self._spans],
            spans_dropped=self.spans_dropped,
        )

    def merge(self, snapshot: "MetricsSnapshot") -> None:
        """Fold a snapshot (typically a worker's) into this registry.

        Counters and histogram counts/totals add, min/max widen, gauges
        take the snapshot's value, spans append (bounded by the ring).
        Every *total* is order-independent under repeated merges.
        """
        for name, value in snapshot.counters.items():
            self.counter(name).add(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name).set(value)
        for name, summary in snapshot.histograms.items():
            self.histogram(name)._merge_state(
                int(summary.get("count", 0)),
                float(summary.get("total", 0.0)),
                summary.get("min"),
                summary.get("max"),
                summary.get("samples", ()),
            )
        for span_dict in snapshot.spans:
            event = SpanEvent(None, span_dict["name"], dict(span_dict.get("tags", {})))
            event.start = span_dict.get("start", 0.0)
            event.duration = span_dict.get("duration", 0.0)
            if len(self._spans) == self._spans.maxlen:
                self.spans_dropped += 1
            self._spans.append(event)
        self.spans_dropped += snapshot.spans_dropped

    def export_jsonl(self, path: str) -> int:
        """Write the trace: one JSON line per span, then a summary line.

        Returns the number of lines written.  The summary line carries
        the counters, gauges and histogram summaries, so a trace file is
        self-contained."""
        snapshot = self.snapshot()
        lines = 0
        with open(path, "w", encoding="utf-8") as handle:
            for span_dict in snapshot.spans:
                handle.write(json.dumps(span_dict, sort_keys=True) + "\n")
                lines += 1
            summary = dict(snapshot.to_dict(), spans=len(snapshot.spans))
            summary["type"] = "metrics"
            handle.write(json.dumps(summary, sort_keys=True) + "\n")
            lines += 1
        return lines

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
        self.spans_dropped = 0


class MetricsSnapshot(JsonReportMixin):
    """A frozen, JSON-plain view of a registry — the merge/pickle unit.

    Every field is built from strings, numbers, lists and dictionaries
    only, so snapshots pickle without dragging any simulator, model or
    test object across a process boundary (asserted by the test-suite).
    """

    __slots__ = ("counters", "gauges", "histograms", "spans", "spans_dropped")

    def __init__(
        self,
        counters: Optional[Dict[str, int]] = None,
        gauges: Optional[Dict[str, float]] = None,
        histograms: Optional[Dict[str, Dict[str, Any]]] = None,
        spans: Optional[List[Dict[str, Any]]] = None,
        spans_dropped: int = 0,
    ):
        self.counters = counters or {}
        self.gauges = gauges or {}
        self.histograms = histograms or {}
        self.spans = spans or []
        self.spans_dropped = spans_dropped

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "telemetry",
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    key: value
                    for key, value in summary.items()
                    if key != "samples"
                }
                for name, summary in self.histograms.items()
            },
            "spans": [dict(span) for span in self.spans],
            "spans_dropped": self.spans_dropped,
        }

    def describe(self) -> str:
        """The registry as a human-readable table."""
        lines = ["telemetry:"]
        if self.counters:
            lines.append("  counters:")
            width = max(len(name) for name in self.counters)
            for name, value in sorted(self.counters.items()):
                lines.append(f"    {name:<{width}}  {value}")
        if self.gauges:
            lines.append("  gauges:")
            width = max(len(name) for name in self.gauges)
            for name, value in sorted(self.gauges.items()):
                lines.append(f"    {name:<{width}}  {value:.3f}")
        if self.histograms:
            lines.append("  histograms:")
            width = max(len(name) for name in self.histograms)
            for name, summary in sorted(self.histograms.items()):
                lines.append(
                    f"    {name:<{width}}  count={summary['count']}"
                    f" mean={summary['mean']:.6f}s"
                    f" p50={summary['p50']:.6f}s p99={summary['p99']:.6f}s"
                )
        lines.append(
            f"  spans: {len(self.spans)} recorded"
            + (f", {self.spans_dropped} dropped" if self.spans_dropped else "")
        )
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.gauges == other.gauges
            and self.histograms == other.histograms
            and self.spans == other.spans
            and self.spans_dropped == other.spans_dropped
        )
