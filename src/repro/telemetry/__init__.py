"""``repro.telemetry`` — spans, counters and engine statistics.

A dependency-free instrumentation layer with one process-global switch:

* :class:`Metrics` (:mod:`repro.telemetry.metrics`) is the registry —
  counters, gauges, histogram timers with p50/p99 read-outs, and a
  ``span(name, **tags)`` context manager producing structured trace
  events into a bounded ring buffer.  Snapshots are picklable and
  mergeable, which is how campaign workers report home; they render as
  JSONL and as a human-readable table via the uniform
  :class:`repro.report.Report` protocol.
* :class:`CacheStats` (:mod:`repro.telemetry.cachestats`) is the one
  hit/miss/eviction interface every cache of the toolbox implements —
  the context cache, the Session's resolved-model cache, the fence
  cycle memo, the ILP solve memo and the parsed-cat-model cache.
* This module owns the **active registry**: ``enable()`` installs one
  (process-global, like the root logger), ``disable()`` removes it, and
  the module-level verbs (:func:`count`, :func:`observe`, :func:`span`,
  :func:`timer`, ...) forward to it — or, while none is installed,
  short-circuit to no-ops.

The zero-telemetry path is the default and must stay overhead-free: the
instrumented layers guard every emission with :func:`enabled` (or read
``_ACTIVE`` directly), accumulate hot-loop statistics in local integers
and report once per walk, so a disabled process pays one ``is None``
test per *walk*, not per event.  ``benchmarks/bench_telemetry_overhead.py``
pins this.

Usage::

    from repro import Session

    with Session(model="power", telemetry=True) as session:
        session.repair(tests)
        print(session.stats()["telemetry"]["counters"]["engine.pruned_candidates"])

    # or standalone, without a session:
    from repro import telemetry

    registry = telemetry.enable()
    ... run anything ...
    print(registry.snapshot().describe())
    registry.export_jsonl("trace.jsonl")
    telemetry.disable()
"""

from __future__ import annotations

from typing import Any, Optional

from repro.telemetry.cachestats import CacheStats
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metrics,
    MetricsSnapshot,
    SpanEvent,
)

__all__ = [
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "MetricsSnapshot",
    "SpanEvent",
    "active",
    "count",
    "disable",
    "enable",
    "enabled",
    "observe",
    "set_gauge",
    "span",
    "timer",
]

#: The process-global active registry, or None while telemetry is off.
#: Read directly (``telemetry._ACTIVE is not None``) by hot-path guards.
_ACTIVE: Optional[Metrics] = None


def enabled() -> bool:
    """Is a registry installed?  The cheap guard every emission checks."""
    return _ACTIVE is not None


def active() -> Optional[Metrics]:
    """The installed registry, or None."""
    return _ACTIVE


def enable(metrics: Optional[Metrics] = None) -> Metrics:
    """Install *metrics* (or a fresh registry) as the active registry.

    Process-global and last-write-wins, exactly like configuring the
    root logger.  Returns the installed registry.  ``Session(...,
    telemetry=True)`` calls this with the session's own registry.
    """
    global _ACTIVE
    if metrics is None:
        metrics = Metrics()
    _ACTIVE = metrics
    return metrics


def disable() -> Optional[Metrics]:
    """Uninstall the active registry (returning it, for a final read)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def _swap(metrics: Optional[Metrics]) -> Optional[Metrics]:
    """Install *metrics* (which may be None), returning the previous
    registry — the campaign runtime brackets chunk execution with this."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = metrics
    return previous


# -- guarded module-level verbs (no-ops while disabled) -------------------------


class _NullContext:
    """The shared do-nothing context manager of the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_CONTEXT = _NullContext()


def count(name: str, amount: int = 1) -> None:
    if _ACTIVE is not None:
        _ACTIVE.count(name, amount)


def observe(name: str, value: float) -> None:
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    if _ACTIVE is not None:
        _ACTIVE.set_gauge(name, value)


def span(name: str, **tags: Any):
    """A trace-event context manager, or a shared no-op when disabled."""
    if _ACTIVE is not None:
        return _ACTIVE.span(name, **tags)
    return _NULL_CONTEXT


def timer(name: str):
    """A histogram-timer context manager, or a shared no-op when disabled."""
    if _ACTIVE is not None:
        return _ACTIVE.timer(name)
    return _NULL_CONTEXT
