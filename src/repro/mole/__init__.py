"""mole: static detection of weak-memory idioms in programs (Sec. 9).

mole explores a program to find the *static critical cycles* (and the
SC-per-location cycles) it contains: cycles alternating program order
and competing accesses, with at most two accesses per thread and at most
three accesses per location.  Each cycle is then named following the
litmus convention (mp, s, coWR, ...) and categorised by the axiom of the
model that would forbid it (SC PER LOCATION, NO THIN AIR, OBSERVATION,
PROPAGATION), which tells the programmer which fences or dependencies
protect the idiom.

* :mod:`repro.mole.analysis` — access collection, cycle enumeration,
  reduction rules, naming and axiom classification;
* :mod:`repro.mole.report` — per-program and per-corpus censuses
  (Tab. XIII and XIV);
* :mod:`repro.mole.corpus` — the synthetic "Debian" corpus: the PgSQL,
  RCU and Apache miniatures plus other classic concurrency idioms.
"""

from repro.mole.analysis import StaticAccess, StaticCycle, find_cycles
from repro.mole.report import MoleReport, analyse_program, analyse_corpus
from repro.mole.corpus import debian_corpus, corpus_package_names

__all__ = [
    "StaticAccess",
    "StaticCycle",
    "find_cycles",
    "MoleReport",
    "analyse_program",
    "analyse_corpus",
    "debian_corpus",
    "corpus_package_names",
]
