"""mole censuses: per-program and per-corpus pattern counts (Tab. XIII/XIV).

The paper reports, for PostgreSQL, RCU and Apache (and in aggregate for
the whole Debian distribution), how many static cycles of each pattern
(mp, s, coWR, ...) appear and which axiom of the model each falls under.
:func:`analyse_program` produces that census for one program;
:func:`analyse_corpus` aggregates over a package corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.mole.analysis import StaticCycle, find_cycles
from repro.report import JsonReportMixin
from repro.verification.program import Program


@dataclass
class MoleReport(JsonReportMixin):
    """The census of one program (or one package aggregate)."""

    name: str
    cycles: List[StaticCycle] = field(default_factory=list)

    @property
    def num_cycles(self) -> int:
        return len(self.cycles)

    def patterns(self) -> Dict[str, int]:
        """Pattern name -> number of cycles (one row group of Tab. XIII/XIV)."""
        counts: Dict[str, int] = {}
        for cycle in self.cycles:
            counts[cycle.name] = counts.get(cycle.name, 0) + 1
        return dict(sorted(counts.items()))

    def axioms(self) -> Dict[str, int]:
        """Axiom -> number of cycles falling under it."""
        counts: Dict[str, int] = {}
        for cycle in self.cycles:
            counts[cycle.axiom] = counts.get(cycle.axiom, 0) + 1
        return dict(sorted(counts.items()))

    def critical_cycles(self) -> List[StaticCycle]:
        return [cycle for cycle in self.cycles if cycle.is_critical]

    def sc_per_location_cycles(self) -> List[StaticCycle]:
        return [cycle for cycle in self.cycles if not cycle.is_critical]

    def describe(self) -> str:
        lines = [f"mole census for {self.name}: {self.num_cycles} cycles"]
        for pattern, count in self.patterns().items():
            lines.append(f"  {pattern:24s} {count}")
        lines.append("  by axiom:")
        for axiom, count in self.axioms().items():
            lines.append(f"    {axiom:20s} {count}")
        return "\n".join(lines)

    def to_dict(self) -> Dict:
        return {
            "type": "mole-census",
            "name": self.name,
            "num_cycles": self.num_cycles,
            "num_critical": len(self.critical_cycles()),
            "num_sc_per_location": len(self.sc_per_location_cycles()),
            "patterns": self.patterns(),
            "axioms": self.axioms(),
            "cycles": [cycle.describe() for cycle in self.cycles],
        }


def analyse_program(program: Program, max_cycle_length: int = 6) -> MoleReport:
    """Run mole on one program."""
    return MoleReport(name=program.name, cycles=find_cycles(program, max_cycle_length))


def analyse_corpus(
    corpus: Mapping[str, Iterable[Program]],
    max_cycle_length: int = 6,
    processes=None,
    chunk_size: int = 2,
    pool=None,
    policy=None,
    errors: Optional[List] = None,
) -> Dict[str, MoleReport]:
    """Run mole over a whole corpus; one aggregated report per package.

    ``processes`` (an int, or ``"auto"`` for one worker per core) shards
    the per-package cycle searches over the campaign runtime — packages
    are independent, and the static analysis is pure, so sharded
    censuses equal serial ones exactly.  ``pool`` reuses an open
    :class:`repro.campaign.CampaignPool` (a session's warm workers)
    instead of spinning a fresh one per call.

    ``policy`` (a :class:`~repro.campaign.SupervisorPolicy`, or the
    pool's own default) makes the sharded census fault-tolerant:
    quarantined packages are dropped from the report dictionary and
    appended to ``errors`` (when the caller passes a list) as
    :class:`~repro.campaign.FailedItem` records.
    """
    from repro.campaign import runner as campaign_runner

    packages = [(package, tuple(programs)) for package, programs in corpus.items()]
    if (
        pool is not None or campaign_runner.worker_count(processes) > 1
    ) and len(packages) > 1:
        from repro.campaign.jobs import MoleJob, mole_chunk

        jobs = [
            MoleJob(package, programs, max_cycle_length)
            for package, programs in packages
        ]
        return {
            package: MoleReport(name=package, cycles=cycles)
            for package, cycles in campaign_runner.run_sharded(
                mole_chunk,
                jobs,
                processes=processes,
                chunk_size=chunk_size,
                pool=pool,
                policy=policy,
                errors=errors,
            )
        }

    reports: Dict[str, MoleReport] = {}
    for package, programs in packages:
        cycles: List[StaticCycle] = []
        for program in programs:
            cycles.extend(find_cycles(program, max_cycle_length))
        reports[package] = MoleReport(name=package, cycles=cycles)
    return reports
