"""The static cycle search of mole (Sec. 9.1).

The analysis is deliberately an over-approximation, exactly as in the
paper: program logic (locks, loop exits) that might make a cycle
infeasible is ignored; both branches of every conditional contribute
their accesses; loops contribute one iteration of their body.

Pipeline:

1. :func:`collect_accesses` — flatten every thread into its ordered
   sequence of static shared-memory accesses (location + direction),
   remembering which fences separate them;
2. :func:`find_cycles` — build the graph of program-order edges and
   *competing* edges (accesses of distinct threads to the same location,
   at least one being a write), enumerate its elementary cycles and keep
   the static critical cycles and the SC-per-location cycles;
3. each cycle is *reduced* (``rf;fr = co``, ``co;co = co``, ``fr;co = fr``)
   to collapse single-access intermediate threads, *named* after the
   litmus convention (mp, s, coWR, ...) and *classified* by the axiom
   that would forbid it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.axioms import (
    AXIOM_NO_THIN_AIR,
    AXIOM_OBSERVATION,
    AXIOM_PROPAGATION,
    AXIOM_SC_PER_LOCATION,
)
from repro.diy.naming import CLASSIC_BASES
from repro.util.digraph import elementary_cycles
from repro.verification.program import (
    AssertStmt,
    Assign,
    FenceStmt,
    IfStmt,
    LoadStmt,
    Program,
    Statement,
    StoreStmt,
    WhileStmt,
)


@dataclass(frozen=True, order=True)
class StaticAccess:
    """One static shared-memory access of a program."""

    thread: int
    index: int
    location: str
    direction: str  # "R" or "W"

    def __str__(self) -> str:
        return f"T{self.thread}:{self.direction}{self.location}@{self.index}"


@dataclass
class ThreadAccesses:
    """The ordered accesses of one thread plus the fences between them."""

    thread: int
    accesses: List[StaticAccess] = field(default_factory=list)
    fences_after: Dict[int, Set[str]] = field(default_factory=dict)

    def fences_between(self, first: int, second: int) -> Set[str]:
        """Fence mnemonics appearing between two access indices."""
        result: Set[str] = set()
        for position in range(first, second):
            result |= self.fences_after.get(position, set())
        return result


def collect_accesses(program: Program) -> List[ThreadAccesses]:
    """Flatten every thread into its static access sequence."""
    result: List[ThreadAccesses] = []
    for thread_index, statements in enumerate(program.threads):
        thread = ThreadAccesses(thread=thread_index)

        def visit(block: Sequence[Statement]) -> None:
            for statement in block:
                if isinstance(statement, LoadStmt):
                    thread.accesses.append(
                        StaticAccess(thread_index, len(thread.accesses), statement.shared, "R")
                    )
                elif isinstance(statement, StoreStmt):
                    thread.accesses.append(
                        StaticAccess(thread_index, len(thread.accesses), statement.shared, "W")
                    )
                elif isinstance(statement, FenceStmt):
                    thread.fences_after.setdefault(len(thread.accesses) - 1, set()).add(
                        statement.name
                    )
                elif isinstance(statement, IfStmt):
                    visit(statement.then_branch)
                    visit(statement.else_branch)
                elif isinstance(statement, WhileStmt):
                    visit(statement.body)
                elif isinstance(statement, (Assign, AssertStmt)):
                    continue

        visit(statements)
        result.append(thread)
    return result


@dataclass
class StaticCycle:
    """One static cycle found by mole."""

    accesses: Tuple[StaticAccess, ...]
    edges: Tuple[str, ...]  # per edge: "po", "rf", "fr" or "co"
    fences: Tuple[FrozenSet[str], ...]  # fences on each po edge (empty for cmp edges)
    name: str
    axiom: str
    is_critical: bool

    def describe(self) -> str:
        chain = " -> ".join(
            f"{access}[{edge}]" for access, edge in zip(self.accesses, self.edges)
        )
        return f"{self.name} ({self.axiom}): {chain}"


def _competing_label(source: StaticAccess, target: StaticAccess) -> Optional[str]:
    """The communication label of a competing pair, or None if not competing."""
    if source.thread == target.thread or source.location != target.location:
        return None
    if source.direction == "W" and target.direction == "W":
        return "co"
    if source.direction == "W" and target.direction == "R":
        return "rf"
    if source.direction == "R" and target.direction == "W":
        return "fr"
    return None


def _per_thread_segments(cycle: Sequence[StaticAccess]) -> Dict[int, List[StaticAccess]]:
    segments: Dict[int, List[StaticAccess]] = {}
    for access in cycle:
        segments.setdefault(access.thread, []).append(access)
    return segments


def _is_static_critical(cycle: Sequence[StaticAccess]) -> bool:
    """Conditions (i) and (ii) of Sec. 9.1.2."""
    segments = _per_thread_segments(cycle)
    if len(segments) < 2:
        return False
    for accesses in segments.values():
        if len(accesses) > 2:
            return False
        if len(accesses) == 2 and accesses[0].location == accesses[1].location:
            return False
    per_location: Dict[str, Set[int]] = {}
    counts: Dict[str, int] = {}
    for access in cycle:
        per_location.setdefault(access.location, set()).add(access.thread)
        counts[access.location] = counts.get(access.location, 0) + 1
    for location, count in counts.items():
        if count > 3:
            return False
        if count > len(per_location[location]):
            return False  # accesses to one location must come from distinct threads
    return True


def _is_sc_per_location_cycle(cycle: Sequence[StaticAccess]) -> bool:
    """A cycle entirely about one location (the coXY family of Fig. 6)."""
    locations = {access.location for access in cycle}
    segments = _per_thread_segments(cycle)
    return len(locations) == 1 and len(cycle) <= 3 and len(segments) <= 2


_CO_REDUCTIONS = {("rf", "fr"): "co", ("co", "co"): "co", ("fr", "co"): "fr"}


def _reduce(
    accesses: List[StaticAccess], edges: List[str]
) -> Tuple[List[StaticAccess], List[str]]:
    """Apply the reduction rules of Sec. 9.1.2 to collapse intermediate threads."""
    changed = True
    while changed and len(edges) > 2:
        changed = False
        for index in range(len(edges)):
            nxt = (index + 1) % len(edges)
            key = (edges[index], edges[nxt])
            if key in _CO_REDUCTIONS:
                edges[index] = _CO_REDUCTIONS[key]
                # Drop the intermediate access (the target of edge `index`).
                drop = nxt
                del accesses[drop]
                del edges[nxt]
                changed = True
                break
    return accesses, edges


def _classic_name(accesses: Sequence[StaticAccess], edges: Sequence[str]) -> str:
    """Name a (reduced) cycle following the convention of Tab. III."""
    if _is_sc_per_location_cycle(accesses):
        segments = _per_thread_segments(accesses)
        signature = sorted("".join(a.direction for a in seg) for seg in segments.values())
        mapping = {
            ("W", "WW"): "coWW",
            ("WW",): "coWW",
            ("RW", "W"): "coRW2",
            ("RW",): "coRW1",
            ("W", "WR"): "coWR",
            ("RR", "W"): "coRR",
        }
        return mapping.get(tuple(signature), "co" + "".join(signature))

    per_thread: Dict[int, str] = {}
    order: List[int] = []
    for access in accesses:
        if access.thread not in per_thread:
            order.append(access.thread)
        per_thread[access.thread] = per_thread.get(access.thread, "") + access.direction
    signature = tuple(per_thread[thread] for thread in order)
    for rotation in range(len(signature)):
        rotated = signature[rotation:] + signature[:rotation]
        if rotated in CLASSIC_BASES:
            return CLASSIC_BASES[rotated]
    return "+".join(part.lower() for part in signature)


def _classify(accesses: Sequence[StaticAccess], edges: Sequence[str]) -> str:
    """Map a cycle to the axiom that would forbid it (Sec. 9.1.3).

    Following the categorisation step of Sec. 9.1: a cycle whose program
    order edges all stay on one location is an SC PER LOCATION cycle;
    a cycle whose communications are all read-froms falls under NO THIN
    AIR; one from-read (and no coherence) falls under OBSERVATION; the
    rest need the PROPAGATION axiom (and hence full fences).
    """
    n = len(edges)
    po_edges_same_location = all(
        accesses[i].location == accesses[(i + 1) % n].location
        for i in range(n)
        if edges[i] == "po"
    )
    communications = [edge for edge in edges if edge != "po"]
    if po_edges_same_location:
        return AXIOM_SC_PER_LOCATION
    if not communications:
        return AXIOM_SC_PER_LOCATION
    fr_count = sum(1 for edge in communications if edge == "fr")
    co_count = sum(1 for edge in communications if edge == "co")
    if all(edge == "rf" for edge in communications):
        return AXIOM_NO_THIN_AIR
    if fr_count == 1 and co_count == 0:
        return AXIOM_OBSERVATION
    return AXIOM_PROPAGATION


def find_cycles(
    program: Program, max_cycle_length: int = 6
) -> List[StaticCycle]:
    """All static critical cycles and SC-per-location cycles of a program."""
    threads = collect_accesses(program)
    accesses = [access for thread in threads for access in thread.accesses]

    edges: List[Tuple[StaticAccess, StaticAccess]] = []
    labels: Dict[Tuple[StaticAccess, StaticAccess], str] = {}
    for source in accesses:
        for target in accesses:
            if source == target:
                continue
            if source.thread == target.thread and source.index < target.index:
                edges.append((source, target))
                labels[(source, target)] = "po"
                continue
            label = _competing_label(source, target)
            if label is not None:
                edges.append((source, target))
                labels[(source, target)] = label

    cycles: List[StaticCycle] = []
    seen: Set[Tuple[StaticAccess, ...]] = set()
    for cycle_nodes in elementary_cycles(edges, max_length=max_cycle_length):
        if len(cycle_nodes) < 2:
            continue
        # Canonical rotation for deduplication.
        smallest = min(range(len(cycle_nodes)), key=lambda i: cycle_nodes[i])
        rotated = tuple(cycle_nodes[smallest:] + cycle_nodes[:smallest])
        if rotated in seen:
            continue
        seen.add(rotated)

        critical = _is_static_critical(rotated)
        sc_per_location = _is_sc_per_location_cycle(rotated)
        if not critical and not sc_per_location:
            continue

        nodes = list(rotated)
        edge_labels = [
            labels[(nodes[i], nodes[(i + 1) % len(nodes)])] for i in range(len(nodes))
        ]
        if "po" not in edge_labels:
            # A cycle made of communications only (e.g. a write racing a read)
            # does not oppose program order to communications: not an idiom.
            continue
        fences: List[FrozenSet[str]] = []
        for i in range(len(nodes)):
            source, target = nodes[i], nodes[(i + 1) % len(nodes)]
            if edge_labels[i] == "po":
                fences.append(
                    frozenset(threads[source.thread].fences_between(source.index, target.index))
                )
            else:
                fences.append(frozenset())

        reduced_nodes, reduced_edges = _reduce(list(nodes), list(edge_labels))
        name = _classic_name(reduced_nodes, reduced_edges)
        axiom = _classify(reduced_nodes, reduced_edges)
        cycles.append(
            StaticCycle(
                accesses=tuple(nodes),
                edges=tuple(edge_labels),
                fences=tuple(fences),
                name=name,
                axiom=axiom,
                is_critical=critical,
            )
        )
    cycles.sort(key=lambda cycle: (cycle.name, cycle.accesses))
    from repro import telemetry as _telemetry

    registry = _telemetry._ACTIVE
    if registry is not None:
        registry.count("mole.programs_analysed")
        registry.count("mole.static_cycles", len(cycles))
    return cycles
