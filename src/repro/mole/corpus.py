"""The synthetic "Debian" corpus analysed by mole (Sec. 9).

The paper runs mole over the 1590 concurrency-using source packages of
Debian 7.1; we do not ship that corpus, so this module provides faithful
miniatures of the idioms the paper highlights (PostgreSQL latches, Linux
RCU, the Apache fdqueue) plus other classic shared-memory idioms found
throughout systems code (spinlocks, seqlocks, double-checked
initialisation, racy statistics counters, Dekker-style flags, work
stealing).  Each "package" is a list of concurrent programs in the
verification IR.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.verification.examples import (
    apache_example,
    dekker_example,
    postgresql_example,
    rcu_example,
)
from repro.verification.program import (
    AssertStmt,
    Assign,
    BinOp,
    Const,
    FenceStmt,
    IfStmt,
    LoadStmt,
    Program,
    StoreStmt,
    Var,
    WhileStmt,
)


def spinlock_program() -> Program:
    """A test-and-set spinlock protecting a shared counter (coWR/coWW shapes)."""
    def worker() -> tuple:
        return (
            WhileStmt(BinOp("==", Var("got"), Const(0)), body=(
                LoadStmt("lock_state", "lock"),
                IfStmt(BinOp("==", Var("lock_state"), Const(0)), then_branch=(
                    StoreStmt("lock", Const(1)),
                    Assign("got", Const(1)),
                )),
            ), bound=1),
            LoadStmt("counter_value", "counter"),
            StoreStmt("counter", BinOp("+", Var("counter_value"), Const(1))),
            StoreStmt("lock", Const(0)),
        )

    return Program(
        name="spinlock",
        shared={"lock": 0, "counter": 0},
        threads=[worker(), worker()],
        description="test-and-set spinlock around a shared counter",
    )


def seqlock_program() -> Program:
    """A sequence-lock reader/writer pair (mp shapes around the sequence word)."""
    writer = (
        LoadStmt("seq0", "sequence"),
        StoreStmt("sequence", BinOp("+", Var("seq0"), Const(1))),
        FenceStmt("lwsync"),
        StoreStmt("payload", Const(42)),
        FenceStmt("lwsync"),
        StoreStmt("sequence", BinOp("+", Var("seq0"), Const(2))),
    )
    reader = (
        LoadStmt("seq_before", "sequence"),
        LoadStmt("value", "payload"),
        LoadStmt("seq_after", "sequence"),
        IfStmt(
            BinOp("and", BinOp("==", Var("seq_before"), Var("seq_after")),
                  BinOp("==", Var("seq_before"), Const(2))),
            then_branch=(AssertStmt(BinOp("==", Var("value"), Const(42)),
                                    message="a stable sequence number yields a consistent payload"),),
        ),
    )
    return Program(
        name="seqlock",
        shared={"sequence": 0, "payload": 0},
        threads=[writer, reader],
        description="sequence lock reader/writer",
    )


def double_checked_locking_program() -> Program:
    """Double-checked initialisation (the classic mp-with-control shape)."""
    initialiser = (
        StoreStmt("object_field", Const(5)),
        FenceStmt("lwsync"),
        StoreStmt("initialised", Const(1)),
    )
    user = (
        LoadStmt("flag", "initialised"),
        IfStmt(BinOp("==", Var("flag"), Const(1)), then_branch=(
            LoadStmt("field", "object_field"),
            AssertStmt(BinOp("==", Var("field"), Const(5)),
                       message="an initialised object has its fields set"),
        )),
    )
    return Program(
        name="double-checked-locking",
        shared={"object_field": 0, "initialised": 0},
        threads=[initialiser, user],
        description="double-checked initialisation",
    )


def statistics_counter_program() -> Program:
    """Racy statistics counters (pure SC-per-location shapes)."""
    def bump() -> tuple:
        return (
            LoadStmt("current", "hits"),
            StoreStmt("hits", BinOp("+", Var("current"), Const(1))),
        )

    return Program(
        name="stats-counter",
        shared={"hits": 0},
        threads=[bump(), bump()],
        description="racy statistics counter",
    )


def work_stealing_program() -> Program:
    """A bounded work-stealing deque interaction (sb/rwc shapes on top/bottom)."""
    owner = (
        StoreStmt("bottom", Const(1)),
        FenceStmt("sync"),
        LoadStmt("seen_top", "top"),
        IfStmt(BinOp("==", Var("seen_top"), Const(0)), then_branch=(
            StoreStmt("task_taken_by_owner", Const(1)),
        )),
    )
    thief = (
        StoreStmt("top", Const(1)),
        FenceStmt("sync"),
        LoadStmt("seen_bottom", "bottom"),
        IfStmt(BinOp("==", Var("seen_bottom"), Const(0)), then_branch=(
            StoreStmt("task_taken_by_thief", Const(1)),
        )),
    )
    checker = (
        LoadStmt("by_owner", "task_taken_by_owner"),
        LoadStmt("by_thief", "task_taken_by_thief"),
        AssertStmt(
            BinOp("!=", BinOp("+", Var("by_owner"), Var("by_thief")), Const(2)),
            message="a task is not taken twice",
        ),
    )
    return Program(
        name="work-stealing",
        shared={"top": 0, "bottom": 0, "task_taken_by_owner": 0, "task_taken_by_thief": 0},
        threads=[owner, thief, checker],
        description="work-stealing deque hand-off (store-buffering shape)",
    )


def debian_corpus() -> Dict[str, List[Program]]:
    """The synthetic corpus, keyed by "package" name."""
    return {
        "postgresql": [postgresql_example(True), postgresql_example(False)],
        "linux-rcu": [rcu_example(True), rcu_example(False)],
        "apache2": [apache_example(True), apache_example(False)],
        "dekker-sync": [dekker_example(False), dekker_example(True)],
        "spinlock-lib": [spinlock_program()],
        "seqlock-lib": [seqlock_program()],
        "singleton-init": [double_checked_locking_program()],
        "stats-daemon": [statistics_counter_program()],
        "work-stealing-rt": [work_stealing_program()],
    }


def corpus_package_names() -> Tuple[str, ...]:
    return tuple(sorted(debian_corpus()))
