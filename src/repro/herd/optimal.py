"""Optimal stateless exploration engine (GenMC-style; zero wasted walks).

The pruning engine (:mod:`repro.herd.engine`) still *enumerates* the
rf×co candidate grid — it cuts doomed subtrees early, but a location
with ``m`` same-thread writes makes it try all ``m!`` coherence
permutations per surviving prefix just to keep one.  This engine never
materializes the grid: following GenMC's optimal DPOR (Kokologiannakis
& Vafeiadis), it *constructs* each SC-PER-LOCATION-consistent execution
exactly once, extending an execution graph one event at a time and
consulting the model's per-location acyclicity via the po-loc
reachability rows shared with the pruning engine.

Two observations make the walk optimal in this setting (thread paths
fixed, read values fixed by the combination):

1. **The uniproc graph factorizes per location.**  Every edge of
   ``po-loc ∪ rf ∪ co ∪ fr`` connects two accesses of the same
   location, so the union graph is a disjoint union of per-location
   components and consistency decomposes into a *product* over
   locations of per-location (rf_ℓ, co_ℓ) choices.

2. **Per-location consistent pairs are in bijection with canonical
   linearizations.**  A pair (rf_ℓ, co_ℓ) satisfies SC PER LOCATION
   exactly when the sequence "co-first write, its readers ascending by
   event id, co-next write, its readers, …" extends po-loc (for the
   ``llh`` variant, po-loc minus its read-read pairs).  The walk
   therefore grows that sequence directly: at each step it may place a
   po-ready read into the *open* coherence segment (assigning its rf to
   the segment's write — a read placed after newer writes arrived is
   the revisit of GenMC's revisit sets, counted as such) or open a new
   segment with a po-ready write (fixing the next co edge).  Every
   completed sequence is a consistent execution; distinct sequences
   give distinct executions; every consistent execution is reached.

Executions-explored therefore equals consistent-executions by
construction — the differential suite asserts it.  The only wasted work
is *blocked* walks (a read whose every remaining rf source got buried
by coherence), detected by per-read source-availability counts the
moment a segment closes and surfaced as the ``engine.optimal.dead_ends``
counter; they abort in O(1) steps instead of costing a subtree.

:class:`OptimalPlan` mirrors :class:`~repro.herd.engine.ComboPlan`'s
interface (``total``, ``all_outcomes()``, ``leaves()`` yielding
:class:`~repro.herd.engine.SurvivingLeaf`), so summaries stay
byte-identical to the pruning and naive engines and the verdict fast
path, session verbs, campaign sharding and context cache all work
unchanged behind ``Simulator(engine="optimal")``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro import telemetry as _telemetry
from repro.core.bitrel import iter_bits, rows_inverse
from repro.core.events import Event
from repro.herd.engine import (
    BasePlan,
    Outcome,
    SurvivingLeaf,
    combination_matches_target,
    sc_per_location_rows,
)
from repro.herd.enumerate import (
    CombinationContext,
    _thread_paths,
    combination_context,
    combination_contexts,
)
from repro.litmus.ast import LitmusTest

#: One per-location solution: the rf source of each local read (aligned
#: with the location's reads in event order) and the coherence order.
LocationSolution = Tuple[Tuple[Event, ...], Tuple[Event, ...]]


class LocationWalk:
    """The canonical-linearization walk of one location.

    Enumerates every consistent (rf_ℓ, co_ℓ) pair exactly once by
    growing the canonical sequence described in the module docstring.
    Local universe: the location's non-init writes (ids ``0..W-1``) and
    reads (ids ``W..W+R-1``), both in ascending event order; the init
    write(s) are pre-placed as coherence segment 0.
    """

    __slots__ = (
        "location",
        "init",
        "writes",
        "reads",
        "read_positions",
        "sources",
        "source_sets",
        "preds",
        "steps",
        "revisits",
        "dead_ends",
    )

    def __init__(
        self,
        location: str,
        init: Tuple[Event, ...],
        writes: List[Event],
        reads: List[Event],
        read_positions: List[int],
        sources: List[Tuple[Event, ...]],
        preds: List[int],
    ):
        self.location = location
        self.init = init
        self.writes = writes
        self.reads = reads
        #: positions of the local reads inside ``context.reads``.
        self.read_positions = read_positions
        self.sources = sources
        self.source_sets = [frozenset(s) for s in sources]
        #: per local id, the bitmask of local events po-loc-before it.
        self.preds = preds
        self.steps = 0
        self.revisits = 0
        self.dead_ends = 0

    def solve(self) -> List[LocationSolution]:
        """Every consistent per-location assignment, constructed directly."""
        writes = self.writes
        reads = self.reads
        preds = self.preds
        sources = self.sources
        source_sets = self.source_sets
        num_writes = len(writes)
        num_reads = len(reads)
        full_mask = (1 << (num_writes + num_reads)) - 1
        solutions: List[LocationSolution] = []
        if not full_mask:
            # Only the init write: one trivial solution, zero choices.
            return [((), self.init)]

        rf: List[Optional[Event]] = [None] * num_reads
        order: List[Event] = list(self.init)
        #: still-reachable rf sources per unplaced read: unplaced writes
        #: plus the open segment's write (init starts open).
        avail = [len(s) for s in sources]
        #: coherence-segment ordinal at which each placed event landed
        #: (local ids; init writes are segment 0 implicitly).
        placed_at = [0] * (num_writes + num_reads)
        #: segment ordinal of each placed *write* event (rf sources).
        write_seg: Dict[Event, int] = {w: 0 for w in self.init}
        steps = 0
        revisits = 0
        dead_ends = 0

        def extend(placed: int, cur: Optional[Event], seg: int, watermark: int) -> None:
            nonlocal steps, revisits, dead_ends
            if placed == full_mask:
                solutions.append((tuple(rf), tuple(order)))  # type: ignore[arg-type]
                return
            children = 0
            # (a) a po-ready read joins the open segment (rf := cur).
            #     Ascending local id keeps the sequence canonical: each
            #     segment's readers appear in event order exactly once.
            if cur is not None:
                for j in range(watermark + 1, num_reads):
                    bit = 1 << (num_writes + j)
                    if placed & bit:
                        continue
                    if preds[num_writes + j] & ~placed:
                        continue
                    if cur not in source_sets[j]:
                        continue
                    steps += 1
                    children += 1
                    # Revisit: the read was already po-ready while an
                    # earlier source's segment was open, and reads from
                    # a write that arrived later instead.
                    ready = 0
                    for p in iter_bits(preds[num_writes + j]):
                        if placed_at[p] > ready:
                            ready = placed_at[p]
                    if any(
                        ready <= write_seg[s] < seg
                        for s in sources[j]
                        if s in write_seg
                    ):
                        revisits += 1
                    rf[j] = cur
                    placed_at[num_writes + j] = seg
                    extend(placed | bit, cur, seg, j)
                    rf[j] = None
            # (b) a po-ready write opens the next segment (fixing co).
            #     Closing the open segment buries it: any unplaced read
            #     whose last reachable source is the open write would be
            #     orphaned — prune all write children at once.
            if placed & ((1 << num_writes) - 1) != (1 << num_writes) - 1:
                doomed = cur is not None and any(
                    avail[j] == 1
                    and not placed >> (num_writes + j) & 1
                    and cur in source_sets[j]
                    for j in range(num_reads)
                )
                if not doomed:
                    closing = (
                        [
                            j
                            for j in range(num_reads)
                            if not placed >> (num_writes + j) & 1
                            and cur in source_sets[j]
                        ]
                        if cur is not None
                        else []
                    )
                    for j in closing:
                        avail[j] -= 1
                    for i in range(num_writes):
                        if placed >> i & 1 or preds[i] & ~placed:
                            continue
                        steps += 1
                        children += 1
                        write = writes[i]
                        order.append(write)
                        write_seg[write] = seg + 1
                        placed_at[i] = seg + 1
                        extend(placed | (1 << i), write, seg + 1, -1)
                        del write_seg[write]
                        order.pop()
                    for j in closing:
                        avail[j] += 1
            if not children:
                dead_ends += 1

        cur = self.init[-1] if self.init else None
        extend(0, cur, 0, -1)
        self.steps = steps
        self.revisits = revisits
        self.dead_ends = dead_ends
        return solutions


class OptimalPlan(BasePlan):
    """The optimal-exploration plan of one combination of per-thread paths.

    ``total``/``all_outcomes()`` stay the combinatorial full-grid
    answers of :class:`~repro.herd.engine.BasePlan` (summaries must be
    byte-identical across engines); :meth:`leaves` yields exactly the
    consistent executions, composed as a product of per-location
    canonical walks.  The per-location solve runs once per plan and is
    reused by later walks (the plan, like the context, is
    model-independent).
    """

    def __init__(
        self,
        context: CombinationContext,
        test: Optional[LitmusTest] = None,
        variant: str = "standard",
    ):
        super().__init__(context, test, variant)
        #: consistent executions yielded by the last `leaves()` walk.
        self.explored = 0
        #: solve-time statistics (accumulated over every location):
        #: extension steps, reads re-assigned past an available source,
        #: blocked walks aborted by the availability check.
        self.extension_steps = 0
        self.revisits = 0
        self.dead_ends = 0
        self._solutions: Optional[List[List[LocationSolution]]] = None
        self._read_positions: Optional[List[List[int]]] = None

    # -- the per-location solve ---------------------------------------------------

    def _walks(self) -> List[LocationWalk]:
        context = self.context
        index = context.index
        ids = index.ids
        preds_global = rows_inverse(sc_per_location_rows(context, self.variant))
        walks: List[LocationWalk] = []
        for location in context.locations:
            init = tuple(
                w for w in context.writes if w.location == location and w.is_init()
            )
            writes = [
                w
                for w in context.writes
                if w.location == location and not w.is_init()
            ]
            reads: List[Event] = []
            read_positions: List[int] = []
            sources: List[Tuple[Event, ...]] = []
            for position, read in enumerate(context.reads):
                if read.location != location:
                    continue
                reads.append(read)
                read_positions.append(position)
                sources.append(context.rf_sources[position])
            local_of_global = {
                ids[event]: local for local, event in enumerate(writes + reads)
            }
            preds = []
            for event in writes + reads:
                mask = 0
                for g in iter_bits(preds_global[ids[event]]):
                    local = local_of_global.get(g)
                    if local is not None:
                        mask |= 1 << local
                preds.append(mask)
            walks.append(
                LocationWalk(
                    location, init, writes, reads, read_positions, sources, preds
                )
            )
        return walks

    def _solve(self) -> List[List[LocationSolution]]:
        if self._solutions is None:
            steps = revisits = dead_ends = 0
            solutions: List[List[LocationSolution]] = []
            positions: List[List[int]] = []
            for walk in self._walks():
                solutions.append(walk.solve())
                positions.append(walk.read_positions)
                steps += walk.steps
                revisits += walk.revisits
                dead_ends += walk.dead_ends
            self.extension_steps = steps
            self.revisits = revisits
            self.dead_ends = dead_ends
            self._solutions = solutions
            self._read_positions = positions
            registry = _telemetry._ACTIVE
            if registry is not None:
                registry.count("engine.optimal.extension_steps", steps)
                registry.count("engine.optimal.revisits", revisits)
                registry.count("engine.optimal.dead_ends", dead_ends)
        return self._solutions

    # -- the optimal walk ---------------------------------------------------------

    def leaves(self, with_outcomes: bool = True) -> Iterator["SurvivingLeaf"]:
        """Yield exactly the uniproc-consistent executions, one leaf each.

        ``explored == survivors_count`` always: the walk constructs
        consistent executions instead of filtering a grid, so there is
        nothing to prune at walk time (``pruned`` reports the grid
        complement, for summary parity with the other engines).
        """
        self.pruned = 0
        self.survivors_count = 0
        self.explored = 0
        context = self.context
        if context.reads and not context.feasible:
            return
        per_location = self._solve()
        read_positions = self._read_positions or []

        register_part = self._register_part() if with_outcomes else []
        condition = self.test.condition if self.test is not None else None
        constant_outcome: Optional[Outcome] = None
        if (
            with_outcomes
            and condition is not None
            and all(atom.kind == "reg" for atom in condition.atoms)
        ):
            constant_outcome = tuple(sorted(set(register_part)))

        reads = context.reads
        num_reads = len(reads)
        explored = 0
        try:
            for choice in itertools.product(*per_location):
                rf_of: List[Optional[Event]] = [None] * num_reads
                orders: List[Tuple[Event, ...]] = []
                for (rf_local, order), positions in zip(choice, read_positions):
                    orders.append(order)
                    for position, source in zip(positions, rf_local):
                        rf_of[position] = source
                assignment = tuple(
                    (rf_of[position], reads[position])
                    for position in range(num_reads)
                )
                if constant_outcome is not None:
                    outcome: Optional[Outcome] = constant_outcome
                elif with_outcomes:
                    outcome = self._leaf_outcome(register_part, orders)
                else:
                    outcome = None
                explored += 1
                yield SurvivingLeaf(context, assignment, tuple(orders), outcome)
        finally:
            self.explored = explored
            self.survivors_count = explored
            self.pruned = self.total - explored
            registry = _telemetry._ACTIVE
            if registry is not None:
                registry.count("engine.optimal.walks")
                registry.count("engine.optimal.explored", explored)


def plans(
    test: LitmusTest,
    variant: str = "standard",
    value_domain: Optional[Sequence[int]] = None,
) -> Iterator[OptimalPlan]:
    """One :class:`OptimalPlan` per combination of per-thread paths."""
    for context in combination_contexts(test, value_domain):
        yield OptimalPlan(context, test, variant)


def target_plans(
    test: LitmusTest,
    variant: str = "standard",
    value_domain: Optional[Sequence[int]] = None,
) -> Iterator[OptimalPlan]:
    """Plans of the combinations that could witness the target outcome.

    Filters with the same register-atom predicate as
    :func:`repro.herd.engine.target_plans`, so the verdict fast path
    behaves identically across engines.
    """
    condition = test.condition
    assert condition is not None, "target_plans needs a final condition"
    all_paths = _thread_paths(test, value_domain)
    locations = set(test.locations())
    for combination in itertools.product(*all_paths):
        if not combination_matches_target(combination, condition):
            continue
        context = combination_context(combination, locations, test.init_memory)
        yield OptimalPlan(context, test, variant)
