"""The herd simulator.

Given a litmus test and a model — either a built-in
:class:`~repro.core.model.Architecture` or a model written in the cat
DSL — herd enumerates the candidate executions of the test
(:mod:`repro.herd.enumerate`) and checks each against the model's
axioms (:mod:`repro.herd.simulator`), reporting which outcomes are
allowed and whether the test's final condition is reachable.
"""

from repro.herd.enumerate import Candidate, candidate_executions
from repro.herd.simulator import SimulationResult, Simulator, simulate

__all__ = [
    "Candidate",
    "candidate_executions",
    "SimulationResult",
    "Simulator",
    "simulate",
]
