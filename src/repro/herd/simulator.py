"""The herd simulator: litmus test + model -> allowed outcomes and verdict.

``simulate(test, model)`` enumerates the candidate executions of the
test, checks each against the model and summarises:

* the set of allowed outcomes (final states as observed by the litmus
  harness);
* whether the test's target outcome (its ``exists`` clause) is reachable
  — the paper's "allowed"/"forbidden" verdict for a pattern;
* optionally, the full lists of allowed and forbidden candidates, used
  by the anomaly-classification experiments (Tab. VIII) which need to
  know *which axioms* reject each execution.

The ``model`` argument accepts a :class:`~repro.core.model.Model`, a
:class:`~repro.core.model.Architecture`, an architecture name (``"power"``,
``"tso"``...) or a cat-interpreted model object exposing ``check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.architectures import get_architecture
from repro.core.model import Architecture, CheckResult, Model
from repro.herd.enumerate import Candidate, candidate_executions
from repro.litmus.ast import LitmusTest

Outcome = Tuple[Tuple[str, int], ...]
ModelLike = Union[str, Architecture, Model]


def _as_model(model: ModelLike) -> Model:
    if isinstance(model, Model):
        return model
    if isinstance(model, Architecture):
        return Model(model)
    if isinstance(model, str):
        return Model(get_architecture(model))
    if hasattr(model, "check"):  # duck-typed (cat-interpreted models)
        return model  # type: ignore[return-value]
    raise TypeError(f"cannot interpret {model!r} as a model")


@dataclass
class SimulationResult:
    """Summary of simulating one litmus test under one model."""

    test: LitmusTest
    model_name: str
    allowed_outcomes: FrozenSet[Outcome]
    all_outcomes: FrozenSet[Outcome]
    target_reachable: bool
    condition_holds: bool
    num_candidates: int
    num_allowed: int
    allowed_candidates: Tuple[Candidate, ...] = ()
    forbidden_candidates: Tuple[Tuple[Candidate, CheckResult], ...] = ()

    @property
    def verdict(self) -> str:
        """The paper's Allow/Forbid verdict for the test's target outcome."""
        return "Allow" if self.target_reachable else "Forbid"

    def describe(self) -> str:
        lines = [
            f"{self.test.name} under {self.model_name}: {self.verdict}",
            f"  candidates: {self.num_candidates}, allowed: {self.num_allowed}",
        ]
        for outcome in sorted(self.allowed_outcomes):
            rendering = ", ".join(f"{name}={value}" for name, value in outcome)
            lines.append(f"  allowed outcome: {rendering}")
        return "\n".join(lines)


class Simulator:
    """A reusable simulator bound to one model."""

    def __init__(self, model: ModelLike):
        self.model = _as_model(model)

    @property
    def model_name(self) -> str:
        return getattr(self.model, "name", str(self.model))

    def run(
        self,
        test: LitmusTest,
        keep_candidates: bool = False,
        stop_at_first_violation: bool = True,
    ) -> SimulationResult:
        allowed_outcomes: set = set()
        all_outcomes: set = set()
        allowed: List[Candidate] = []
        forbidden: List[Tuple[Candidate, CheckResult]] = []
        num_candidates = 0
        num_allowed = 0

        for candidate in candidate_executions(test):
            num_candidates += 1
            outcome = candidate.outcome(test)
            all_outcomes.add(outcome)
            result = self.model.check(
                candidate.execution, stop_at_first=stop_at_first_violation
            )
            if result.allowed:
                num_allowed += 1
                allowed_outcomes.add(outcome)
                if keep_candidates:
                    allowed.append(candidate)
            elif keep_candidates:
                forbidden.append((candidate, result))

        target_reachable = False
        condition_holds = True
        if test.condition is not None:
            # Reachability is determined from the allowed outcomes only.
            any_match = any(
                self._outcome_satisfies(test, outcome) for outcome in allowed_outcomes
            )
            all_match = bool(allowed_outcomes) and all(
                self._outcome_satisfies(test, outcome) for outcome in allowed_outcomes
            )
            target_reachable = any_match
            condition_holds = test.condition.verdict(any_match, all_match)

        return SimulationResult(
            test=test,
            model_name=self.model_name,
            allowed_outcomes=frozenset(allowed_outcomes),
            all_outcomes=frozenset(all_outcomes),
            target_reachable=target_reachable,
            condition_holds=condition_holds,
            num_candidates=num_candidates,
            num_allowed=num_allowed,
            allowed_candidates=tuple(allowed),
            forbidden_candidates=tuple(forbidden),
        )

    @staticmethod
    def _outcome_satisfies(test: LitmusTest, outcome: Outcome) -> bool:
        """Does an outcome (projected final state) satisfy the condition atoms?"""
        assert test.condition is not None
        observed = dict(outcome)
        for atom in test.condition.atoms:
            key = f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
            if observed.get(key) != atom.value:
                return False
        return True


def simulate(
    test: LitmusTest,
    model: ModelLike,
    keep_candidates: bool = False,
    stop_at_first_violation: bool = True,
) -> SimulationResult:
    """Simulate *test* under *model* (convenience wrapper around Simulator)."""
    return Simulator(model).run(
        test,
        keep_candidates=keep_candidates,
        stop_at_first_violation=stop_at_first_violation,
    )
