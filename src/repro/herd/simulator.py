"""The herd simulator: litmus test + model -> allowed outcomes and verdict.

``simulate(test, model)`` enumerates the candidate executions of the
test, checks each against the model and summarises:

* the set of allowed outcomes (final states as observed by the litmus
  harness);
* whether the test's target outcome (its ``exists`` clause) is reachable
  — the paper's "allowed"/"forbidden" verdict for a pattern;
* optionally, the full lists of allowed and forbidden candidates, used
  by the anomaly-classification experiments (Tab. VIII) which need to
  know *which axioms* reject each execution.

The ``model`` argument accepts a :class:`~repro.core.model.Model`, a
:class:`~repro.core.model.Architecture`, an architecture name (``"power"``,
``"tso"``...) or a cat-interpreted model object exposing ``check``.

Two enumeration engines sit underneath (selected by ``engine=``):

* ``"pruning"`` (the default where applicable) — the incremental engine
  of :mod:`repro.herd.engine`: partial rf/co assignments that violate
  SC PER LOCATION are cut as whole subtrees, whose candidate counts and
  outcomes are reconstructed combinatorially, so the summary is
  *identical* to the naive engine's;
* ``"optimal"`` — the GenMC-style optimal explorer of
  :mod:`repro.herd.optimal`: constructs each consistent execution
  exactly once (explored == survivors, zero grid waste) instead of
  enumerating and cutting the rf×co grid; summaries stay identical;
* ``"naive"`` — the brute-force reference oracle of
  :mod:`repro.herd.enumerate`, kept for differential testing and for
  queries the plan-based engines do not serve (``keep_candidates``,
  duck-typed models whose axiom set is unknown).

``run(..., until="target")`` is the verdict-only fast path: enumeration
stops the moment the target outcome is proven reachable, and model
checks are skipped for candidates whose outcome cannot match the
target.  Counts and outcome sets in the result are then partial; only
``target_reachable`` / ``verdict`` are authoritative.  The fence-repair
escalation loop and the campaign drivers use it via :meth:`Simulator.verdict`.

``run(..., context=...)`` accepts a prebuilt per-test simulation
context (:class:`repro.campaign.context.SimulationContext`): the
expensive front half of the pipeline — thread-path enumeration, event
interning, the fixed relations and the rf×co plan skeletons — is then
reused instead of rebuilt.  The context is model-independent, so one
context serves verdict queries under any number of models.  For
process-level fan-out the campaign runtime ships picklable job specs
(the litmus test plus a model *name*) and re-hydrates both the model
and the context inside the worker; see :mod:`repro.campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple, Union

from repro import telemetry as _telemetry
from repro.core.architectures import get_architecture
from repro.core.model import Architecture, CheckResult, Model
from repro.herd import engine as _engine
from repro.herd import optimal as _optimal
from repro.herd.enumerate import Candidate, candidate_executions
from repro.litmus.ast import LitmusTest
from repro.litmus.instructions import MoveImmediate, Store
from repro.report import JsonReportMixin, outcome_key

Outcome = Tuple[Tuple[str, int], ...]
ModelLike = Union[str, Architecture, Model]

ENGINES = ("auto", "pruning", "optimal", "naive")

#: ``engine="auto"`` upgrades from pruning to the optimal engine once
#: this many stores hit a single location across all threads.  The
#: pruning engine's candidate space grows factorially in the per-
#: location write count (every coherence order is enumerated before
#: SC-PER-LOCATION cuts it), while the optimal engine constructs each
#: consistent coherence order exactly once — the committed
#: BENCH_optimal.json crossover puts optimal ahead from roughly this
#: burst size and 5.9x ahead by six writes.  Below the threshold the
#: pruning engine's lower per-execution constant wins (tiny grids such
#: as the classic 2x2 cycles).
AUTO_OPTIMAL_WRITE_BURST = 4


def write_burst(test: LitmusTest) -> int:
    """The largest number of stores aimed at any single location,
    summed across threads — the coherence pressure of a test.

    Store targets resolve through the test's address registers — the
    ``init_registers`` bindings (``(thread, reg) -> location``) plus any
    in-thread ``MoveImmediate`` of a location name.  A store whose
    address register resolves to no location (computed addresses) makes
    the scan conservative: 0, keeping ``auto`` on the pruning engine.
    """
    stores_per_location: dict = {}
    for index, thread in enumerate(test.threads):
        addresses = {
            reg: value
            for (thread_index, reg), value in test.init_registers.items()
            if thread_index == index and isinstance(value, str)
        }
        for instruction in thread:
            if isinstance(instruction, MoveImmediate) and isinstance(
                instruction.value, str
            ):
                addresses[instruction.dst] = instruction.value
            elif isinstance(instruction, Store):
                location = addresses.get(instruction.addr_reg)
                if location is None:
                    return 0
                stores_per_location[location] = (
                    stores_per_location.get(location, 0) + 1
                )
    return max(stores_per_location.values(), default=0)


def resolve_model(model: ModelLike) -> Model:
    """Resolve a model-like value (name, architecture, model) to a model.

    Campaign drivers call this once per campaign and pass the resolved
    object down, instead of re-running ``get_architecture`` inside their
    per-test loops.  Idempotent: resolved models pass through unchanged.
    """
    if isinstance(model, Model):
        return model
    if isinstance(model, Architecture):
        return Model(model)
    if isinstance(model, str):
        return Model(get_architecture(model))
    if hasattr(model, "check"):  # duck-typed (cat-interpreted models)
        return model  # type: ignore[return-value]
    raise TypeError(f"cannot interpret {model!r} as a model")


#: Backward-compatible alias (pre-campaign-runtime name).
_as_model = resolve_model


@dataclass
class SimulationResult(JsonReportMixin):
    """Summary of simulating one litmus test under one model."""

    test: LitmusTest
    model_name: str
    allowed_outcomes: FrozenSet[Outcome]
    all_outcomes: FrozenSet[Outcome]
    target_reachable: bool
    condition_holds: bool
    num_candidates: int
    num_allowed: int
    allowed_candidates: Tuple[Candidate, ...] = ()
    forbidden_candidates: Tuple[Tuple[Candidate, CheckResult], ...] = ()
    #: True when the run stopped early (``until="target"``): counts and
    #: outcome sets cover only the candidates explored before the exit.
    partial: bool = False

    @property
    def verdict(self) -> str:
        """The paper's Allow/Forbid verdict for the test's target outcome."""
        return "Allow" if self.target_reachable else "Forbid"

    def describe(self) -> str:
        lines = [
            f"{self.test.name} under {self.model_name}: {self.verdict}",
            f"  candidates: {self.num_candidates}, allowed: {self.num_allowed}",
        ]
        for outcome in sorted(self.allowed_outcomes):
            rendering = ", ".join(f"{name}={value}" for name, value in outcome)
            lines.append(f"  allowed outcome: {rendering}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-plain summary (candidate executions appear as counts only)."""
        return {
            "type": "simulation",
            "test": self.test.name,
            "model": self.model_name,
            "verdict": self.verdict,
            "condition": str(self.test.condition)
            if self.test.condition is not None
            else None,
            "condition_holds": self.condition_holds,
            "target_reachable": self.target_reachable,
            "num_candidates": self.num_candidates,
            "num_allowed": self.num_allowed,
            "partial": self.partial,
            "allowed_outcomes": sorted(
                outcome_key(outcome) for outcome in self.allowed_outcomes
            ),
            "all_outcomes": sorted(
                outcome_key(outcome) for outcome in self.all_outcomes
            ),
        }


class Simulator:
    """A reusable simulator bound to one model.

    ``engine`` selects the enumeration strategy: ``"pruning"`` (subtree
    cuts on SC PER LOCATION violations), ``"optimal"`` (GenMC-style
    construction of each consistent execution exactly once),
    ``"naive"`` (the reference cross product) or ``"auto"`` (pruning
    whenever the query and the model allow it, upgraded to optimal for
    coherence-heavy tests — see :func:`write_burst`).  ``"optimal"``
    and ``"pruning"`` fall back to ``"naive"`` for queries only the
    oracle serves (``keep_candidates``, duck-typed models).
    """

    def __init__(self, model: ModelLike, engine: str = "auto"):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
        self.model = resolve_model(model)
        self.engine = engine

    @property
    def model_name(self) -> str:
        return getattr(self.model, "name", str(self.model))

    def _pruning_variant(self) -> Optional[str]:
        """The SC PER LOCATION variant to prune with, or None if the
        model's axiom set is unknown (duck-typed models)."""
        architecture = getattr(self.model, "architecture", None)
        variant = getattr(architecture, "sc_per_location_variant", None)
        if isinstance(self.model, Model) and variant in _engine._VARIANTS:
            return variant
        return None

    def run(
        self,
        test: LitmusTest,
        keep_candidates: bool = False,
        stop_at_first_violation: bool = True,
        until: Optional[str] = None,
        context=None,
    ) -> SimulationResult:
        """Simulate *test*; ``context`` optionally supplies the memoized
        front half (a :class:`repro.campaign.context.SimulationContext`
        for this very test).  The context only accelerates the pruning
        engine; naive and ``keep_candidates`` queries ignore it."""
        if until not in (None, "target"):
            raise ValueError(f"unknown until mode {until!r}")
        variant = self._pruning_variant()
        planned = not keep_candidates and variant is not None
        if planned and self.engine == "optimal":
            engine_name = "optimal"
        elif planned and self.engine == "auto":
            # Route coherence-heavy shapes (same-location write bursts)
            # to the optimal engine; keep pruning on tiny grids, where
            # its lower constant wins (see AUTO_OPTIMAL_WRITE_BURST).
            engine_name = (
                "optimal"
                if write_burst(test) >= AUTO_OPTIMAL_WRITE_BURST
                else "pruning"
            )
        elif planned and self.engine == "pruning":
            engine_name = "pruning"
        else:
            engine_name = "naive"
        registry = _telemetry._ACTIVE
        if registry is None:
            if engine_name != "naive":
                return self._run_planned(test, variant, until, context, engine_name)
            return self._run_naive(
                test, keep_candidates, stop_at_first_violation, until
            )
        # Telemetry enabled: every run is a trace span (name, model,
        # engine, verdict-vs-full) plus per-engine counters.
        with registry.span(
            "herd.run",
            test=test.name,
            model=self.model_name,
            engine=engine_name,
            mode="verdict" if until == "target" else "full",
        ):
            if engine_name != "naive":
                result = self._run_planned(test, variant, until, context, engine_name)
            else:
                result = self._run_naive(
                    test, keep_candidates, stop_at_first_violation, until
                )
        registry.count(f"herd.runs.{engine_name}")
        if until == "target":
            registry.count("herd.verdict_queries")
        return result

    def verdict(self, test: LitmusTest, context=None) -> str:
        """Allow/Forbid for the target outcome (early-exit fast path)."""
        return self.run(test, until="target", context=context).verdict

    # -- planned engines (pruning / optimal) --------------------------------------

    def _run_planned(
        self,
        test: LitmusTest,
        variant: str,
        until: Optional[str],
        context=None,
        kind: str = "pruning",
    ) -> SimulationResult:
        """Shared driver of the plan-based engines: both yield only
        uniproc-consistent leaves with full-grid summary counts, so the
        per-leaf model checks (``assume_sc_per_location=True``) and the
        verdict fast path are engine-independent."""
        check = self.model.check
        allowed_outcomes: set = set()
        all_outcomes: set = set()
        num_candidates = 0
        num_allowed = 0
        target_found = False
        verdict_only = until == "target" and test.condition is not None

        if context is not None:
            plan_source = (
                context.target_plans(variant, engine=kind)
                if verdict_only
                else context.plans(variant, engine=kind)
            )
        else:
            module = _optimal if kind == "optimal" else _engine
            plan_source = (
                module.target_plans(test, variant)
                if verdict_only
                else module.plans(test, variant)
            )
        plans_walked = 0
        plans_skipped = 0
        for plan in plan_source:
            num_candidates += plan.total
            if verdict_only:
                # A combination whose entire outcome universe misses the
                # target cannot witness reachability: skip its walk.  For
                # register-only conditions (the common case) the universe
                # is a single outcome fixed by the thread paths.
                if not any(
                    self._outcome_satisfies(test, outcome)
                    for outcome in plan.all_outcomes()
                ):
                    plans_skipped += 1
                    continue
            else:
                all_outcomes |= plan.all_outcomes()
            plans_walked += 1
            for leaf in plan.leaves():
                outcome = leaf.outcome
                matches = (
                    self._outcome_satisfies(test, outcome)
                    if test.condition is not None
                    else False
                )
                if verdict_only and not matches:
                    continue  # cannot witness the target; never materialized
                result = check(
                    leaf.candidate().execution,
                    stop_at_first=True,
                    assume_sc_per_location=True,
                )
                if result.allowed:
                    num_allowed += 1
                    allowed_outcomes.add(outcome)
                    if matches:
                        target_found = True
                        if verdict_only:
                            break
            if verdict_only and target_found:
                break

        registry = _telemetry._ACTIVE
        if registry is not None:
            registry.count("herd.plans_walked", plans_walked)
            registry.count("herd.plans_skipped_by_target", plans_skipped)
            if verdict_only and target_found:
                registry.count("herd.verdict_early_exits")
        return self._summarise(
            test,
            allowed_outcomes,
            all_outcomes,
            num_candidates,
            num_allowed,
            partial=verdict_only and target_found,
        )

    # -- naive engine -------------------------------------------------------------

    def _run_naive(
        self,
        test: LitmusTest,
        keep_candidates: bool,
        stop_at_first_violation: bool,
        until: Optional[str],
    ) -> SimulationResult:
        allowed_outcomes: set = set()
        all_outcomes: set = set()
        allowed: List[Candidate] = []
        forbidden: List[Tuple[Candidate, CheckResult]] = []
        num_candidates = 0
        num_allowed = 0
        target_found = False
        verdict_only = until == "target" and test.condition is not None

        for candidate in candidate_executions(test):
            num_candidates += 1
            outcome = candidate.outcome(test)
            all_outcomes.add(outcome)
            matches = (
                self._outcome_satisfies(test, outcome)
                if test.condition is not None
                else False
            )
            if verdict_only and not matches:
                continue
            result = self.model.check(
                candidate.execution, stop_at_first=stop_at_first_violation
            )
            if result.allowed:
                num_allowed += 1
                allowed_outcomes.add(outcome)
                if keep_candidates:
                    allowed.append(candidate)
                if matches:
                    target_found = True
                    if verdict_only:
                        break
            elif keep_candidates:
                forbidden.append((candidate, result))

        return self._summarise(
            test,
            allowed_outcomes,
            all_outcomes,
            num_candidates,
            num_allowed,
            allowed=tuple(allowed),
            forbidden=tuple(forbidden),
            partial=verdict_only and target_found,
        )

    # -- shared summary -----------------------------------------------------------

    def _summarise(
        self,
        test: LitmusTest,
        allowed_outcomes: set,
        all_outcomes: set,
        num_candidates: int,
        num_allowed: int,
        allowed: Tuple[Candidate, ...] = (),
        forbidden: Tuple[Tuple[Candidate, CheckResult], ...] = (),
        partial: bool = False,
    ) -> SimulationResult:
        target_reachable = False
        condition_holds = True
        if test.condition is not None:
            any_match = any(
                self._outcome_satisfies(test, outcome) for outcome in allowed_outcomes
            )
            all_match = bool(allowed_outcomes) and all(
                self._outcome_satisfies(test, outcome) for outcome in allowed_outcomes
            )
            target_reachable = any_match
            condition_holds = test.condition.verdict(any_match, all_match)

        return SimulationResult(
            test=test,
            model_name=self.model_name,
            allowed_outcomes=frozenset(allowed_outcomes),
            all_outcomes=frozenset(all_outcomes),
            target_reachable=target_reachable,
            condition_holds=condition_holds,
            num_candidates=num_candidates,
            num_allowed=num_allowed,
            allowed_candidates=allowed,
            forbidden_candidates=forbidden,
            partial=partial,
        )

    @staticmethod
    def _outcome_satisfies(test: LitmusTest, outcome: Outcome) -> bool:
        """Does an outcome (projected final state) satisfy the condition atoms?"""
        assert test.condition is not None
        observed = dict(outcome)
        for atom in test.condition.atoms:
            key = f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
            if observed.get(key) != atom.value:
                return False
        return True


def simulate(
    test: LitmusTest,
    model: ModelLike,
    keep_candidates: bool = False,
    stop_at_first_violation: bool = True,
    until: Optional[str] = None,
    engine: str = "auto",
) -> SimulationResult:
    """Simulate *test* under *model* (convenience wrapper around Simulator)."""
    return Simulator(model, engine=engine).run(
        test,
        keep_candidates=keep_candidates,
        stop_at_first_violation=stop_at_first_violation,
        until=until,
    )
