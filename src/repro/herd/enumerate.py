"""Enumeration of candidate executions (the data-flow semantics of Sec. 3).

Starting from the per-thread control-flow paths produced by the
instruction semantics, this module builds every candidate execution
``(E, po, rf, co)``:

1. pick one control/data path per thread (a choice of values returned by
   each load, which also resolves branches);
2. pick, for every read, a write to the same location carrying the same
   value (the read-from map ``rf``) — combinations for which some read
   has no possible source are discarded;
3. pick, for every location, a total order of the writes to that
   location starting with the initial write (the coherence order ``co``).

The constraint specification (the model) then decides which candidates
are valid; that part lives in :mod:`repro.herd.simulator`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.relation import Relation
from repro.litmus.ast import LitmusTest, RegisterValue
from repro.litmus.semantics import (
    ThreadExecution,
    enumerate_thread_paths,
    thread_init_registers,
    value_domain_of,
)
from repro.util.digraph import linear_extensions


@dataclass(frozen=True)
class Candidate:
    """A candidate execution together with the final register state."""

    execution: Execution
    final_registers: Mapping[Tuple[int, str], RegisterValue]

    def final_memory(self) -> Dict[str, int]:
        return self.execution.final_memory_state()

    def outcome(self, test: LitmusTest) -> Tuple[Tuple[str, int], ...]:
        """The observable final state, projected on the test's condition.

        The projection mirrors what the litmus harness logs on hardware:
        the registers and locations mentioned in the final condition (or
        every memory location when the test has no condition).
        """
        observed: List[Tuple[str, int]] = []
        memory = self.final_memory()
        if test.condition is not None:
            for atom in test.condition.atoms:
                if atom.kind == "reg":
                    value = self.final_registers.get((atom.thread, atom.name), 0)
                    observed.append((f"{atom.thread}:{atom.name}", int(value)))
                else:
                    observed.append((atom.name, memory.get(atom.name, 0)))
        else:
            observed.extend(sorted(memory.items()))
        return tuple(sorted(set(observed)))


def _thread_paths(
    test: LitmusTest, value_domain: Optional[Sequence[int]] = None
) -> List[List[ThreadExecution]]:
    domain = list(value_domain) if value_domain is not None else value_domain_of(test)
    paths: List[List[ThreadExecution]] = []
    for index, instructions in enumerate(test.threads):
        init_registers = thread_init_registers(test, index)
        paths.append(
            enumerate_thread_paths(index, instructions, init_registers, domain)
        )
    return paths


def _read_from_choices(
    reads: Sequence[Event], writes: Sequence[Event]
) -> Iterator[Tuple[Tuple[Event, Event], ...]]:
    """All read-from maps: one same-location same-value write per read."""
    per_read: List[List[Tuple[Event, Event]]] = []
    for read in reads:
        sources = [
            (write, read)
            for write in writes
            if write.location == read.location and write.value == read.value
        ]
        if not sources:
            return  # this combination of thread paths is infeasible
        per_read.append(sources)
    yield from itertools.product(*per_read)


def _coherence_choices(
    writes: Sequence[Event], locations: Iterable[str]
) -> Iterator[Relation]:
    """All coherence orders: per location, a total order with init first."""
    per_location: List[List[Tuple[Tuple[Event, ...], ...]]] = []
    orders_per_location: List[List[Tuple[Event, ...]]] = []
    for location in sorted(set(locations)):
        local_writes = [w for w in writes if w.location == location]
        init = [w for w in local_writes if w.is_init()]
        rest = [w for w in local_writes if not w.is_init()]
        orders = [tuple(init) + order for order in linear_extensions(rest, ())]
        orders_per_location.append(orders if orders else [tuple(init)])
    for combination in itertools.product(*orders_per_location):
        relation = Relation()
        for order in combination:
            relation = relation | Relation.from_order(order)
        yield relation


def candidates_of_combination(
    combination: Sequence[ThreadExecution],
    locations: Iterable[str] = (),
    initial_values: Optional[Mapping[str, int]] = None,
) -> Iterator[Candidate]:
    """Yield the candidate executions of one choice of per-thread paths.

    This is the data-flow half of the enumeration: given the control-flow
    paths (one :class:`~repro.litmus.semantics.ThreadExecution` per
    thread), enumerate every read-from map and coherence order.  It is
    shared between the litmus front-end (:func:`candidate_executions`)
    and the verification front-end (:mod:`repro.verification.bmc`).
    """
    events: List[Event] = []
    po = Relation()
    addr = Relation()
    data = Relation()
    ctrl = Relation()
    ctrl_cfence = Relation()
    fences: Dict[str, Relation] = {}
    final_registers: Dict[Tuple[int, str], RegisterValue] = {}

    for path in combination:
        events.extend(path.memory_events)
        po = po | Relation.from_order(path.memory_events)
        addr = addr | Relation(path.addr)
        data = data | Relation(path.data)
        ctrl = ctrl | Relation(path.ctrl)
        ctrl_cfence = ctrl_cfence | Relation(path.ctrl_cfence)
        for name, pairs in path.fences.items():
            fences[name] = fences.get(name, Relation()) | Relation(pairs)
        for register, value in path.final_registers.items():
            final_registers[(path.thread, register)] = value

    touched = set(locations) | {
        e.location for e in events if e.location is not None
    }
    init_writes = Execution.initial_writes(touched, initial_values)
    all_events = init_writes + events
    writes = [e for e in all_events if e.is_write()]
    reads = [e for e in all_events if e.is_read()]

    for rf_pairs in _read_from_choices(reads, writes):
        rf = Relation(rf_pairs)
        for co in _coherence_choices(writes, touched):
            execution = Execution(
                events=frozenset(all_events),
                po=po,
                rf=rf,
                co=co,
                addr=addr,
                data=data,
                ctrl=ctrl,
                ctrl_cfence=ctrl_cfence,
                fences_by_name=dict(fences),
            )
            yield Candidate(execution=execution, final_registers=dict(final_registers))


def candidate_executions(
    test: LitmusTest, value_domain: Optional[Sequence[int]] = None
) -> Iterator[Candidate]:
    """Yield every candidate execution of *test*."""
    all_paths = _thread_paths(test, value_domain)
    locations = set(test.locations())

    for combination in itertools.product(*all_paths):
        yield from candidates_of_combination(combination, locations, test.init_memory)


def count_candidates(test: LitmusTest) -> int:
    """Number of candidate executions of a test (used by benchmarks)."""
    return sum(1 for _ in candidate_executions(test))
