"""Enumeration of candidate executions (the data-flow semantics of Sec. 3).

Starting from the per-thread control-flow paths produced by the
instruction semantics, this module builds every candidate execution
``(E, po, rf, co)``:

1. pick one control/data path per thread (a choice of values returned by
   each load, which also resolves branches);
2. pick, for every read, a write to the same location carrying the same
   value (the read-from map ``rf``) — combinations for which some read
   has no possible source are discarded;
3. pick, for every location, a total order of the writes to that
   location starting with the initial write (the coherence order ``co``).

The constraint specification (the model) then decides which candidates
are valid; that part lives in :mod:`repro.herd.simulator`.

This module is the *reference oracle*: it materializes every candidate
by brute-force cross product.  The production engine lives in
:mod:`repro.herd.engine`, which shares :class:`CombinationContext` (the
per-combination event universe interned into a
:class:`~repro.core.bitrel.EventIndex`, and the po/dependency/fence
relations built once in the bitmask kernel and shared across all rf×co
children) but prunes partial rf/co assignments instead of generating
and rejecting.  The differential suite (``tests/test_differential.py``)
holds the two engines to identical candidate sets and verdicts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.bitrel import EventIndex
from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.relation import Relation
from repro.litmus.ast import LitmusTest, RegisterValue
from repro.litmus.semantics import (
    ThreadExecution,
    enumerate_thread_paths,
    thread_init_registers,
    value_domain_of,
)

@dataclass(frozen=True)
class Candidate:
    """A candidate execution together with the final register state."""

    execution: Execution
    final_registers: Mapping[Tuple[int, str], RegisterValue]

    def final_memory(self) -> Dict[str, int]:
        return self.execution.final_memory_state()

    def outcome(self, test: LitmusTest) -> Tuple[Tuple[str, int], ...]:
        """The observable final state, projected on the test's condition.

        The projection mirrors what the litmus harness logs on hardware:
        the registers and locations mentioned in the final condition (or
        every memory location when the test has no condition).  The
        final-memory replay (a coherence-order walk) runs only when the
        condition actually mentions a memory location.
        """
        observed: List[Tuple[str, int]] = []
        if test.condition is not None:
            memory: Optional[Dict[str, int]] = None
            for atom in test.condition.atoms:
                if atom.kind == "reg":
                    value = self.final_registers.get((atom.thread, atom.name), 0)
                    observed.append((f"{atom.thread}:{atom.name}", int(value)))
                else:
                    if memory is None:
                        memory = self.final_memory()
                    observed.append((atom.name, memory.get(atom.name, 0)))
        else:
            observed.extend(sorted(self.final_memory().items()))
        return tuple(sorted(set(observed)))


def _thread_paths(
    test: LitmusTest, value_domain: Optional[Sequence[int]] = None
) -> List[List[ThreadExecution]]:
    domain = list(value_domain) if value_domain is not None else value_domain_of(test)
    paths: List[List[ThreadExecution]] = []
    for index, instructions in enumerate(test.threads):
        init_registers = thread_init_registers(test, index)
        paths.append(
            enumerate_thread_paths(index, instructions, init_registers, domain)
        )
    return paths


@dataclass
class CombinationContext:
    """Everything one choice of per-thread paths shares across rf×co children.

    The event universe is interned once into an :class:`EventIndex`; the
    program order, dependency and fence relations are built once in the
    bitmask kernel and reused by every candidate (and by every model
    check over those candidates).
    """

    index: EventIndex
    all_events: Tuple[Event, ...]
    events_frozen: frozenset
    po: Relation
    addr: Relation
    data: Relation
    ctrl: Relation
    ctrl_cfence: Relation
    fences: Dict[str, Relation]
    final_registers: Dict[Tuple[int, str], RegisterValue]
    touched: frozenset
    writes: Tuple[Event, ...]
    reads: Tuple[Event, ...]
    #: per read, the candidate rf sources (same location, same value).
    rf_sources: Tuple[Tuple[Event, ...], ...]
    #: per (sorted) location, the coherence orders (init first).
    locations: Tuple[str, ...]
    co_orders: Tuple[Tuple[Tuple[Event, ...], ...], ...]

    @property
    def feasible(self) -> bool:
        return all(self.rf_sources) or not self.reads

    @property
    def rf_count(self) -> int:
        count = 1
        for sources in self.rf_sources:
            count *= len(sources)
        return count

    @property
    def co_count(self) -> int:
        count = 1
        for orders in self.co_orders:
            count *= len(orders)
        return count

    @property
    def total_candidates(self) -> int:
        if self.reads and not self.feasible:
            return 0
        return self.rf_count * self.co_count

    def rf_relation(self, assignment: Sequence[Tuple[Event, Event]]) -> Relation:
        """Kernel rf relation from ``(write, read)`` pairs."""
        rows = [0] * self.index.n
        ids = self.index.ids
        for write, read in assignment:
            rows[ids[write]] |= 1 << ids[read]
        return Relation.from_rows(self.index, rows)

    def co_relation(self, orders: Sequence[Sequence[Event]]) -> Relation:
        """Kernel co relation from one total order per location."""
        rows = [0] * self.index.n
        ids = self.index.ids
        for order in orders:
            later = 0
            for event in reversed(order):
                i = ids[event]
                rows[i] |= later
                later |= 1 << i
        return Relation.from_rows(self.index, rows)

    def execution(self, rf: Relation, co: Relation) -> Execution:
        return Execution(
            events=self.events_frozen,
            po=self.po,
            rf=rf,
            co=co,
            addr=self.addr,
            data=self.data,
            ctrl=self.ctrl,
            ctrl_cfence=self.ctrl_cfence,
            fences_by_name=self.fences,
        )

    def candidate(self, rf: Relation, co: Relation) -> Candidate:
        return Candidate(
            execution=self.execution(rf, co),
            final_registers=dict(self.final_registers),
        )


def combination_context(
    combination: Sequence[ThreadExecution],
    locations: Iterable[str] = (),
    initial_values: Optional[Mapping[str, int]] = None,
) -> CombinationContext:
    """Intern one choice of per-thread paths and build its shared relations."""
    events: List[Event] = []
    addr_pairs: List[Tuple[Event, Event]] = []
    data_pairs: List[Tuple[Event, Event]] = []
    ctrl_pairs: List[Tuple[Event, Event]] = []
    ctrl_cfence_pairs: List[Tuple[Event, Event]] = []
    fence_pairs: Dict[str, List[Tuple[Event, Event]]] = {}
    final_registers: Dict[Tuple[int, str], RegisterValue] = {}

    for path in combination:
        events.extend(path.memory_events)
        addr_pairs.extend(path.addr)
        data_pairs.extend(path.data)
        ctrl_pairs.extend(path.ctrl)
        ctrl_cfence_pairs.extend(path.ctrl_cfence)
        for name, pairs in path.fences.items():
            fence_pairs.setdefault(name, []).extend(pairs)
        for register, value in path.final_registers.items():
            final_registers[(path.thread, register)] = value

    touched = frozenset(locations) | {
        e.location for e in events if e.location is not None
    }
    init_writes = Execution.initial_writes(touched, initial_values)
    all_events = tuple(init_writes + events)
    # Already sorted: init writes (thread -1) come location-ordered, then
    # each thread's memory events in program order — i.e. (thread, poi).
    index = EventIndex(all_events, presorted=True)

    po_rows = [0] * index.n
    ids = index.ids
    for path in combination:
        later = 0
        for event in reversed(path.memory_events):
            i = ids[event]
            po_rows[i] |= later
            later |= 1 << i

    def interned(pairs: Sequence[Tuple[Event, Event]]) -> Relation:
        rows = index.rows_of_pairs(pairs)
        assert rows is not None
        return Relation.from_rows(index, rows)

    writes = tuple(e for e in all_events if e.is_write())
    reads = tuple(e for e in all_events if e.is_read())

    rf_sources = tuple(
        tuple(
            write
            for write in writes
            if write.location == read.location and write.value == read.value
        )
        for read in reads
    )

    sorted_locations = tuple(sorted(touched))
    co_orders: List[Tuple[Tuple[Event, ...], ...]] = []
    for location in sorted_locations:
        local_writes = [w for w in writes if w.location == location]
        init = tuple(w for w in local_writes if w.is_init())
        rest = sorted(w for w in local_writes if not w.is_init())
        # Unconstrained linear extensions are plain permutations (the
        # empty permutation makes this (init,) when there is no other
        # write to the location).
        co_orders.append(
            tuple(init + order for order in itertools.permutations(rest))
        )

    return CombinationContext(
        index=index,
        all_events=all_events,
        events_frozen=frozenset(all_events),
        po=Relation.from_rows(index, po_rows),
        addr=interned(addr_pairs),
        data=interned(data_pairs),
        ctrl=interned(ctrl_pairs),
        ctrl_cfence=interned(ctrl_cfence_pairs),
        fences={name: interned(pairs) for name, pairs in fence_pairs.items()},
        final_registers=final_registers,
        touched=touched,
        writes=writes,
        reads=reads,
        rf_sources=rf_sources,
        locations=sorted_locations,
        co_orders=tuple(co_orders),
    )


def combination_contexts(
    test: LitmusTest, value_domain: Optional[Sequence[int]] = None
) -> Iterator[CombinationContext]:
    """One :class:`CombinationContext` per choice of per-thread paths."""
    all_paths = _thread_paths(test, value_domain)
    locations = set(test.locations())
    for combination in itertools.product(*all_paths):
        yield combination_context(combination, locations, test.init_memory)


def _read_from_choices(
    context: CombinationContext,
) -> Iterator[Tuple[Tuple[Event, Event], ...]]:
    """All read-from maps: one same-location same-value write per read."""
    if context.reads and not context.feasible:
        return  # this combination of thread paths is infeasible
    per_read = [
        [(write, read) for write in sources]
        for read, sources in zip(context.reads, context.rf_sources)
    ]
    yield from itertools.product(*per_read)


def _coherence_choices(context: CombinationContext) -> Iterator[Relation]:
    """All coherence orders: per location, a total order with init first."""
    for combination in itertools.product(*context.co_orders):
        yield context.co_relation(combination)


def candidates_of_combination(
    combination: Sequence[ThreadExecution],
    locations: Iterable[str] = (),
    initial_values: Optional[Mapping[str, int]] = None,
) -> Iterator[Candidate]:
    """Yield the candidate executions of one choice of per-thread paths.

    This is the data-flow half of the enumeration: given the control-flow
    paths (one :class:`~repro.litmus.semantics.ThreadExecution` per
    thread), enumerate every read-from map and coherence order.  It is
    shared between the litmus front-end (:func:`candidate_executions`)
    and the verification front-end (:mod:`repro.verification.bmc`).
    """
    context = combination_context(combination, locations, initial_values)
    yield from candidates_of_context(context)


def candidates_of_context(context: CombinationContext) -> Iterator[Candidate]:
    """Brute-force cross product over one combination's rf and co choices."""
    for rf_pairs in _read_from_choices(context):
        rf = context.rf_relation(rf_pairs)
        for co in _coherence_choices(context):
            yield context.candidate(rf, co)


def candidate_executions(
    test: LitmusTest, value_domain: Optional[Sequence[int]] = None
) -> Iterator[Candidate]:
    """Yield every candidate execution of *test* (naive reference oracle)."""
    for context in combination_contexts(test, value_domain):
        yield from candidates_of_context(context)


def count_candidates(test: LitmusTest) -> int:
    """Number of candidate executions of a test (used by benchmarks)."""
    return sum(
        context.total_candidates for context in combination_contexts(test)
    )
