"""Incremental pruning execution engine (the production enumerator).

The naive oracle in :mod:`repro.herd.enumerate` materializes the full
cross product (all rf maps × all per-location coherence orders) and
lets the model reject invalid candidates one by one.  Most rejections
are SC-PER-LOCATION (uniproc) violations, and those are detectable on
*partial* assignments: once a prefix of rf/co choices closes a cycle in
``po-loc ∪ rf ∪ co ∪ fr``, every extension of that prefix is doomed.
This engine therefore walks the assignment tree depth-first and cuts
whole subtrees:

* the per-combination event universe is interned once into an
  :class:`~repro.core.bitrel.EventIndex` and the uniproc graph is kept
  as a transitively-closed bitmask reachability matrix, updated in
  O(n) word operations per added edge (``bitrel.add_edge_closure``);
* an rf edge ``w → r`` is rejected immediately when ``r`` already
  reaches ``w`` (reading from the future), or when some same-location
  write ``w''`` is reachable from ``w`` and reaches ``r`` (uniproc
  would force ``co(w, w'')`` and hence the cycle
  ``r →fr w'' →poloc r``);
* a coherence order for one location is rejected as soon as one of its
  edges (or a derived from-read edge) closes a cycle, skipping the
  cross product of every later location's orders.

Pruned subtrees are *counted, not enumerated*: candidate totals and the
observable-outcome universe are products over per-read source counts
and per-location order counts, so full
:class:`~repro.herd.simulator.SimulationResult` summaries stay exactly
equal to the naive engine's (the differential suite asserts this).
Surviving candidates satisfy SC PER LOCATION by construction, so model
checks run with ``assume_sc_per_location=True`` and only evaluate the
remaining three axioms.

``surviving_candidates`` is also the shared front door for the
multi-event and operational simulators: a uniproc-violating candidate
is forbidden by every engine of the Tab. IX comparison (the lifted
sc-per-location check, and the machine's coWW/coWR/coRW/coRR premises,
reject exactly the same cycles — Thm. 7.1), so verdict queries never
need to visit the pruned subtrees at all.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro import telemetry as _telemetry
from repro.core.bitrel import add_edge_closure, iter_bits, rows_closure
from repro.core.events import Event
from repro.herd.enumerate import (
    Candidate,
    CombinationContext,
    _thread_paths,
    combination_context,
    combination_contexts,
)
from repro.litmus.ast import LitmusTest

Outcome = Tuple[Tuple[str, int], ...]

#: SC PER LOCATION variants the engine knows how to prune with.
_VARIANTS = ("standard", "llh")


class SurvivingLeaf:
    """One uniproc-consistent assignment; the candidate builds on demand."""

    __slots__ = ("context", "assignment", "orders", "outcome")

    def __init__(
        self,
        context: CombinationContext,
        assignment: Tuple[Tuple[Event, Event], ...],
        orders: Tuple[Tuple[Event, ...], ...],
        outcome: Optional[Outcome],
    ):
        self.context = context
        self.assignment = assignment
        self.orders = orders
        self.outcome = outcome

    def candidate(self) -> Candidate:
        return self.context.candidate(
            self.context.rf_relation(self.assignment),
            self.context.co_relation(self.orders),
        )


def sc_per_location_rows(context: CombinationContext, variant: str) -> List[int]:
    """The po-loc successor rows the given SC PER LOCATION variant
    constrains with (``llh`` lets read-read pairs leave po-loc).  Shared
    between the pruning and optimal engines so both enforce exactly the
    same per-variant graph."""
    if variant not in _VARIANTS:
        raise ValueError(f"unknown SC PER LOCATION variant: {variant!r}")
    po_loc = context.po.same_location()
    if variant == "llh":
        reads_mask = context.index.reads_mask
        return [
            row & ~reads_mask if reads_mask >> i & 1 else row
            for i, row in enumerate(po_loc._rows)
        ]
    return list(po_loc._rows)


class BasePlan:
    """What every enumeration plan of one combination shares.

    A plan owns one :class:`CombinationContext` and answers the
    *summary* questions — the full candidate-grid size and the outcome
    universe — combinatorially, identically for every engine; the
    engine-specific part is :meth:`leaves`, the walk over the
    uniproc-consistent assignments.
    """

    def __init__(
        self,
        context: CombinationContext,
        test: Optional[LitmusTest] = None,
        variant: str = "standard",
    ):
        if variant not in _VARIANTS:
            raise ValueError(f"unknown SC PER LOCATION variant: {variant!r}")
        self.context = context
        self.test = test
        self.variant = variant
        self.total = context.total_candidates
        #: candidates of the grid not yielded by the last `leaves()` walk.
        self.pruned = 0
        self.survivors_count = 0

    def leaves(self, with_outcomes: bool = True) -> Iterator["SurvivingLeaf"]:
        raise NotImplementedError

    def survivors(
        self, with_outcomes: bool = True
    ) -> Iterator[Tuple[Candidate, Optional[Outcome]]]:
        """Depth-first walk yielding only uniproc-consistent candidates.

        Yields ``(candidate, outcome)`` pairs (``outcome`` is None when
        ``with_outcomes`` is False).  After exhaustion, ``self.pruned``
        holds the number of candidates skipped, and
        ``pruned + number of survivors == total``.
        """
        for leaf in self.leaves(with_outcomes=with_outcomes):
            yield leaf.candidate(), leaf.outcome

    # -- outcome universe ---------------------------------------------------------

    def _final_values(self) -> Dict[str, Set[int]]:
        """Per location, the possible final (co-maximal) values."""
        finals: Dict[str, Set[int]] = {}
        for location, orders in zip(self.context.locations, self.context.co_orders):
            finals[location] = {
                order[-1].value if order[-1].value is not None else 0
                for order in orders
            }
        return finals

    def _register_part(self) -> List[Tuple[str, int]]:
        """The register projection of the outcome (fixed per combination)."""
        condition = self.test.condition if self.test is not None else None
        if condition is None:
            return []
        registers = self.context.final_registers
        return [
            (f"{atom.thread}:{atom.name}", int(registers.get((atom.thread, atom.name), 0)))
            for atom in condition.atoms
            if atom.kind == "reg"
        ]

    def _project(
        self, register_part: List[Tuple[str, int]], memory: Dict[str, int]
    ) -> Outcome:
        """Project (registers, final memory) onto the condition — the
        single source of the engine's outcome shape, byte-identical to
        :meth:`repro.herd.enumerate.Candidate.outcome`."""
        condition = self.test.condition if self.test is not None else None
        if condition is None:
            return tuple(sorted(set(memory.items())))
        observed = register_part + [
            (atom.name, memory.get(atom.name, 0))
            for atom in condition.atoms
            if atom.kind == "mem"
        ]
        return tuple(sorted(set(observed)))

    def all_outcomes(self) -> Set[Outcome]:
        """Outcomes of *every* candidate of this combination (incl. pruned).

        The final registers are fixed by the thread paths and the final
        memory of each location is the last write of its coherence
        order, so the outcome universe is a product over per-location
        final values — no enumeration needed.
        """
        if self.total == 0:
            return set()
        condition = self.test.condition if self.test is not None else None
        register_part = self._register_part()
        if condition is not None:
            referenced = sorted(
                {atom.name for atom in condition.atoms if atom.kind == "mem"}
            )
            if not referenced:
                return {self._project(register_part, {})}
        else:
            referenced = sorted(self.context.locations)

        finals = self._final_values()
        choices = [sorted(finals.get(location, {0})) for location in referenced]
        return {
            self._project(register_part, dict(zip(referenced, values)))
            for values in itertools.product(*choices)
        }

    def _leaf_outcome(
        self, register_part: List[Tuple[str, int]], orders: Sequence[Sequence[Event]]
    ) -> Outcome:
        """Outcome of one surviving candidate."""
        condition = self.test.condition if self.test is not None else None
        if condition is not None and not any(
            atom.kind == "mem" for atom in condition.atoms
        ):
            return self._project(register_part, {})
        memory = {
            location: (order[-1].value if order[-1].value is not None else 0)
            for location, order in zip(self.context.locations, orders)
        }
        return self._project(register_part, memory)

class ComboPlan(BasePlan):
    """The pruning plan of one combination of per-thread paths."""

    def __init__(
        self,
        context: CombinationContext,
        test: Optional[LitmusTest] = None,
        variant: str = "standard",
    ):
        super().__init__(context, test, variant)
        self._base_closure = rows_closure(sc_per_location_rows(context, variant))
        #: statistics of the last `leaves()` walk (telemetry reads them):
        #: rf source pairs examined, co orders examined, incremental
        #: closure-edge insertions.
        self.rf_candidates = 0
        self.co_orders_tried = 0
        self.closure_edge_ops = 0

    # -- the pruned walk ----------------------------------------------------------

    def leaves(self, with_outcomes: bool = True) -> Iterator["SurvivingLeaf"]:
        """Like :meth:`survivors`, but candidates materialize lazily.

        Verdict-only queries read the (cheap) outcome first and only
        build the :class:`Execution` for leaves that can actually
        witness the target.
        """
        self.pruned = 0
        self.rf_candidates = 0
        self.co_orders_tried = 0
        self.closure_edge_ops = 0
        self.survivors_count = 0
        context = self.context
        if context.reads and not context.feasible:
            return
        # Hot-loop statistics accumulate in local integers (one add per
        # event, negligible next to the O(n) closure updates they count)
        # and are published once per walk, inside one telemetry guard.
        rf_candidates = 0
        co_orders_tried = 0
        closure_edge_ops = 0
        survivors = 0
        index = context.index
        ids = index.ids
        writes_mask = index.writes_mask
        location_masks = index.location_masks

        reads = context.reads
        read_ids = [ids[read] for read in reads]
        source_lists = [
            [(write, ids[write]) for write in sources]
            for sources in context.rf_sources
        ]
        co_orders = context.co_orders
        num_reads = len(reads)
        num_locations = len(co_orders)

        # Suffix products for counting pruned subtrees.
        rf_suffix = [1] * (num_reads + 1)
        for depth in range(num_reads - 1, -1, -1):
            rf_suffix[depth] = rf_suffix[depth + 1] * len(source_lists[depth])
        co_suffix = [1] * (num_locations + 1)
        for k in range(num_locations - 1, -1, -1):
            co_suffix[k] = co_suffix[k + 1] * len(co_orders[k])
        co_total = co_suffix[0]

        register_part = self._register_part() if with_outcomes else []
        condition = self.test.condition if self.test is not None else None
        constant_outcome: Optional[Outcome] = None
        if (
            with_outcomes
            and condition is not None
            and all(atom.kind == "reg" for atom in condition.atoms)
        ):
            # Register-only condition: the outcome is fixed by the thread
            # paths, identical for every rf/co child of this combination.
            constant_outcome = tuple(sorted(set(register_part)))
        assignment: List[Tuple[Event, Event]] = []
        readers: Dict[int, List[int]] = {}

        def co_walk(
            k: int, closure: List[int], chosen: List[Tuple[Event, ...]]
        ) -> Iterator["SurvivingLeaf"]:
            nonlocal co_orders_tried, closure_edge_ops
            if k == num_locations:
                if constant_outcome is not None:
                    outcome: Optional[Outcome] = constant_outcome
                elif with_outcomes:
                    outcome = self._leaf_outcome(register_part, chosen)
                else:
                    outcome = None
                yield SurvivingLeaf(
                    context, tuple(assignment), tuple(chosen), outcome
                )
                return
            for order in co_orders[k]:
                co_orders_tried += 1
                branch = list(closure)
                ok = True
                for i in range(len(order) - 1):
                    earlier = ids[order[i]]
                    later = ids[order[i + 1]]
                    if branch[later] >> earlier & 1:
                        ok = False
                        break
                    add_edge_closure(branch, earlier, later)
                    closure_edge_ops += 1
                    # Derived from-read edges: r reads `earlier`, which is
                    # now co-before `later`, so fr(r, later).
                    for rid in readers.get(earlier, ()):
                        if branch[later] >> rid & 1:
                            ok = False
                            break
                        add_edge_closure(branch, rid, later)
                        closure_edge_ops += 1
                    if not ok:
                        break
                if not ok:
                    self.pruned += co_suffix[k + 1]
                    continue
                chosen.append(order)
                yield from co_walk(k + 1, branch, chosen)
                chosen.pop()

        def rf_walk(depth: int, closure: List[int]) -> Iterator["SurvivingLeaf"]:
            nonlocal rf_candidates, closure_edge_ops
            if depth == num_reads:
                yield from co_walk(0, closure, [])
                return
            read = reads[depth]
            rid = read_ids[depth]
            loc_writes = location_masks.get(read.location, 0) & writes_mask
            for write, wid in source_lists[depth]:
                rf_candidates += 1
                # Reading from the future: r already reaches w.
                if closure[rid] >> wid & 1:
                    self.pruned += rf_suffix[depth + 1] * co_total
                    continue
                # Doomed source: some same-location write w'' is (or will
                # be forced) co-after w yet reaches r, so fr(r, w'')
                # closes a cycle in every completion.
                intervening = loc_writes & ~(1 << wid)
                if not write.is_init():
                    intervening &= closure[wid]
                if any(
                    closure[wid2] >> rid & 1 for wid2 in iter_bits(intervening)
                ):
                    self.pruned += rf_suffix[depth + 1] * co_total
                    continue
                branch = list(closure)
                add_edge_closure(branch, wid, rid)
                closure_edge_ops += 1
                assignment.append((write, read))
                readers.setdefault(wid, []).append(rid)
                yield from rf_walk(depth + 1, branch)
                readers[wid].pop()
                assignment.pop()

        try:
            for leaf in rf_walk(0, list(self._base_closure)):
                survivors += 1
                yield leaf
        finally:
            # Publish even when the consumer breaks out early (the
            # verdict fast path closes the generator on first witness):
            # closing raises GeneratorExit through the yield above.
            self.rf_candidates = rf_candidates
            self.co_orders_tried = co_orders_tried
            self.closure_edge_ops = closure_edge_ops
            self.survivors_count = survivors
            registry = _telemetry._ACTIVE
            if registry is not None:
                registry.count("engine.walks")
                registry.count("engine.rf_candidates", rf_candidates)
                registry.count("engine.co_orders_tried", co_orders_tried)
                registry.count("engine.closure_edge_ops", closure_edge_ops)
                registry.count("engine.survivors", survivors)
                registry.count("engine.pruned_candidates", self.pruned)


def plans(
    test: LitmusTest,
    variant: str = "standard",
    value_domain: Optional[Sequence[int]] = None,
) -> Iterator[ComboPlan]:
    """One :class:`ComboPlan` per combination of per-thread paths."""
    for context in combination_contexts(test, value_domain):
        yield ComboPlan(context, test, variant)


def combination_matches_target(combination, condition) -> bool:
    """Can this choice of per-thread paths witness the register atoms?

    The final registers are fixed by the thread paths alone, so register
    atoms filter whole combinations *before* the event universe is
    interned or any relation built.  Shared between :func:`target_plans`
    and the campaign runtime's per-test context cache, so the two filter
    identically.
    """
    for atom in condition.atoms:
        if atom.kind != "reg":
            continue
        # Unknown threads/registers read as 0, exactly as in
        # Candidate.outcome's final_registers.get(..., 0) default.
        if atom.thread is None or not 0 <= atom.thread < len(combination):
            value: object = 0
        else:
            value = combination[atom.thread].final_registers.get(atom.name, 0)
        if int(value) != atom.value:
            return False
    return True


def target_plans(
    test: LitmusTest,
    variant: str = "standard",
    value_domain: Optional[Sequence[int]] = None,
) -> Iterator[ComboPlan]:
    """Plans of the combinations that could witness the target outcome.

    Register atoms of the condition filter whole combinations before any
    interning — for a register-only ``exists`` clause (the common litmus
    shape) only the combinations that actually match the target are ever
    constructed.  Memory atoms are left to the caller's outcome-universe
    check.
    """
    condition = test.condition
    assert condition is not None, "target_plans needs a final condition"
    all_paths = _thread_paths(test, value_domain)
    locations = set(test.locations())
    for combination in itertools.product(*all_paths):
        if not combination_matches_target(combination, condition):
            continue
        context = combination_context(combination, locations, test.init_memory)
        yield ComboPlan(context, test, variant)


def surviving_candidates(
    test: LitmusTest,
    variant: str = "standard",
    value_domain: Optional[Sequence[int]] = None,
    with_outcomes: bool = True,
) -> Iterator[Tuple[Candidate, Optional[Outcome]]]:
    """Every uniproc-consistent candidate of *test*, with its outcome.

    The pruned complement is exactly the set of candidates the naive
    oracle generates and every model then rejects through SC PER
    LOCATION (for the given *variant*), so Allow/Forbid queries — under
    the axiomatic, multi-event or operational engines alike — lose
    nothing by iterating survivors only.
    """
    for plan in plans(test, variant, value_domain):
        yield from plan.survivors(with_outcomes=with_outcomes)
