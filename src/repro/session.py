"""One front door: a stateful :class:`Session` façade over every driver.

The toolbox is one conceptual workflow — simulate litmus tests, repair
them with fences, observe them on hardware populations, sweep generated
families, mine programs for cycles, model-check concurrent code — but
each driver historically resolved its own models and threaded its own
``context_cache=`` / ``processes=`` / ``pool=`` / ``strategy=`` kwargs.
A :class:`Session` owns that cross-cutting state once:

* a **resolved-model cache** — model names are resolved to
  :class:`~repro.core.model.Model` objects once per session, never per
  call (``stats()["model_cache"]`` counts the hits);
* a shared :class:`~repro.campaign.ContextCache` — the memoized front
  half of the simulation pipeline is reused by *every* verb, so a test
  repaired, swept and observed in one session interns its events once;
* a fence-repair **cycle-signature memo** shared by every ``repair``
  call, so families repaired across several batches keep their seeds;
* a lazily-started persistent :class:`~repro.campaign.CampaignPool` —
  the first batch verb on a multi-worker session spins the pool up, and
  every later batch reuses the warm workers (and their per-process
  simulators and context caches);
* session **defaults** (``model=``, ``engine=``, ``strategy=``,
  ``processes=``, ``cache_size=``) applied by every verb unless
  overridden per call.

Every verb accepts a single item *or* an iterable and auto-dispatches:
single calls run in-process against the session caches; iterables go
through the campaign runtime on the session's warm pool (or the serial
fallback, which shares the same caches).  All results conform to the
:class:`repro.report.Report` protocol, so batch outputs serialize
uniformly.

Usage::

    from repro import Session

    with Session(model="power", processes="auto") as session:
        session.verdict(test)                  # "Allow" / "Forbid"
        session.repair(tests)                  # CampaignResult (warm pool)
        session.sweep(tests, model="arm")      # FamilySweep (contexts reused)
        session.observe(tests)                 # CampaignReport (chips inferred)
        print(session.stats())                 # cache hit counters

The module-level verbs (:func:`simulate`, :func:`verdict`, ...) are
thin wrappers over one process-wide default session (serial, so it
never spawns workers behind your back); they are what
``from repro import simulate`` gives you.
"""

from __future__ import annotations

import contextlib
import random
from collections.abc import Mapping
from typing import Any, Dict, List, Optional, Sequence, Union

from repro import telemetry as _telemetry
from repro.campaign import (
    CampaignPool,
    ContextCache,
    ErrorRing,
    FailedItem,
    SupervisorPolicy,
    worker_count,
)
from repro.campaign import supervisor as _supervisor
from repro.util.caches import BoundedTTLCache
from repro.telemetry import CacheStats, Metrics
from repro.herd.simulator import (
    ModelLike,
    SimulationResult,
    Simulator,
    resolve_model,
)
from repro.litmus.ast import LitmusTest

__all__ = [
    "Session",
    "compare",
    "default_session",
    "simulate",
    "verdict",
    "repair",
    "observe",
    "sweep",
    "analyse",
    "verify",
]


class Session:
    """A stateful front door over the simulate/repair/observe/sweep/
    analyse/verify drivers, owning their shared state.

    ``model`` is the default model of every verb (a name, an
    :class:`~repro.core.model.Architecture`, a resolved model or a
    cat-interpreted model); ``engine`` defaults the enumeration engine
    of the simulation verbs (``simulate``/``verdict``/``sweep``;
    ``repair``/``observe``/``verify`` always use their drivers' own
    engine choice); ``strategy`` defaults the fence-placement
    strategy; ``processes``
    (``None`` for serial, an int, or ``"auto"`` for one worker per
    core) sizes the campaign pool batch verbs fan out on;
    ``cache_size`` bounds the shared context cache (``None`` for
    unbounded).  Sessions are context managers — leaving the ``with``
    block shuts the pool down.

    Long-lived sessions (the verdict service) additionally bound their
    shared state: ``cache_ttl`` (seconds, ``None`` for no expiry) puts
    an *idle* time-to-live on the resolved-model, context and repair
    cycle-signature caches, ``cycle_cache_size`` LRU-bounds the cycle
    memo, and ``error_ring`` bounds :attr:`last_errors` to the newest N
    :class:`~repro.campaign.FailedItem` records — drops are counted in
    ``stats()["supervisor"]["errors_dropped"]``.

    Multi-worker sessions are **fault-tolerant by default**: batch
    verbs run on the supervised campaign layer
    (:mod:`repro.campaign.supervisor`), so a worker crash, a chunk
    exceeding ``chunk_timeout`` seconds, or an unpicklable exception
    never wedges the batch.  Failing chunks are retried
    ``max_retries`` times with exponential backoff (base
    ``retry_backoff`` seconds), dead workers are respawned, and poison
    items are bisected out and handled per ``on_error``:
    ``"quarantine"`` (the default — drop them from the results and
    record :class:`~repro.campaign.FailedItem` entries on the report's
    ``errors`` and on :attr:`last_errors`), ``"serial_retry"`` (one
    in-process retry in the parent first) or ``"raise"`` (raise
    :class:`~repro.campaign.PoisonItemError`).  Supervision counters
    accumulate in ``stats()["supervisor"]``.  Serial sessions keep the
    exact in-process semantics — exceptions propagate to the caller.
    """

    def __init__(
        self,
        model: ModelLike = "power",
        engine: str = "auto",
        strategy: str = "greedy",
        processes=None,
        cache_size: Optional[int] = 256,
        telemetry: bool = False,
        chunk_timeout: Optional[float] = None,
        on_error: str = "quarantine",
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        cache_ttl: Optional[float] = None,
        cycle_cache_size: Optional[int] = 4096,
        error_ring: int = 256,
    ):
        self.model = model
        self.engine = engine
        self.strategy = strategy
        self.processes = processes
        self.cache_ttl = cache_ttl
        self.policy = SupervisorPolicy(
            chunk_timeout=chunk_timeout,
            max_retries=max_retries,
            backoff=retry_backoff,
            on_error=on_error,
        )
        #: the FailedItem records of the most recent batch verb call,
        #: bounded to the newest ``error_ring`` records (lifetime drops
        #: show up as ``stats()["supervisor"]["errors_dropped"]``).
        self.last_errors: ErrorRing = ErrorRing(error_ring)
        self._supervisor_history = _supervisor.new_counters()
        self.context_cache = ContextCache(capacity=cache_size, ttl=cache_ttl)
        self._model_stats = CacheStats("model", entries=lambda: len(self._models))
        self._cycle_stats = CacheStats("cycle", entries=lambda: len(self.cycle_cache))
        #: (model name, strategy, cycle signature) -> mechanism seed,
        #: shared by every repair of the session (see repro.fences.campaign).
        #: Bounded: a long-lived session serving repair traffic would
        #: otherwise accumulate one seed per cycle shape forever.
        self.cycle_cache: Dict = BoundedTTLCache(
            max_entries=cycle_cache_size, ttl=cache_ttl, stats=self._cycle_stats
        )
        self._models: Dict[str, Any] = BoundedTTLCache(
            max_entries=128, ttl=cache_ttl, stats=self._model_stats
        )
        self._simulators: Dict = {}
        self._checkers: Dict = {}
        self._pool: Optional[CampaignPool] = None
        self._telemetry: Optional[Metrics] = None
        if telemetry:
            self.enable_telemetry()

    # -- lifecycle ----------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, grace: Optional[float] = None) -> None:
        """Shut the campaign pool down (the caches survive; a later
        batch verb restarts the pool lazily) and uninstall this
        session's telemetry registry if it is the active one.  The
        pool's supervision counters are folded into the session history
        first, so ``stats()["supervisor"]`` survives pool restarts.
        ``grace`` overrides the policy's shutdown grace period — a
        draining service passes a small one so an overdue chunk is
        killed instead of waited out.  Idempotent."""
        if self._pool is not None:
            for name, value in self._pool.counters.items():
                self._supervisor_history[name] = (
                    self._supervisor_history.get(name, 0) + value
                )
            self._pool.close(grace)
            self._pool = None
        self.disable_telemetry()

    # -- telemetry ----------------------------------------------------------------

    @property
    def telemetry(self) -> Optional[Metrics]:
        """This session's metrics registry, or ``None`` until enabled."""
        return self._telemetry

    def enable_telemetry(self, metrics: Optional[Metrics] = None) -> Metrics:
        """Install this session's registry as the process-active one.

        The registry persists across ``enable``/``disable`` cycles (its
        counters accumulate over the session's lifetime); pass
        ``metrics`` to adopt an external registry instead.  Returns the
        installed registry.
        """
        if metrics is not None:
            self._telemetry = metrics
        elif self._telemetry is None:
            self._telemetry = Metrics()
        _telemetry.enable(self._telemetry)
        return self._telemetry

    def disable_telemetry(self) -> None:
        """Stop collecting: uninstall the process-active registry if it
        is this session's (the registry itself is kept, so ``stats()``
        still reports everything collected so far)."""
        if self._telemetry is not None and _telemetry._ACTIVE is self._telemetry:
            _telemetry.disable()

    @contextlib.contextmanager
    def trace(self, path):
        """Collect telemetry for the ``with`` block and tee the span
        trace to *path* as JSONL on exit.

        Enables this session's registry on entry (leaving it enabled if
        it already was), yields the registry, and appends every span
        recorded so far — plus one trailing summary line — to *path*::

            with session.trace("campaign.jsonl"):
                session.repair(tests)
        """
        was_active = _telemetry._ACTIVE is self._telemetry and self._telemetry is not None
        registry = self.enable_telemetry()
        try:
            yield registry
        finally:
            if not was_active:
                self.disable_telemetry()
            registry.export_jsonl(path)

    # -- shared state -------------------------------------------------------------

    @property
    def workers(self) -> int:
        """The effective worker count of this session's ``processes``."""
        return worker_count(self.processes)

    def resolve(self, model: Optional[ModelLike] = None):
        """Resolve a model-like value (default: the session model),
        memoizing resolutions by name."""
        spec = self.model if model is None else model
        if isinstance(spec, str):
            key = spec.lower()
            cached = self._models.get(key)
            if cached is not None:
                self._model_stats.hit()
                return cached
            self._model_stats.miss()
            resolved = resolve_model(spec)
            self._models[key] = resolved
            return resolved
        return resolve_model(spec)

    def simulator(
        self, model: Optional[ModelLike] = None, engine: Optional[str] = None
    ) -> Simulator:
        """This session's simulator for a model (memoized by name)."""
        engine = self.engine if engine is None else engine
        spec = self.model if model is None else model
        if isinstance(spec, str):
            key = (spec.lower(), engine)
            simulator = self._simulators.get(key)
            if simulator is None:
                simulator = Simulator(self.resolve(spec), engine=engine)
                self._simulators[key] = simulator
            return simulator
        return Simulator(self.resolve(spec), engine=engine)

    def checker(
        self, model: Optional[ModelLike] = None, backend: str = "axiomatic"
    ):
        """This session's bounded model checker (memoized by name)."""
        from repro.verification.bmc import BoundedModelChecker

        spec = self.model if model is None else model
        if isinstance(spec, str):
            key = (spec.lower(), backend)
            checker = self._checkers.get(key)
            if checker is None:
                checker = BoundedModelChecker(spec, backend)
                self._checkers[key] = checker
            return checker
        return BoundedModelChecker(spec, backend)

    def pool(self) -> Optional[CampaignPool]:
        """The session's campaign pool, started lazily — or ``None``
        when the session is serial (``processes`` of ``None``/``1``, or
        ``"auto"`` on a single-core machine)."""
        if self.workers <= 1:
            return None
        if self._pool is None:
            self._pool = CampaignPool(self.processes, policy=self.policy)
        return self._pool

    def _dispatch(self, model: Optional[ModelLike]):
        """How a batch verb should run: ``(model argument, pool)``.

        Multi-worker sessions ship the model *name* plus the warm pool,
        so workers re-hydrate and memoize it per process; serial
        sessions (and unpicklable custom models) pass the resolved
        model object and run in-process on the session caches.
        """
        spec = self.model if model is None else model
        if isinstance(spec, str) and self.workers > 1:
            return spec, self.pool()
        return self.resolve(spec), None

    def _fresh_errors(self) -> ErrorRing:
        """Reset and return :attr:`last_errors` for the next batch verb."""
        self.last_errors.clear()
        return self.last_errors

    def stats(self) -> Dict[str, Any]:
        """One coherent counter tree (all JSON-plain).

        The historical keys (``model_cache``/``context_cache``/
        ``cycle_cache``/``simulators``/``checkers``/``pool``) keep their
        exact shapes; two subtrees extend them:

        * ``caches`` — every cache on the unified
          :class:`~repro.telemetry.CacheStats` interface: the session's
          resolved-model, context and repair cycle-signature caches,
          plus the process-wide ILP memo and parsed-cat-model caches
          when their modules have been imported;
        * ``telemetry`` — the session registry's snapshot (counters,
          gauges, histogram summaries, span count), or ``None`` when
          telemetry was never enabled.  After a sharded campaign this
          includes the merged worker-side counters.
        """
        import sys

        caches = {
            "model": self._model_stats.as_dict(),
            "context": self.context_cache.cache_stats().as_dict(),
            "cycle": self._cycle_stats.as_dict(),
        }
        # Process-wide caches, reported only once their module is in —
        # stats() must never be the thing that imports a driver.
        ilp = sys.modules.get("repro.fences.ilp")
        if ilp is not None:
            caches["ilp_memo"] = ilp.cache_stats().as_dict()
        stdlib = sys.modules.get("repro.cat.stdlib")
        if stdlib is not None:
            caches["cat_models"] = stdlib.cache_stats().as_dict()

        telemetry_tree = None
        if self._telemetry is not None:
            snapshot = self._telemetry.snapshot()
            telemetry_tree = snapshot.to_dict()

        supervisor_counters = dict(self._supervisor_history)
        if self._pool is not None:
            for name, value in self._pool.counters.items():
                supervisor_counters[name] += value

        return {
            "model_cache": {
                "entries": len(self._models),
                "hits": self._model_stats.hits,
                "misses": self._model_stats.misses,
            },
            "context_cache": self.context_cache.stats(),
            "cycle_cache": {"entries": len(self.cycle_cache)},
            "simulators": len(self._simulators),
            "checkers": len(self._checkers),
            "pool": {
                "processes": self.processes,
                "workers": self.workers,
                "started": self._pool is not None,
            },
            "caches": caches,
            "supervisor": {
                "policy": self.policy.as_dict(),
                "counters": supervisor_counters,
                "last_errors": len(self.last_errors),
                "errors_dropped": self.last_errors.dropped,
            },
            "telemetry": telemetry_tree,
        }

    # -- verbs --------------------------------------------------------------------

    def simulate(
        self,
        tests: Union[LitmusTest, Sequence[LitmusTest]],
        model: Optional[ModelLike] = None,
        engine: Optional[str] = None,
        *,
        keep_candidates: bool = False,
        stop_at_first_violation: bool = True,
        until: Optional[str] = None,
    ) -> Union[SimulationResult, List[SimulationResult]]:
        """Full simulation summaries — one result per test.

        A single test runs in-process on the session caches; an
        iterable is sharded over the warm pool (full summaries pickle
        fine), except for ``keep_candidates`` queries, which stay
        serial so the candidate objects never cross a process boundary.
        """
        if isinstance(tests, LitmusTest):
            return self._simulate_one(
                tests, model, engine, keep_candidates, stop_at_first_violation, until
            )
        batch = list(tests)
        spec = self.model if model is None else model
        if (
            isinstance(spec, str)
            and self.workers > 1
            and len(batch) > 1
            and not keep_candidates
            and stop_at_first_violation
        ):
            from repro.campaign.jobs import SimulateJob, simulate_chunk

            effective = self.engine if engine is None else engine
            jobs = [SimulateJob(test, spec, effective, until) for test in batch]
            return self.pool().run(simulate_chunk, jobs, errors=self._fresh_errors())
        simulator = self.simulator(model, engine)
        return [
            simulator.run(
                test,
                keep_candidates=keep_candidates,
                stop_at_first_violation=stop_at_first_violation,
                until=until,
                context=None if keep_candidates else self.context_cache.get(test),
            )
            for test in batch
        ]

    def _simulate_one(
        self, test, model, engine, keep_candidates, stop_at_first_violation, until
    ) -> SimulationResult:
        simulator = self.simulator(model, engine)
        context = None if keep_candidates else self.context_cache.get(test)
        return simulator.run(
            test,
            keep_candidates=keep_candidates,
            stop_at_first_violation=stop_at_first_violation,
            until=until,
            context=context,
        )

    def verdict(
        self,
        tests: Union[LitmusTest, Sequence[LitmusTest]],
        model: Optional[ModelLike] = None,
        engine: Optional[str] = None,
    ) -> Union[str, List[str]]:
        """Allow/Forbid of the target outcome (the early-exit fast path).

        A single test returns one verdict string; an iterable returns
        the verdicts in order (dispatched through :meth:`sweep`, i.e.
        the campaign runtime on the warm pool).
        """
        if isinstance(tests, LitmusTest):
            simulator = self.simulator(model, engine)
            return simulator.verdict(tests, context=self.context_cache.get(tests))
        swept = self.sweep(tests, model=model, engine=engine)
        return [test_verdict for _, test_verdict in swept.verdicts]

    def sweep(
        self,
        tests: Union[LitmusTest, Sequence[LitmusTest]],
        model: Optional[ModelLike] = None,
        engine: Optional[str] = None,
    ):
        """Verdicts of a whole family under one model (a
        :class:`~repro.diy.families.FamilySweep`)."""
        from repro.diy.families import sweep_family

        batch = [tests] if isinstance(tests, LitmusTest) else list(tests)
        model_arg, pool = self._dispatch(model)
        return sweep_family(
            batch,
            model_arg,
            processes=self.processes,
            engine=self.engine if engine is None else engine,
            context_cache=self.context_cache,
            pool=pool,
            errors=self._fresh_errors(),
        )

    def compare(
        self,
        model_a: ModelLike,
        model_b: Optional[ModelLike] = None,
        *,
        budget=None,
        tests: Optional[Sequence[LitmusTest]] = None,
        engine: Optional[str] = None,
    ):
        """Compare two models over a bounded corpus: a
        :class:`~repro.compare.report.ComparisonReport` with the
        stronger/weaker/incomparable/equivalent-on-corpus verdict and a
        minimal distinguishing witness per direction.

        ``model_b`` defaults to the session model; ``budget`` (a
        :class:`~repro.compare.corpus.CorpusBudget`) or ``tests``
        selects the corpus.  Paired verdicts shard over the session's
        warm pool when both models are names; either way both models'
        verdicts of one test share a single cached simulation context.
        """
        from repro.compare.engine import compare_models

        model_b = self.model if model_b is None else model_b
        pool = None
        if (
            isinstance(model_a, str)
            and isinstance(model_b, str)
            and self.workers > 1
        ):
            pool = self.pool()
        return compare_models(
            model_a,
            model_b,
            budget=budget,
            tests=tests,
            engine=self.engine if engine is None else engine,
            processes=self.processes,
            pool=pool,
            context_cache=self.context_cache,
            errors=self._fresh_errors(),
        )

    def repair(
        self,
        tests: Union[LitmusTest, Sequence[LitmusTest]],
        model: Optional[ModelLike] = None,
        strategy: Optional[str] = None,
    ):
        """Synthesize validated fences: one test yields a
        :class:`~repro.fences.validate.RepairReport`, an iterable a
        :class:`~repro.fences.campaign.CampaignResult`.

        Every repair of the session shares one cycle-signature memo and
        the context cache, so repairing families batch by batch keeps
        the seeds (and the interned tests) warm.
        """
        strategy = self.strategy if strategy is None else strategy
        if isinstance(tests, LitmusTest):
            from repro.fences.campaign import repair_one

            report = repair_one(
                tests,
                self.resolve(model),
                self.cycle_cache,
                context_cache=self.context_cache,
                strategy=strategy,
            )
            self._count_cycle_traffic([report])
            return report
        from repro.fences.campaign import repair_family

        model_arg, pool = self._dispatch(model)
        result = repair_family(
            list(tests),
            model_arg,
            processes=self.processes,
            cache=self.cycle_cache,
            context_cache=self.context_cache,
            pool=pool,
            strategy=strategy,
            errors=self._fresh_errors(),
        )
        self._count_cycle_traffic(result.reports)
        return result

    def _count_cycle_traffic(self, reports) -> None:
        """Fold repair reports into the cycle-signature cache counters.

        The memo itself is a plain dict consulted inside the repair
        driver (possibly in worker processes), so the session counts
        traffic from the reports' ``from_cache`` flags — which reflect
        the memo state wherever the repair actually ran.
        """
        for report in reports:
            if getattr(report, "from_cache", False):
                self._cycle_stats.hit()
            else:
                self._cycle_stats.miss()

    def observe(
        self,
        tests: Union[LitmusTest, Sequence[LitmusTest]],
        chips=None,
        model: Optional[ModelLike] = None,
        iterations: int = 1_000_000,
        seed: int = 2014,
    ):
        """Run tests on a (simulated) chip population and compare with
        the model: one test yields an
        :class:`~repro.hardware.testing.ObservedTest`, an iterable a
        :class:`~repro.hardware.testing.CampaignReport`.

        ``chips=None`` infers the default population from the model
        family (Power models observe the Power chips, ARM models the
        ARM chips); RNG seeds are drawn exactly as
        :func:`~repro.hardware.testing.run_campaign` draws them, so a
        single-test observation equals the first row of a campaign.
        """
        if chips is None:
            chips = self._default_chips(model)
        if isinstance(tests, LitmusTest):
            from repro.hardware.testing import observe_test

            rng = random.Random(seed)
            seeds = tuple(rng.randint(0, 2**31) for _ in chips)
            return observe_test(
                self.simulator(model),
                tests,
                chips,
                iterations,
                seeds,
                context_cache=self.context_cache,
            )
        from repro.hardware.testing import run_campaign

        model_arg, pool = self._dispatch(model)
        return run_campaign(
            list(tests),
            chips,
            model_arg,
            iterations=iterations,
            seed=seed,
            processes=self.processes,
            context_cache=self.context_cache,
            pool=pool,
            errors=self._fresh_errors(),
        )

    def _default_chips(self, model: Optional[ModelLike]):
        resolved = self.resolve(model)
        name = str(getattr(resolved, "name", resolved)).lower()
        if "arm" in name:
            from repro.hardware.chips import default_arm_chips

            return default_arm_chips()
        if "power" in name:
            from repro.hardware.chips import default_power_chips

            return default_power_chips()
        raise ValueError(
            f"no default chip population for model {name!r}; pass chips="
        )

    def analyse(self, programs, max_cycle_length: int = 6):
        """Run the mole static cycle analysis: one program yields a
        :class:`~repro.mole.report.MoleReport`, a mapping (package name
        -> programs) a per-package report dictionary, any other
        iterable a list of per-program reports — batches sharded over
        the session pool."""
        from repro.verification.program import Program

        if isinstance(programs, Program):
            from repro.mole.report import analyse_program

            return analyse_program(programs, max_cycle_length)
        if isinstance(programs, Mapping):
            from repro.mole.report import analyse_corpus

            return analyse_corpus(
                programs,
                max_cycle_length,
                processes=self.processes,
                pool=self.pool(),
                errors=self._fresh_errors(),
            )
        batch = list(programs)
        pool = self.pool()
        if pool is not None and len(batch) > 1:
            from repro.campaign.jobs import MoleJob, mole_chunk
            from repro.mole.report import MoleReport

            jobs = [
                MoleJob(program.name, (program,), max_cycle_length)
                for program in batch
            ]
            return [
                MoleReport(name=name, cycles=cycles)
                for name, cycles in pool.run(
                    mole_chunk, jobs, chunk_size=2, errors=self._fresh_errors()
                )
            ]
        from repro.mole.report import analyse_program

        return [analyse_program(program, max_cycle_length) for program in batch]

    def verify(
        self,
        items,
        model: Optional[ModelLike] = None,
        backend: str = "axiomatic",
    ):
        """Bounded model checking: one program or litmus test yields a
        :class:`~repro.verification.bmc.VerificationResult`, an
        iterable a list of results (sharded over the session pool)."""
        from repro.verification.program import Program

        if isinstance(items, (Program, LitmusTest)):
            checker = self.checker(model, backend)
            if isinstance(items, Program):
                return checker.verify(items)
            return checker.verify_litmus(items)
        from repro.verification.bmc import verify_batch

        model_arg, pool = self._dispatch(model)
        return verify_batch(
            list(items),
            model_arg,
            backend=backend,
            processes=self.processes,
            pool=pool,
            errors=self._fresh_errors(),
        )


# -- the process-wide default session ---------------------------------------------

_DEFAULT_SESSION: Optional[Session] = None


def default_session() -> Session:
    """The process-wide default session behind the module-level verbs.

    Serial by construction (``processes=None``): the module-level API
    never spawns worker processes implicitly.  Build your own
    :class:`Session` for pooled batches.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION


def simulate(tests, model=None, engine=None, **kwargs):
    """:meth:`Session.simulate` on the default session."""
    return default_session().simulate(tests, model=model, engine=engine, **kwargs)


def verdict(tests, model=None, engine=None):
    """:meth:`Session.verdict` on the default session."""
    return default_session().verdict(tests, model=model, engine=engine)


def compare(model_a, model_b=None, *, budget=None, tests=None, engine=None):
    """:meth:`Session.compare` on the default session."""
    return default_session().compare(
        model_a, model_b, budget=budget, tests=tests, engine=engine
    )


def repair(tests, model=None, strategy=None):
    """:meth:`Session.repair` on the default session."""
    return default_session().repair(tests, model=model, strategy=strategy)


def observe(tests, chips=None, model=None, iterations: int = 1_000_000, seed: int = 2014):
    """:meth:`Session.observe` on the default session."""
    return default_session().observe(
        tests, chips=chips, model=model, iterations=iterations, seed=seed
    )


def sweep(tests, model=None, engine=None):
    """:meth:`Session.sweep` on the default session."""
    return default_session().sweep(tests, model=model, engine=engine)


def analyse(programs, max_cycle_length: int = 6):
    """:meth:`Session.analyse` on the default session."""
    return default_session().analyse(programs, max_cycle_length=max_cycle_length)


def verify(items, model=None, backend: str = "axiomatic"):
    """:meth:`Session.verify` on the default session."""
    return default_session().verify(items, model=model, backend=backend)
