"""Directed-graph algorithms over edge sets.

All functions accept a graph either as an iterable of ``(src, dst)``
pairs or as an adjacency mapping ``{node: iterable_of_successors}``.
Nodes may be any hashable objects (in practice :class:`repro.core.events.Event`).

These helpers back the axiom checks of the memory models (acyclicity,
irreflexivity), the enumeration of coherence orders (linear extensions)
and the mole cycle search (elementary cycles, SCCs).
"""

from __future__ import annotations

from collections import defaultdict
from itertools import permutations
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

Node = Hashable
Edge = Tuple[Node, Node]
GraphLike = Union[Iterable[Edge], Mapping[Node, Iterable[Node]]]


def _as_adjacency(graph: GraphLike) -> Dict[Node, Set[Node]]:
    """Normalise *graph* to an adjacency mapping."""
    adj: Dict[Node, Set[Node]] = defaultdict(set)
    if isinstance(graph, Mapping):
        for src, dsts in graph.items():
            adj[src].update(dsts)
            for dst in dsts:
                adj.setdefault(dst, set())
    else:
        for src, dst in graph:
            adj[src].add(dst)
            adj.setdefault(dst, set())
    return adj


def _nodes(adj: Mapping[Node, Set[Node]]) -> Set[Node]:
    nodes: Set[Node] = set(adj.keys())
    for dsts in adj.values():
        nodes.update(dsts)
    return nodes


def is_irreflexive(graph: GraphLike) -> bool:
    """Return True iff no edge relates a node to itself."""
    adj = _as_adjacency(graph)
    return all(src not in dsts for src, dsts in adj.items())


def has_cycle(graph: GraphLike) -> bool:
    """Return True iff the graph contains a (possibly self-loop) cycle."""
    return find_cycle(graph) is not None


def is_acyclic(graph: GraphLike) -> bool:
    """Return True iff the graph contains no cycle."""
    return not has_cycle(graph)


def find_cycle(graph: GraphLike) -> Optional[List[Node]]:
    """Return one cycle as a list of nodes ``[n0, n1, ..., n0]``, or None.

    Uses an iterative colouring DFS, so it copes with deep graphs without
    hitting Python's recursion limit.
    """
    adj = _as_adjacency(graph)
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[Node, int] = {node: WHITE for node in _nodes(adj)}
    parent: Dict[Node, Node] = {}

    for root in list(colour):
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[Node, Iterator[Node]]] = [(root, iter(sorted(adj[root], key=repr)))]
        colour[root] = GREY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if colour[succ] == WHITE:
                    colour[succ] = GREY
                    parent[succ] = node
                    stack.append((succ, iter(sorted(adj[succ], key=repr))))
                    advanced = True
                    break
                if colour[succ] == GREY:
                    # Found a back edge node -> succ: reconstruct the cycle.
                    cycle = [node]
                    cur = node
                    while cur != succ:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    cycle.append(cycle[0])
                    return cycle
            if not advanced:
                colour[node] = BLACK
                stack.pop()
    return None


def transitive_closure(graph: GraphLike) -> FrozenSet[Edge]:
    """Return the transitive closure as a frozenset of edges.

    Implemented as one BFS per source node; adequate for the small event
    graphs of litmus tests (tens of nodes).
    """
    adj = _as_adjacency(graph)
    closure: Set[Edge] = set()
    for src in _nodes(adj):
        seen: Set[Node] = set()
        frontier = list(adj.get(src, ()))
        while frontier:
            nxt = frontier.pop()
            if nxt in seen:
                continue
            seen.add(nxt)
            frontier.extend(adj.get(nxt, ()))
        closure.update((src, dst) for dst in seen)
    return frozenset(closure)


def reflexive_transitive_closure(graph: GraphLike, universe: Iterable[Node] = ()) -> FrozenSet[Edge]:
    """Return the reflexive-transitive closure over the nodes of the graph.

    ``universe`` may supply extra nodes whose reflexive pairs must appear
    even if they have no incident edge.
    """
    adj = _as_adjacency(graph)
    closure = set(transitive_closure(adj))
    nodes = _nodes(adj) | set(universe)
    closure.update((node, node) for node in nodes)
    return frozenset(closure)


def topological_sort(graph: GraphLike, nodes: Iterable[Node] = ()) -> List[Node]:
    """Return one topological order of the graph's nodes.

    Raises ValueError if the graph has a cycle.  ``nodes`` may add
    isolated nodes that must appear in the output.
    """
    adj = _as_adjacency(graph)
    all_nodes = _nodes(adj) | set(nodes)
    indegree: Dict[Node, int] = {node: 0 for node in all_nodes}
    for src, dsts in adj.items():
        for dst in dsts:
            indegree[dst] += 1
    ready = sorted((n for n, d in indegree.items() if d == 0), key=repr)
    order: List[Node] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in sorted(adj.get(node, ()), key=repr):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(all_nodes):
        raise ValueError("graph has a cycle; no topological order exists")
    return order


def linear_extensions(
    nodes: Sequence[Node], constraints: Iterable[Edge]
) -> Iterator[Tuple[Node, ...]]:
    """Yield every total order of *nodes* compatible with *constraints*.

    ``constraints`` is a set of (before, after) pairs.  Used to enumerate
    coherence orders: all total orders of the writes to one location that
    respect already-known ordering constraints.
    """
    nodes = list(nodes)
    must_precede: Dict[Node, Set[Node]] = defaultdict(set)
    relevant = set(nodes)
    for before, after in constraints:
        if before in relevant and after in relevant:
            must_precede[after].add(before)

    if len(nodes) <= 1:
        yield tuple(nodes)
        return

    # Small n in practice (writes per location in a litmus test); a
    # permutation filter with an early feasibility check is plenty.
    def extend(prefix: List[Node], remaining: Set[Node]) -> Iterator[Tuple[Node, ...]]:
        if not remaining:
            yield tuple(prefix)
            return
        placed = set(prefix)
        for node in sorted(remaining, key=repr):
            if must_precede[node] <= placed:
                prefix.append(node)
                remaining.remove(node)
                yield from extend(prefix, remaining)
                remaining.add(node)
                prefix.pop()

    yield from extend([], set(nodes))


def strongly_connected_components(graph: GraphLike) -> List[FrozenSet[Node]]:
    """Return the SCCs of the graph (Tarjan's algorithm, iterative)."""
    adj = _as_adjacency(graph)
    index_counter = [0]
    stack: List[Node] = []
    lowlink: Dict[Node, int] = {}
    index: Dict[Node, int] = {}
    on_stack: Set[Node] = set()
    result: List[FrozenSet[Node]] = []

    def strongconnect(root: Node) -> None:
        work: List[Tuple[Node, Iterator[Node]]] = [(root, iter(sorted(adj[root], key=repr)))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(adj[succ], key=repr))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: Set[Node] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(frozenset(component))

    for node in _nodes(adj):
        if node not in index:
            strongconnect(node)
    return result


def elementary_cycles(graph: GraphLike, max_length: Optional[int] = None) -> List[List[Node]]:
    """Enumerate elementary cycles (Johnson-style DFS within SCCs).

    Returns each cycle as a list of nodes without repeating the first
    node at the end.  ``max_length`` bounds the cycle length (in nodes),
    which keeps the mole search tractable on larger programs.
    """
    adj = _as_adjacency(graph)
    cycles: List[List[Node]] = []

    for component in strongly_connected_components(adj):
        if len(component) == 1:
            node = next(iter(component))
            if node in adj.get(node, ()):
                cycles.append([node])
            continue
        sub = {node: set(adj[node]) & component for node in component}
        order = sorted(component, key=repr)
        position = {node: i for i, node in enumerate(order)}

        for start in order:
            path: List[Node] = [start]
            blocked: Set[Node] = {start}

            def search(node: Node) -> None:
                for succ in sorted(sub[node], key=repr):
                    if position[succ] < position[start]:
                        continue
                    if succ == start:
                        cycles.append(list(path))
                        continue
                    if succ in blocked:
                        continue
                    if max_length is not None and len(path) >= max_length:
                        continue
                    blocked.add(succ)
                    path.append(succ)
                    search(succ)
                    path.pop()
                    blocked.discard(succ)

            search(start)
    return cycles
