"""Bounded, optionally time-limited mappings for long-lived owners.

A short campaign can treat its memo dictionaries as unbounded — the
process ends before they matter.  A long-lived owner (a
:class:`~repro.session.Session` behind the verdict service, serving
traffic for days) cannot: the resolved-model cache, the repair
cycle-signature memo and the context cache all accumulate entries for
test shapes that will never be queried again.  :class:`BoundedTTLCache`
is the one mapping they share: LRU-bounded by entry count, with an
optional *idle* TTL — an entry unused for ``ttl`` seconds is dropped on
the next access or :meth:`purge` — and eviction/expiry traffic counted
into an owner-supplied :class:`~repro.telemetry.CacheStats` (hits and
misses stay the owner's job, so owners that already count traffic do
not double-count).

The cache is a real :class:`~collections.abc.MutableMapping`, so
drivers that snapshot (``dict(cache)``), merge (``cache.update(...)``)
or probe (``cache.get(key)``) a plain-dict memo work unchanged.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from collections.abc import MutableMapping
from typing import Any, Iterator, Optional

__all__ = ["BoundedTTLCache"]


class BoundedTTLCache(MutableMapping):
    """An LRU mapping bounded by entry count and idle time.

    ``max_entries`` bounds the size (``None`` for unbounded); ``ttl``
    is the idle time-to-live in seconds (``None`` for no expiry) — the
    clock of an entry resets on every read or write, so only entries
    nobody touches age out.  ``stats`` (a
    :class:`~repro.telemetry.CacheStats`) receives one ``evict`` per
    entry shed by either bound, and idle-expired entries *additionally*
    receive one ``expire`` — so a long-lived owner's probe can tell
    capacity pressure from idle aging without the eviction aggregate
    changing shape.
    """

    __slots__ = ("max_entries", "ttl", "_entries", "_stats", "_clock")

    def __init__(
        self,
        max_entries: Optional[int] = None,
        ttl: Optional[float] = None,
        stats: Optional[Any] = None,
        clock=time.monotonic,
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError(
                f"max_entries must be positive or None, got {max_entries}"
            )
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self.max_entries = max_entries
        self.ttl = ttl
        self._entries: "OrderedDict[Any, list]" = OrderedDict()
        self._stats = stats
        self._clock = clock

    def _evicted(self, amount: int = 1) -> None:
        if self._stats is not None and amount:
            self._stats.evict(amount)

    def _idled_out(self, amount: int = 1) -> None:
        """An idle-TTL expiry: an eviction, attributed as expiry too."""
        if self._stats is not None and amount:
            self._stats.evict(amount)
            expire = getattr(self._stats, "expire", None)
            if expire is not None:
                expire(amount)

    def _expired(self, stamp: float, now: float) -> bool:
        return self.ttl is not None and now - stamp > self.ttl

    def purge(self) -> int:
        """Drop every idle-expired entry now; returns how many went."""
        if self.ttl is None:
            return 0
        now = self._clock()
        stale = [
            key
            for key, (_, stamp) in self._entries.items()
            if self._expired(stamp, now)
        ]
        for key in stale:
            del self._entries[key]
        self._idled_out(len(stale))
        return len(stale)

    def __getitem__(self, key: Any) -> Any:
        entry = self._entries[key]
        value, stamp = entry
        if self._expired(stamp, self._clock()):
            del self._entries[key]
            self._idled_out()
            raise KeyError(key)
        entry[1] = self._clock()
        self._entries.move_to_end(key)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        self._entries[key] = [value, self._clock()]
        self._entries.move_to_end(key)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evicted()

    def __delitem__(self, key: Any) -> None:
        del self._entries[key]

    def __iter__(self) -> Iterator[Any]:
        self.purge()
        return iter(list(self._entries))

    def __len__(self) -> int:
        self.purge()
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        entry = self._entries.get(key)
        if entry is None:
            return False
        if self._expired(entry[1], self._clock()):
            del self._entries[key]
            self._idled_out()
            return False
        return True

    def clear(self) -> None:
        self._entries.clear()

    def __repr__(self) -> str:
        return (
            f"BoundedTTLCache(entries={len(self._entries)}, "
            f"max_entries={self.max_entries}, ttl={self.ttl})"
        )
