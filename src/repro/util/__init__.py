"""Utility algorithms shared across the library.

The most heavily used pieces are the directed-graph helpers in
:mod:`repro.util.digraph` (cycle detection, transitive closure, linear
extensions) which back the relational axioms of the memory models.
"""

from repro.util.digraph import (
    has_cycle,
    find_cycle,
    is_acyclic,
    is_irreflexive,
    transitive_closure,
    reflexive_transitive_closure,
    topological_sort,
    linear_extensions,
    strongly_connected_components,
)

__all__ = [
    "has_cycle",
    "find_cycle",
    "is_acyclic",
    "is_irreflexive",
    "transitive_closure",
    "reflexive_transitive_closure",
    "topological_sort",
    "linear_extensions",
    "strongly_connected_components",
]
