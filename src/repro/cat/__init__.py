"""The cat model-description language (Sec. 8.3, Fig. 38).

herd's distinguishing feature is that the memory model is not baked into
the simulator: it is a small text file written in a relational language
("cat").  This package provides:

* :mod:`repro.cat.lexer` / :mod:`repro.cat.parser` — the concrete syntax
  (``let``, ``let rec ... and ...``, ``|  &  ;  \\  +  *``, direction
  filters ``RR(..)``/``WW(..)``/..., ``acyclic``/``irreflexive``/``empty``
  checks);
* :mod:`repro.cat.interpreter` — evaluation of a cat model over a
  candidate execution, yielding a model object usable anywhere a built-in
  architecture is (the herd simulator, the hardware campaign, ...);
* :mod:`repro.cat.stdlib` — the models shipped with the library
  (``sc.cat``, ``tso.cat``, ``cpp-ra.cat``, ``power.cat``, ``arm.cat``,
  ``arm-llh.cat``), including the Power model exactly as printed in
  Fig. 38.
"""

from repro.cat.parser import parse_cat
from repro.cat.interpreter import CatModel, load_cat_model
from repro.cat.stdlib import (
    builtin_model_names,
    builtin_model_source,
    clear_model_cache,
    load_builtin_model,
    load_stats,
)

__all__ = [
    "parse_cat",
    "CatModel",
    "load_cat_model",
    "builtin_model_names",
    "builtin_model_source",
    "load_builtin_model",
    "load_stats",
    "clear_model_cache",
]
