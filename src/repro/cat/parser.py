"""Recursive-descent parser for the cat language.

Grammar (in decreasing binding strength)::

    atom     := IDENT | 0 | '(' union ')' | DIR '(' union ')'
    postfix  := atom ('+' | '*' | '?' | '^-1')*
    seqexpr  := postfix (';' postfix)*
    conj     := seqexpr (('&' | '\\') seqexpr)*
    union    := conj ('|' conj)*

    statement := 'let' 'rec'? IDENT '=' union ('and' IDENT '=' union)*
               | ('acyclic' | 'irreflexive' | 'empty') union ('as' IDENT)?

Direction filters are the identifiers ``WW``, ``WR``, ``RW``, ``RR``,
``RM``, ``WM``, ``MR``, ``MW``, ``MM`` applied like functions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cat import ast
from repro.cat.lexer import CatSyntaxError, Token, tokenize

_DIRECTION_FILTERS = {"WW", "WR", "RW", "RR", "RM", "WM", "MR", "MW", "MM"}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers ------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = self.position + offset
        return self.tokens[min(index, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "EOF":
            self.position += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise CatSyntaxError(
                f"line {token.line}: expected {kind}, found {token.kind} ({token.value!r})"
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.peek().kind == "NEWLINE":
            self.advance()

    # -- expressions --------------------------------------------------------------

    def parse_union(self) -> ast.Expr:
        left = self.parse_conj()
        while self.peek().kind == "|":
            self.advance()
            self.skip_newlines()
            right = self.parse_conj()
            left = ast.Union(left, right)
        return left

    def parse_conj(self) -> ast.Expr:
        left = self.parse_seq()
        while self.peek().kind in ("&", "\\"):
            operator = self.advance().kind
            self.skip_newlines()
            right = self.parse_seq()
            left = ast.Intersection(left, right) if operator == "&" else ast.Difference(left, right)
        return left

    def parse_seq(self) -> ast.Expr:
        left = self.parse_postfix()
        while self.peek().kind == ";":
            self.advance()
            self.skip_newlines()
            right = self.parse_postfix()
            left = ast.Sequence(left, right)
        return left

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_atom()
        while True:
            kind = self.peek().kind
            if kind == "+":
                self.advance()
                expr = ast.TransitiveClosure(expr)
            elif kind == "*":
                self.advance()
                expr = ast.ReflexiveTransitiveClosure(expr)
            elif kind == "?":
                self.advance()
                expr = ast.Optional_(expr)
            elif kind == "INVERSE":
                self.advance()
                expr = ast.Inverse(expr)
            else:
                return expr

    def parse_atom(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "ZERO":
            self.advance()
            return ast.EmptyRel()
        if token.kind == "(":
            self.advance()
            self.skip_newlines()
            expr = self.parse_union()
            self.skip_newlines()
            self.expect(")")
            return expr
        if token.kind == "IDENT":
            name = self.advance().value
            if name in _DIRECTION_FILTERS and self.peek().kind == "(":
                self.advance()
                self.skip_newlines()
                operand = self.parse_union()
                self.skip_newlines()
                self.expect(")")
                return ast.DirectionFilter(name[0], name[1], operand)
            return ast.Var(name)
        raise CatSyntaxError(
            f"line {token.line}: unexpected token {token.kind} ({token.value!r})"
        )

    # -- statements ---------------------------------------------------------------

    def parse_let(self) -> ast.Statement:
        self.expect("LET")
        recursive = False
        if self.peek().kind == "REC":
            self.advance()
            recursive = True
        bindings: List[Tuple[str, ast.Expr]] = []
        while True:
            name = self.expect("IDENT").value
            self.expect("=")
            self.skip_newlines()
            expr = self.parse_union()
            bindings.append((name, expr))
            self.skip_newlines()
            if self.peek().kind == "AND":
                self.advance()
                self.skip_newlines()
                continue
            break
        if recursive or len(bindings) > 1:
            return ast.LetRec(tuple(bindings))
        return ast.Let(bindings[0][0], bindings[0][1])

    def parse_check(self) -> ast.Check:
        kind = self.advance().kind.lower()
        expr = self.parse_union()
        name: Optional[str] = None
        if self.peek().kind == "AS":
            self.advance()
            name = self.expect("IDENT").value
        return ast.Check(kind, expr, name)

    def parse_program(self, name: str) -> ast.CatProgram:
        statements: List[ast.Statement] = []
        self.skip_newlines()
        # An optional leading model name (a bare identifier line).
        if (
            self.peek().kind == "IDENT"
            and self.peek(1).kind in ("NEWLINE", "EOF")
            and self.peek().value not in _DIRECTION_FILTERS
        ):
            name = self.advance().value
            self.skip_newlines()
        while self.peek().kind != "EOF":
            token = self.peek()
            if token.kind == "LET":
                statements.append(self.parse_let())
            elif token.kind in ("ACYCLIC", "IRREFLEXIVE", "EMPTY"):
                statements.append(self.parse_check())
            else:
                raise CatSyntaxError(
                    f"line {token.line}: expected a statement, found {token.value!r}"
                )
            self.skip_newlines()
        return ast.CatProgram(name=name, statements=tuple(statements))


def parse_cat(source: str, name: str = "cat-model") -> ast.CatProgram:
    """Parse cat source text into a :class:`~repro.cat.ast.CatProgram`."""
    return _Parser(tokenize(source)).parse_program(name)
