"""Abstract syntax of the cat language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union


class Expr:
    """Base class of relation expressions."""


@dataclass(frozen=True)
class Var(Expr):
    """A named relation (built-in or let-bound)."""

    name: str


@dataclass(frozen=True)
class EmptyRel(Expr):
    """The literal ``0`` — the empty relation."""


@dataclass(frozen=True)
class Union(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Intersection(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Difference(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Sequence(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True)
class TransitiveClosure(Expr):
    operand: Expr


@dataclass(frozen=True)
class ReflexiveTransitiveClosure(Expr):
    operand: Expr


@dataclass(frozen=True)
class Optional_(Expr):
    """``e?`` — reflexive closure."""

    operand: Expr


@dataclass(frozen=True)
class Inverse(Expr):
    """``e^-1``."""

    operand: Expr


@dataclass(frozen=True)
class DirectionFilter(Expr):
    """``WW(e)``, ``RM(e)``, ... restriction of a relation by endpoint directions.

    ``source`` and ``target`` are ``"R"``, ``"W"`` or ``"M"`` (any memory event).
    """

    source: str
    target: str
    operand: Expr


class Statement:
    """Base class of top-level statements."""


@dataclass(frozen=True)
class Let(Statement):
    """``let name = expr`` (non-recursive)."""

    name: str
    expr: Expr


@dataclass(frozen=True)
class LetRec(Statement):
    """``let rec n1 = e1 and n2 = e2 ...`` — mutually recursive definitions."""

    bindings: Tuple[Tuple[str, Expr], ...]


@dataclass(frozen=True)
class Check(Statement):
    """``acyclic e [as name]``, ``irreflexive e [as name]`` or ``empty e [as name]``."""

    kind: str  # "acyclic" | "irreflexive" | "empty"
    expr: Expr
    name: Optional[str] = None


@dataclass(frozen=True)
class CatProgram:
    """A parsed cat model: its (optional) title and its statements."""

    name: str
    statements: Tuple[Statement, ...]

    def checks(self) -> Tuple[Check, ...]:
        return tuple(s for s in self.statements if isinstance(s, Check))
