"""Evaluation of cat models over candidate executions.

A :class:`CatModel` behaves like a built-in :class:`repro.core.model.Model`:
it has a ``name`` and a ``check(execution)`` method returning a
:class:`repro.core.model.CheckResult`, so it can be passed directly to
the herd simulator, the hardware campaign or the verification backend.

The built-in identifiers available to models are the execution relations
of Sec. 4.1 (po, po-loc, rf/rfe/rfi, co/coe/coi, fr/fre/fri, com), the
dependency relations of Sec. 5.2 (addr, data, ctrl, ctrl+isync,
ctrl+isb), the derived rdw and detour relations of Fig. 27/28, the
identity relation ``id`` and one relation per fence mnemonic (sync,
lwsync, eieio, isync, dmb, dsb, dmb.st, dsb.st, isb, mfence).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.cat import ast
from repro.cat.parser import parse_cat
from repro.core.axioms import AxiomViolation
from repro.core.execution import Execution
from repro.core.model import CheckResult
from repro.core.relation import Relation


class CatEvaluationError(ValueError):
    """Raised when a cat model references an unknown relation."""


_FENCE_NAMES = (
    "sync",
    "lwsync",
    "eieio",
    "isync",
    "dmb",
    "dsb",
    "dmb.st",
    "dsb.st",
    "isb",
    "mfence",
)


def builtin_environment(execution: Execution) -> Dict[str, Relation]:
    """The relations every cat model can refer to."""
    env: Dict[str, Relation] = {
        "po": execution.po,
        "po-loc": execution.po_loc,
        "rf": execution.rf,
        "rfe": execution.rfe,
        "rfi": execution.rfi,
        "co": execution.co,
        "coe": execution.coe,
        "coi": execution.coi,
        "fr": execution.fr,
        "fre": execution.fre,
        "fri": execution.fri,
        "com": execution.com,
        "addr": execution.addr,
        "data": execution.data,
        "ctrl": execution.ctrl,
        "ctrl+isync": execution.ctrl_cfence,
        "ctrl+isb": execution.ctrl_cfence,
        "ctrlisync": execution.ctrl_cfence,
        "ctrlisb": execution.ctrl_cfence,
        "rdw": execution.rdw,
        "detour": execution.detour,
        "id": Relation.identity(execution.memory_events),
        "rmw": execution.rmw,
    }
    for fence in _FENCE_NAMES:
        env[fence] = execution.fence(fence)
    return env


class _Evaluator:
    def __init__(self, execution: Execution, environment: Dict[str, Relation]):
        self.execution = execution
        self.environment = environment

    def _direction_set(self, direction: str):
        execution = self.execution
        if direction == "R":
            return execution.reads
        if direction == "W":
            return execution.writes
        return execution.memory_events

    def evaluate(self, expr: ast.Expr) -> Relation:
        execution = self.execution
        if isinstance(expr, ast.EmptyRel):
            return Relation()
        if isinstance(expr, ast.Var):
            if expr.name not in self.environment:
                known = ", ".join(sorted(self.environment))
                raise CatEvaluationError(
                    f"unknown relation {expr.name!r}; known relations: {known}"
                )
            return self.environment[expr.name]
        if isinstance(expr, ast.Union):
            return self.evaluate(expr.left) | self.evaluate(expr.right)
        if isinstance(expr, ast.Intersection):
            return self.evaluate(expr.left) & self.evaluate(expr.right)
        if isinstance(expr, ast.Difference):
            return self.evaluate(expr.left) - self.evaluate(expr.right)
        if isinstance(expr, ast.Sequence):
            return self.evaluate(expr.left).seq(self.evaluate(expr.right))
        if isinstance(expr, ast.TransitiveClosure):
            return self.evaluate(expr.operand).transitive_closure()
        if isinstance(expr, ast.ReflexiveTransitiveClosure):
            return self.evaluate(expr.operand).reflexive_transitive_closure(
                execution.memory_events
            )
        if isinstance(expr, ast.Optional_):
            return self.evaluate(expr.operand).optional(execution.memory_events)
        if isinstance(expr, ast.Inverse):
            return self.evaluate(expr.operand).inverse()
        if isinstance(expr, ast.DirectionFilter):
            operand = self.evaluate(expr.operand)
            return operand.restrict(
                self._direction_set(expr.source), self._direction_set(expr.target)
            )
        raise CatEvaluationError(f"cannot evaluate expression {expr!r}")


class CatModel:
    """A memory model defined by a cat program."""

    def __init__(self, program: ast.CatProgram):
        self.program = program

    @property
    def name(self) -> str:
        return self.program.name

    # -- evaluation ----------------------------------------------------------------

    def relations(self, execution: Execution) -> Dict[str, Relation]:
        """Evaluate every let-bound relation of the model over an execution."""
        environment = builtin_environment(execution)
        evaluator = _Evaluator(execution, environment)
        for statement in self.program.statements:
            if isinstance(statement, ast.Let):
                environment[statement.name] = evaluator.evaluate(statement.expr)
            elif isinstance(statement, ast.LetRec):
                self._evaluate_letrec(statement, evaluator, environment)
        return environment

    @staticmethod
    def _evaluate_letrec(
        statement: ast.LetRec, evaluator: _Evaluator, environment: Dict[str, Relation]
    ) -> None:
        """Least-fixpoint semantics for mutually recursive bindings."""
        for name, _ in statement.bindings:
            environment[name] = Relation()
        while True:
            changed = False
            for name, expr in statement.bindings:
                value = evaluator.evaluate(expr)
                if value != environment[name]:
                    environment[name] = value
                    changed = True
            if not changed:
                return

    def check(self, execution: Execution, stop_at_first: bool = False) -> CheckResult:
        """Check every acyclic/irreflexive/empty requirement of the model."""
        environment = builtin_environment(execution)
        evaluator = _Evaluator(execution, environment)
        violations: List[AxiomViolation] = []

        check_index = 0
        for statement in self.program.statements:
            if isinstance(statement, ast.Let):
                environment[statement.name] = evaluator.evaluate(statement.expr)
                continue
            if isinstance(statement, ast.LetRec):
                self._evaluate_letrec(statement, evaluator, environment)
                continue
            assert isinstance(statement, ast.Check)
            check_index += 1
            label = statement.name or f"{statement.kind}-{check_index}"
            relation = evaluator.evaluate(statement.expr)
            violation: Optional[AxiomViolation] = None
            if statement.kind == "acyclic":
                cycle = relation.find_cycle()
                if cycle is not None:
                    violation = AxiomViolation(label, tuple(cycle))
            elif statement.kind == "irreflexive":
                for src, dst in relation:
                    if src == dst:
                        violation = AxiomViolation(label, (src,))
                        break
            else:  # empty
                if relation:
                    pair = next(iter(relation))
                    violation = AxiomViolation(label, pair)
            if violation is not None:
                violations.append(violation)
                if stop_at_first:
                    return CheckResult(False, tuple(violations))

        return CheckResult(not violations, tuple(violations))

    def allows(self, execution: Execution) -> bool:
        return self.check(execution, stop_at_first=True).allowed

    def __repr__(self) -> str:
        return f"CatModel({self.name})"


def load_cat_model(source: str, name: str = "cat-model") -> CatModel:
    """Parse cat source text into a ready-to-use model."""
    return CatModel(parse_cat(source, name))
