"""Tokeniser for the cat language.

Identifiers may contain letters, digits, ``_``, ``-`` and ``.`` (for
``po-loc``, ``prop-base``, ``dmb.st``...), and the two composite names
``ctrl+isync`` and ``ctrl+isb`` are recognised as single identifiers so
that models can be written exactly as in Fig. 38.

Comments are OCaml-style ``(* ... *)`` (nesting supported) and line
comments starting with ``//`` or ``#``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Tuple


class CatSyntaxError(ValueError):
    """Raised on malformed cat input."""


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int


KEYWORDS = {"let", "rec", "and", "as", "acyclic", "irreflexive", "empty"}

_COMPOSITE_IDENTIFIERS = ("ctrl+isync", "ctrl+isb")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>[ \t\r]+)
  | (?P<newline>\n)
  | (?P<linecomment>(//|\#)[^\n]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.\-]*)
  | (?P<zero>0)
  | (?P<inverse>\^-1)
  | (?P<op>[|&;\\+*?()=])
    """,
    re.VERBOSE,
)


def _strip_block_comments(source: str) -> str:
    """Remove (possibly nested) ``(* ... *)`` comments, preserving newlines."""
    result: List[str] = []
    depth = 0
    index = 0
    while index < len(source):
        two = source[index : index + 2]
        if two == "(*":
            depth += 1
            index += 2
            continue
        if two == "*)" and depth > 0:
            depth -= 1
            index += 2
            continue
        char = source[index]
        if depth == 0:
            result.append(char)
        elif char == "\n":
            result.append("\n")
        index += 1
    if depth != 0:
        raise CatSyntaxError("unterminated (* comment")
    return "".join(result)


def tokenize(source: str) -> List[Token]:
    """Turn cat source text into a token list (newlines become NEWLINE tokens)."""
    source = _strip_block_comments(source)
    tokens: List[Token] = []
    line = 1
    index = 0
    while index < len(source):
        matched_composite = False
        for composite in _COMPOSITE_IDENTIFIERS:
            if source.startswith(composite, index):
                tokens.append(Token("IDENT", composite, line))
                index += len(composite)
                matched_composite = True
                break
        if matched_composite:
            continue

        match = _TOKEN_RE.match(source, index)
        if match is None:
            raise CatSyntaxError(f"line {line}: unexpected character {source[index]!r}")
        index = match.end()
        kind = match.lastgroup
        text = match.group()
        if kind == "ws" or kind == "linecomment":
            continue
        if kind == "newline":
            tokens.append(Token("NEWLINE", "\n", line))
            line += 1
            continue
        if kind == "ident":
            if text in KEYWORDS:
                tokens.append(Token(text.upper(), text, line))
            else:
                tokens.append(Token("IDENT", text, line))
            continue
        if kind == "zero":
            tokens.append(Token("ZERO", text, line))
            continue
        if kind == "inverse":
            tokens.append(Token("INVERSE", text, line))
            continue
        tokens.append(Token(text, text, line))
    tokens.append(Token("EOF", "", line))
    return tokens
