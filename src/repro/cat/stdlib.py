"""The cat models shipped with the library.

``power.cat`` is the model of Fig. 38; the others are the instances of
Fig. 21 and Tab. VII written in the same language.  The test-suite
checks that each file is *verdict-equivalent* to the corresponding
built-in architecture on the paper's named tests.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.cat.interpreter import CatModel, load_cat_model

_MODELS_DIR = os.path.join(os.path.dirname(__file__), "models")

#: cat file name per model name.
_BUILTIN_FILES: Dict[str, str] = {
    "sc": "sc.cat",
    "tso": "tso.cat",
    "cpp-ra": "cpp-ra.cat",
    "power": "power.cat",
    "power-arm": "power-arm.cat",
    "arm": "arm.cat",
    "arm-llh": "arm-llh.cat",
}


def builtin_model_names() -> Tuple[str, ...]:
    """Names of the models shipped as .cat files."""
    return tuple(sorted(_BUILTIN_FILES))


def builtin_model_source(name: str) -> str:
    """The cat source text of a shipped model."""
    if name not in _BUILTIN_FILES:
        known = ", ".join(builtin_model_names())
        raise KeyError(f"unknown cat model {name!r}; known: {known}")
    path = os.path.join(_MODELS_DIR, _BUILTIN_FILES[name])
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def load_builtin_model(name: str) -> CatModel:
    """Load one of the shipped cat models by name."""
    return load_cat_model(builtin_model_source(name), name=name)
