"""The cat models shipped with the library.

``power.cat`` is the model of Fig. 38; the others are the instances of
Fig. 21 and Tab. VII written in the same language.  The test-suite
checks that each file is *verdict-equivalent* to the corresponding
built-in architecture on the paper's named tests.

Loading is memoized: the ``.cat`` file is read and parsed once per
model name, and every :func:`load_builtin_model` call returns a *fresh*
:class:`~repro.cat.interpreter.CatModel` wrapping the cached (frozen)
AST — so repeated loads skip the parser, yet no caller can corrupt the
cache by mutating the model object it was handed.  ``load_stats()``
exposes the hit counters; :func:`clear_model_cache` resets the cache
(useful when a model file is edited in a live process).
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from repro.cat.ast import CatProgram
from repro.cat.interpreter import CatModel
from repro.cat.parser import parse_cat

_MODELS_DIR = os.path.join(os.path.dirname(__file__), "models")

#: cat file name per model name.
_BUILTIN_FILES: Dict[str, str] = {
    "sc": "sc.cat",
    "tso": "tso.cat",
    "cpp-ra": "cpp-ra.cat",
    "power": "power.cat",
    "power-arm": "power-arm.cat",
    "arm": "arm.cat",
    "arm-llh": "arm-llh.cat",
}

#: name -> source text, read once per process.
_SOURCE_CACHE: Dict[str, str] = {}
#: name -> parsed (frozen) program, parsed once per process.
_PROGRAM_CACHE: Dict[str, CatProgram] = {}


def _make_stats():
    from repro.telemetry import CacheStats

    return CacheStats("cat_models", entries=lambda: len(_PROGRAM_CACHE))


#: counters on the unified CacheStats interface (PR 6); ``load_stats``
#: and ``clear_model_cache`` remain as thin backcompat wrappers.
_STATS = _make_stats()


def cache_stats():
    """The parsed-model cache's :class:`repro.telemetry.CacheStats`."""
    return _STATS


def builtin_model_names() -> Tuple[str, ...]:
    """Names of the models shipped as .cat files."""
    return tuple(sorted(_BUILTIN_FILES))


def builtin_model_source(name: str) -> str:
    """The cat source text of a shipped model (read once, then cached)."""
    if name not in _BUILTIN_FILES:
        known = ", ".join(builtin_model_names())
        raise KeyError(f"unknown cat model {name!r}; known: {known}")
    source = _SOURCE_CACHE.get(name)
    if source is None:
        path = os.path.join(_MODELS_DIR, _BUILTIN_FILES[name])
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        _SOURCE_CACHE[name] = source
    return source


def load_builtin_model(name: str) -> CatModel:
    """Load one of the shipped cat models by name.

    The underlying program is parsed once per process and shared —
    :class:`~repro.cat.ast.CatProgram` and every AST node are frozen
    dataclasses, so sharing is safe.  The returned :class:`CatModel`
    wrapper is a fresh object on every call: rebinding its attributes
    cannot affect later loads.
    """
    program = _PROGRAM_CACHE.get(name)
    if program is None:
        source = builtin_model_source(name)  # validates the name first
        _STATS.miss()
        program = parse_cat(source, name)
        _PROGRAM_CACHE[name] = program
    else:
        _STATS.hit()
    return CatModel(program)


def load_stats() -> Dict[str, int]:
    """Backcompat probe: the parsed-model cache counters as a dict.

    The same numbers live on the unified interface as
    ``cache_stats().as_dict()``."""
    return {
        "hits": _STATS.hits,
        "misses": _STATS.misses,
        "entries": len(_PROGRAM_CACHE),
    }


def clear_model_cache() -> None:
    """Drop the cached sources and parsed programs (and the counters)."""
    _SOURCE_CACHE.clear()
    _PROGRAM_CACHE.clear()
    _STATS.reset()
