"""repro — a reproduction of "Herding cats: modelling, simulation, testing,
and data-mining for weak memory" (Alglave, Maranget, Tautschnig, 2014).

The package is organised around the paper's artefacts:

* :mod:`repro.core` — the generic axiomatic framework (events, relations,
  candidate executions, the four axioms) and its SC / TSO / C++ R-A /
  Power / ARM instances;
* :mod:`repro.cat` — the cat model-description language and its interpreter;
* :mod:`repro.litmus` — the pseudo-ISA, instruction semantics, litmus
  format parser and the paper's named tests;
* :mod:`repro.herd` — the herd simulator;
* :mod:`repro.diy` — litmus test generation from cycles of relaxations;
* :mod:`repro.operational` — the intermediate machine of Sec. 7 and the
  PLDI-2011 comparison machine;
* :mod:`repro.multi_event` — the multi-event axiomatic model used as a
  simulation-speed baseline;
* :mod:`repro.hardware` — simulated Power and ARM chips with documented
  errata, and the litmus testing campaign harness;
* :mod:`repro.verification` — a bounded model-checking substrate for
  concurrent C-like programs under weak memory models;
* :mod:`repro.mole` — the static critical-cycle analyser and its corpus;
* :mod:`repro.fences` — automatic fence synthesis and repair: critical
  cycles of an abstract event graph, greedy min-cut placement with
  per-architecture cost tables, validated against the herd simulator.

Quick start::

    from repro.litmus.registry import get_test
    from repro.herd import simulate

    result = simulate(get_test("mp+lwsync+addr"), "power")
    print(result.verdict)        # "Forbid"
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
