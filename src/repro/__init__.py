"""repro — a reproduction of "Herding cats: modelling, simulation, testing,
and data-mining for weak memory" (Alglave, Maranget, Tautschnig, 2014).

The package is organised around the paper's artefacts:

* :mod:`repro.core` — the generic axiomatic framework (events, relations,
  candidate executions, the four axioms) and its SC / TSO / C++ R-A /
  Power / ARM instances;
* :mod:`repro.cat` — the cat model-description language and its interpreter;
* :mod:`repro.litmus` — the pseudo-ISA, instruction semantics, litmus
  format parser and the paper's named tests;
* :mod:`repro.herd` — the herd simulator;
* :mod:`repro.diy` — litmus test generation from cycles of relaxations;
* :mod:`repro.operational` — the intermediate machine of Sec. 7 and the
  PLDI-2011 comparison machine;
* :mod:`repro.multi_event` — the multi-event axiomatic model used as a
  simulation-speed baseline;
* :mod:`repro.hardware` — simulated Power and ARM chips with documented
  errata, and the litmus testing campaign harness;
* :mod:`repro.verification` — a bounded model-checking substrate for
  concurrent C-like programs under weak memory models;
* :mod:`repro.mole` — the static critical-cycle analyser and its corpus;
* :mod:`repro.fences` — automatic fence synthesis and repair: critical
  cycles of an abstract event graph, greedy min-cut placement with
  per-architecture cost tables, validated against the herd simulator;
* :mod:`repro.campaign` — the shared batch runtime: process sharding,
  per-test simulation contexts, persistent worker pools;
* :mod:`repro.telemetry` — observability: counters, gauges, histogram
  timers, structured spans and unified cache statistics, aggregated
  across campaign worker processes;
* :mod:`repro.session` — the one front door: a stateful
  :class:`~repro.session.Session` owning models, caches, pools and
  defaults for every driver.

Quick start::

    from repro import Session
    from repro.litmus.registry import get_test

    with Session(model="power") as session:
        print(session.verdict(get_test("mp+lwsync+addr")))   # "Forbid"
        print(session.repair(get_test("mp")).describe())     # lwsync+addr

The module-level verbs (``from repro import simulate, repair, ...``)
run on a process-wide default session.  Everything here is re-exported
lazily — importing :mod:`repro` does not import any driver until a name
is first used.
"""

from importlib import import_module

__version__ = "1.0.0"

#: public name -> defining module, resolved lazily on first attribute
#: access so that ``import repro`` stays free of driver import cost.
_EXPORTS = {
    # the session façade
    "Session": "repro.session",
    "default_session": "repro.session",
    "simulate": "repro.session",
    "verdict": "repro.session",
    "repair": "repro.session",
    "observe": "repro.session",
    "sweep": "repro.session",
    "analyse": "repro.session",
    "verify": "repro.session",
    # model comparison (see repro.compare; the verb lives on Session —
    # a root-level "compare" would shadow the submodule attribute)
    "compare_models": "repro.compare",
    "ComparisonReport": "repro.compare",
    "CorpusBudget": "repro.compare",
    # the uniform result protocol
    "Report": "repro.report",
    # observability (see repro.telemetry)
    "Metrics": "repro.telemetry",
    "MetricsSnapshot": "repro.telemetry",
    "CacheStats": "repro.telemetry",
    # the shared campaign runtime
    "CampaignPool": "repro.campaign",
    "ContextCache": "repro.campaign",
    # the vocabulary the verbs speak
    "LitmusTest": "repro.litmus.ast",
    "TestBuilder": "repro.litmus.ast",
    "get_test": "repro.litmus.registry",
    "all_tests": "repro.litmus.registry",
    "Simulator": "repro.herd.simulator",
    "SimulationResult": "repro.herd.simulator",
    "resolve_model": "repro.herd.simulator",
    "load_builtin_model": "repro.cat.stdlib",
}

__all__ = ["__version__", *sorted(_EXPORTS)]


def __getattr__(name: str):
    """Lazy re-exports: resolve a public name from its home module on
    first use and cache it in the package namespace."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
