"""Empirical equivalence of the axiomatic model and the intermediate machine.

Theorem 7.1 states that the two formulations accept exactly the same
candidate executions.  The paper proves it in Coq; here the statement is
checked exhaustively over the bounded universe of executions that the
experiments use: for every candidate execution of every test supplied,
the axiomatic verdict and the machine verdict must coincide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.core.architectures import power_architecture
from repro.core.model import Architecture, Model
from repro.herd.enumerate import candidate_executions
from repro.litmus.ast import LitmusTest
from repro.operational.intermediate import IntermediateMachine


@dataclass
class EquivalenceReport:
    """Outcome of comparing the two formulations over a set of tests."""

    architecture: str
    tests_checked: int = 0
    executions_checked: int = 0
    disagreements: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.disagreements

    def describe(self) -> str:
        status = "equivalent" if self.equivalent else "NOT equivalent"
        return (
            f"axiomatic vs intermediate machine ({self.architecture}): {status} on "
            f"{self.executions_checked} executions from {self.tests_checked} tests"
            + (f"; {len(self.disagreements)} disagreements" if self.disagreements else "")
        )


def check_equivalence(
    tests: Iterable[LitmusTest],
    architecture: Optional[Architecture] = None,
    max_executions_per_test: Optional[int] = None,
) -> EquivalenceReport:
    """Check Thm. 7.1 empirically over the given tests."""
    architecture = architecture if architecture is not None else power_architecture()
    model = Model(architecture)
    machine = IntermediateMachine(architecture)
    report = EquivalenceReport(architecture=architecture.name)

    for test in tests:
        report.tests_checked += 1
        for index, candidate in enumerate(candidate_executions(test)):
            if max_executions_per_test is not None and index >= max_executions_per_test:
                break
            report.executions_checked += 1
            axiomatic = model.allows(candidate.execution)
            operational = machine.accepts(candidate.execution)
            if axiomatic != operational:
                report.disagreements.append(
                    (test.name, f"axiomatic={axiomatic}, machine={operational}")
                )
    return report
