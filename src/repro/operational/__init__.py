"""Operational models (Sec. 7).

* :mod:`repro.operational.intermediate` — the intermediate machine of
  Fig. 30, a transition system over commit-write / write-reaches-
  coherence-point / satisfy-read / commit-read labels, equivalent to the
  axiomatic model (Thm. 7.1);
* :mod:`repro.operational.pldi` — the machine specialised with the
  stronger PLDI-2011 ordering choices, standing in for ppcmem in the
  model-comparison experiments;
* :mod:`repro.operational.equivalence` — the empirical equivalence
  harness used by the tests and by the Thm. 7.1 benchmark.
"""

from repro.operational.intermediate import IntermediateMachine, OperationalSimulator
from repro.operational.pldi import pldi_machine, pldi_operational_simulator
from repro.operational.equivalence import EquivalenceReport, check_equivalence

__all__ = [
    "IntermediateMachine",
    "OperationalSimulator",
    "pldi_machine",
    "pldi_operational_simulator",
    "EquivalenceReport",
    "check_equivalence",
]
