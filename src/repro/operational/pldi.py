"""The PLDI-2011-style operational comparator (ppcmem stand-in).

The paper compares its model against the operational model of Sarkar et
al. (PLDI 2011), implemented by the ppcmem tool.  We reproduce the
documented *differences* rather than the full machine (see DESIGN.md):

* it forbids ``mp+lwsync+addr-po-detour`` — a behaviour observed on
  Power hardware (Fig. 36, Tab. I), i.e. it is experimentally flawed;
* it forbids the ARM ``fri-rfi`` early-commit behaviours (Fig. 32);
* elsewhere it agrees with this paper's Power model on the test families
  used here.

Both an axiomatic form (``pldi2011`` in
:mod:`repro.core.architectures`) and an operational form (the
intermediate machine instantiated with the stronger architecture) are
provided; the latter also reproduces ppcmem's cost profile — the
explicit-state search is orders of magnitude slower than herd-style
axiomatic checking (Tab. IX).
"""

from __future__ import annotations

from repro.core.architectures import pldi2011_architecture
from repro.operational.intermediate import IntermediateMachine, OperationalSimulator


def pldi_machine() -> IntermediateMachine:
    """The intermediate machine with the PLDI-2011 ordering choices."""
    return IntermediateMachine(pldi2011_architecture())


def pldi_operational_simulator() -> OperationalSimulator:
    """An operational simulator standing in for ppcmem."""
    return OperationalSimulator(pldi2011_architecture())
