"""The intermediate machine of Sec. 7 (Fig. 30).

The machine reformulates the axiomatic model as a transition system.
Its labels are

* ``c(w)``  — commit write,
* ``cp(w)`` — write reaches coherence point,
* ``s(w,r)``— satisfy read (from the write ``w`` it reads),
* ``c(w,r)``— commit read,

and its state is ``(cw, cpw, sr, cr)``: the committed writes, the writes
having reached coherence point, the satisfied reads and the committed
reads.

Given a candidate execution (which fixes ``rf`` and ``co``), the machine
*accepts* the execution when some interleaving of all its labels fires
without ever blocking on a premise of Fig. 30.  Theorem 7.1 states that
acceptance coincides with validity in the axiomatic model; the
test-suite and ``benchmarks/bench_thm71_equivalence.py`` check this
empirically on the paper's tests and on generated families.

The machine also handles the coRR-strengthening discussed at the end of
Sec. 7.1: the commit-read rule records which write each read took its
value from, so that the coRR pattern is rejected exactly as in the
axiomatic model.

Two presentation details differ from the figure: the initial writes
start out committed and at their coherence point; and the
commit-write/satisfy-read rules additionally require the processing
order to linearise the propagation order — the figure obtains the same
effect for full fences through the interplay of its premises with the
per-thread propagation steps of the underlying storage subsystem,
which this abstraction does not model explicitly.

The set-valued state components are bitmasks over the execution's
interned event ids (:class:`~repro.core.bitrel.EventIndex`) and the
coherence-point component stays the figure's total order (a tuple of
ids): each premise of Fig. 30 is one AND against a precomputed
per-event row.  This is still — deliberately — the "operational" cost
model that Tab. IX compares against axiomatic simulation: an
explicit-state search over the interleavings, paying per state and per
coherence-point linearisation, not per axiom.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.architectures import power_architecture
from repro.core.bitrel import EventIndex, iter_bits, rows_seq
from repro.core.execution import Execution
from repro.core.model import Architecture
from repro.core.relation import Relation
from repro.herd.enumerate import candidate_executions
from repro.litmus.ast import LitmusTest


class IntermediateMachine:
    """The intermediate machine, parameterised by an architecture."""

    def __init__(self, architecture: Optional[Architecture] = None):
        self.architecture = architecture if architecture is not None else power_architecture()

    @property
    def name(self) -> str:
        return f"intermediate({self.architecture.name})"

    # -- acceptance ----------------------------------------------------------------

    def accepts(self, execution: Execution) -> bool:
        """Is there an accepting interleaving of the execution's labels?"""
        index = execution.po._index
        if index is None or any(
            event not in index.ids for event in execution.events
        ):
            index = EventIndex(execution.events)

        def rows_of(relation: Relation) -> List[int]:
            rows = relation._rows_in(index)
            assert rows is not None, "execution relation escapes its event universe"
            return list(rows)

        relations = self.architecture.relations(execution)
        ppo = relations["ppo"]
        fences = rows_of(relations["fences"])
        prop = rows_of(relations["prop"])
        hb_star = relations["hb"].reflexive_transitive_closure(
            execution.memory_events
        )
        prop_hb_star = rows_seq(prop, rows_of(hb_star))
        ppo_fences = [a | b for a, b in zip(rows_of(ppo), fences)]
        po_loc = rows_of(execution.po_loc)
        co = rows_of(execution.co)
        n = index.n

        # Inverse rows needed by the CPW and SR premises.
        co_pred = [0] * n
        for i, row in enumerate(co):
            bit = 1 << i
            for j in iter_bits(row):
                co_pred[j] |= bit
        phs_pred = [0] * n
        for i, row in enumerate(prop_hb_star):
            bit = 1 << i
            for j in iter_bits(row):
                phs_pred[j] |= bit

        writes_mask = index.writes_mask
        reads_mask = index.reads_mask
        init_mask = index.init_mask & writes_mask
        program_write_ids = list(iter_bits(writes_mask & ~init_mask))
        read_ids = list(iter_bits(reads_mask))

        rf_source: Dict[int, int] = {}
        for write, read in execution.rf:
            rf_source[index.ids[read]] = index.ids[write]

        # CR premises that do not depend on the machine state:
        # visibility of each read's (fixed) rf source, and the coRR
        # conflict mask over other committed reads.
        visible_source = {
            read_id: self._visible_ids(
                index, po_loc, co, rf_source[read_id], read_id
            )
            for read_id in read_ids
            if read_id in rf_source
        }
        conflict = [0] * n
        for read_id in read_ids:
            source = rf_source.get(read_id)
            if source is None:
                continue
            mask = 0
            for other_id in read_ids:
                if other_id == read_id:
                    continue
                other_source = rf_source.get(other_id)
                if other_source is None:
                    continue
                if po_loc[other_id] >> read_id & 1 and co[source] >> other_source & 1:
                    mask |= 1 << other_id
                elif po_loc[read_id] >> other_id & 1 and co[other_source] >> source & 1:
                    mask |= 1 << other_id
            conflict[read_id] = mask

        init_ids = tuple(iter_bits(init_mask))
        initial = (init_mask, init_ids, 0, 0)
        final_cw = writes_mask
        final_cpw_len = writes_mask.bit_count()

        seen: Set[Tuple[int, Tuple[int, ...], int, int]] = set()
        stack: List[Tuple[int, Tuple[int, ...], int, int]] = [initial]

        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)
            cw, cpw, sr, cr = state
            if (
                cw == final_cw
                and len(cpw) == final_cpw_len
                and sr == reads_mask
                and cr == reads_mask
            ):
                return True
            cpw_mask = 0
            for w in cpw:
                cpw_mask |= 1 << w

            # COMMIT WRITE
            for w in program_write_ids:
                if cw >> w & 1:
                    continue
                if po_loc[w] & cw:
                    continue  # CW: SC PER LOCATION / coWW
                if prop[w] & (cw | sr):
                    continue  # CW: PROPAGATION (vs committed and satisfied)
                if fences[w] & sr:
                    continue  # CW: fences ∩ WR
                stack.append((cw | 1 << w, cpw, sr, cr))

            # WRITE REACHES COHERENCE POINT
            for w in program_write_ids:
                if cpw_mask >> w & 1 or not cw >> w & 1:
                    continue
                if po_loc[w] & cpw_mask:
                    continue  # CPW: po-loc and cpw in accord
                if prop[w] & cpw_mask:
                    continue  # CPW: PROPAGATION
                if co_pred[w] & ~cpw_mask:
                    continue  # CPW: all co-predecessors at their point
                stack.append((cw, cpw + (w,), sr, cr))

            # SATISFY READ
            for r in read_ids:
                if sr >> r & 1:
                    continue
                source = rf_source.get(r)
                if source is None:
                    continue
                local = po_loc[source] >> r & 1
                if not local and not cw >> source & 1:
                    continue  # SR: write is either local or committed
                if ppo_fences[r] & sr:
                    continue  # SR: PPO / ii0 ∩ RR
                if co[source] & phs_pred[r]:
                    continue  # SR: OBSERVATION
                if prop[r] & (sr | cw):
                    continue  # SR: PROPAGATION (strong cumulativity)
                stack.append((cw, cpw, sr | 1 << r, cr))

            # COMMIT READ
            for r in read_ids:
                if cr >> r & 1 or not sr >> r & 1:
                    continue
                if not visible_source.get(r, False):
                    continue  # CR: SC PER LOCATION / coWR, coRW, coRR
                if ppo_fences[r] & (cw | sr):
                    continue  # CR: PPO / cc0 ∩ RW and (ci0 ∪ cc0) ∩ RR
                if conflict[r] & cr:
                    continue  # coRR strengthening
                stack.append((cw, cpw, sr, cr | 1 << r))

        return False

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _visible_ids(
        index: EventIndex,
        po_loc: List[int],
        co: List[int],
        write: int,
        read: int,
    ) -> bool:
        """The visibility condition of the COMMIT READ rule (Sec. 7.1.2)."""
        location = index.events[read].location
        if index.events[write].location != location:
            return False
        same_location_writes = (
            index.location_masks.get(location, 0) & index.writes_mask
        )

        # wb: the last write to the location po-loc-before the read.
        before = [
            w for w in iter_bits(same_location_writes) if po_loc[w] >> read & 1
        ]
        wb = None
        for candidate in before:
            if all(
                other == candidate or po_loc[other] >> candidate & 1
                for other in before
            ):
                wb = candidate
        # wa: the first write to the location po-loc-after the read.
        after = [
            w for w in iter_bits(same_location_writes) if po_loc[read] >> w & 1
        ]
        wa = None
        for candidate in after:
            if all(
                other == candidate or po_loc[candidate] >> other & 1
                for other in after
            ):
                wa = candidate

        if wb is not None and write != wb and co[write] >> wb & 1:
            return False  # write is co-before the last local write before the read
        if wa is not None:
            if write == wa or co[wa] >> write & 1:
                return False  # write equal to or co-after the first local write after
        return True


class OperationalSimulator:
    """Litmus-test simulation through the intermediate machine.

    This is the "operational" engine of the Tab. IX comparison: it
    enumerates candidate executions exactly like herd, but decides each
    one by searching for an accepting machine interleaving instead of
    checking the axioms.  Unlike the axiomatic engines it does *not*
    ride the pruning enumerator: the tool it stands in for has no
    axiomatic uniproc check to prune with — every candidate's
    interleavings are explored until the machine blocks (Thm. 7.1
    guarantees the blocked searches are exactly the candidates the
    axioms reject).
    """

    def __init__(self, architecture: Optional[Architecture] = None):
        self.machine = IntermediateMachine(architecture)

    @property
    def name(self) -> str:
        return f"operational({self.machine.architecture.name})"

    def allowed_outcomes(self, test: LitmusTest) -> FrozenSet:
        outcomes = set()
        for candidate in candidate_executions(test):
            if self.machine.accepts(candidate.execution):
                outcomes.add(candidate.outcome(test))
        return frozenset(outcomes)

    def verdict(self, test: LitmusTest) -> str:
        """Allow/Forbid verdict for the test's target outcome."""
        assert test.condition is not None, "litmus tests carry a final condition"
        for candidate in candidate_executions(test):
            if not self.machine.accepts(candidate.execution):
                continue
            outcome = dict(candidate.outcome(test))
            matches = all(
                outcome.get(
                    f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
                )
                == atom.value
                for atom in test.condition.atoms
            )
            if matches:
                return "Allow"
        return "Forbid"
