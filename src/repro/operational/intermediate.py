"""The intermediate machine of Sec. 7 (Fig. 30).

The machine reformulates the axiomatic model as a transition system.
Its labels are

* ``c(w)``  — commit write,
* ``cp(w)`` — write reaches coherence point,
* ``s(w,r)``— satisfy read (from the write ``w`` it reads),
* ``c(w,r)``— commit read,

and its state is ``(cw, cpw, sr, cr)``: the committed writes, the writes
having reached coherence point (a list, i.e. a total order), the
satisfied reads and the committed reads.

Given a candidate execution (which fixes ``rf`` and ``co``), the machine
*accepts* the execution when some interleaving of all its labels fires
without ever blocking on a premise of Fig. 30.  Theorem 7.1 states that
acceptance coincides with validity in the axiomatic model; the
test-suite and ``benchmarks/bench_thm71_equivalence.py`` check this
empirically on the paper's tests and on generated families.

The machine also handles the coRR-strengthening discussed at the end of
Sec. 7.1: the commit-read rule records which write each read took its
value from, so that the coRR pattern is rejected exactly as in the
axiomatic model.

Two presentation details differ from the figure (both documented in
DESIGN.md): the initial writes start out committed and at their
coherence point, and the commit-write/satisfy-read rules additionally
require the processing order to linearise the propagation order — the
figure obtains the same effect for full fences through the interplay of
its premises with the per-thread propagation steps of the underlying
storage subsystem, which this abstraction does not model explicitly.
The equivalence with the axiomatic model (Thm. 7.1) is validated
empirically by ``tests/test_operational.py`` and
``benchmarks/bench_thm71_equivalence.py``.

The search for an accepting interleaving is an explicit-state DFS with
memoisation on visited states — deliberately the "operational" cost
model that Tab. IX compares against axiomatic simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.architectures import power_architecture
from repro.core.execution import Execution
from repro.core.model import Architecture
from repro.core.relation import Relation
from repro.herd.enumerate import candidate_executions
from repro.litmus.ast import LitmusTest


@dataclass(frozen=True)
class _MachineState:
    committed_writes: FrozenSet
    coherence_point: Tuple  # ordered tuple of writes
    satisfied_reads: FrozenSet
    committed_reads: FrozenSet


class IntermediateMachine:
    """The intermediate machine, parameterised by an architecture."""

    def __init__(self, architecture: Optional[Architecture] = None):
        self.architecture = architecture if architecture is not None else power_architecture()

    @property
    def name(self) -> str:
        return f"intermediate({self.architecture.name})"

    # -- acceptance ----------------------------------------------------------------

    def accepts(self, execution: Execution) -> bool:
        """Is there an accepting interleaving of the execution's labels?"""
        relations = self.architecture.relations(execution)
        ppo = relations["ppo"]
        fences = relations["fences"]
        prop = relations["prop"]
        hb = relations["hb"]
        hb_star = hb.reflexive_transitive_closure(execution.memory_events)
        prop_hb_star = prop.seq(hb_star)
        ppo_fences = ppo | fences
        po_loc = execution.po_loc
        co = execution.co
        rf_source: Dict = {read: write for write, read in execution.rf}

        writes = sorted(execution.writes)
        reads = sorted(execution.reads)
        # The initial writes are considered committed and at their coherence
        # point from the start; they carry no labels.
        init_writes = tuple(sorted(execution.init_writes))
        program_writes = [w for w in writes if not w.is_init()]

        visible_cache: Dict = {}

        def visible(write, read) -> bool:
            key = (write, read)
            if key in visible_cache:
                return visible_cache[key]
            result = self._visible(execution, write, read)
            visible_cache[key] = result
            return result

        initial = _MachineState(
            committed_writes=frozenset(init_writes),
            coherence_point=init_writes,
            satisfied_reads=frozenset(),
            committed_reads=frozenset(),
        )
        target_writes = frozenset(init_writes) | frozenset(program_writes)
        total_cp = len(init_writes) + len(program_writes)

        seen: Set[_MachineState] = set()
        stack: List[_MachineState] = [initial]

        while stack:
            state = stack.pop()
            if state in seen:
                continue
            seen.add(state)

            if (
                state.committed_writes == target_writes
                and len(state.coherence_point) == total_cp
                and state.satisfied_reads == frozenset(reads)
                and state.committed_reads == frozenset(reads)
            ):
                return True

            cw = state.committed_writes
            cpw = state.coherence_point
            cpw_set = set(cpw)
            sr = state.satisfied_reads
            cr = state.committed_reads

            # COMMIT WRITE
            for write in program_writes:
                if write in cw:
                    continue
                if any((write, other) in po_loc for other in cw):
                    continue  # CW: SC PER LOCATION / coWW
                if any((write, other) in prop for other in cw):
                    continue  # CW: PROPAGATION
                if any((write, read) in fences for read in sr):
                    continue  # CW: fences ∩ WR
                if any((write, read) in prop for read in sr):
                    continue  # CW: PROPAGATION vs satisfied reads (strong fences)
                stack.append(
                    _MachineState(cw | {write}, cpw, sr, cr)
                )

            # WRITE REACHES COHERENCE POINT
            for write in program_writes:
                if write in cpw_set or write not in cw:
                    continue
                if any((write, other) in po_loc for other in cpw_set):
                    continue  # CPW: po-loc and cpw in accord
                if any((write, other) in prop for other in cpw_set):
                    continue  # CPW: PROPAGATION
                # Keep the coherence-point order compatible with the given co:
                # all co-predecessors must have reached their point already.
                if any(
                    (other, write) in co and other not in cpw_set
                    for other in writes
                    if other.location == write.location and other != write
                ):
                    continue
                stack.append(
                    _MachineState(cw, cpw + (write,), sr, cr)
                )

            # SATISFY READ
            for read in reads:
                if read in sr:
                    continue
                source = rf_source.get(read)
                if source is None:
                    continue
                local = (source, read) in po_loc
                if not local and source not in cw:
                    continue  # SR: write is either local or committed
                if any((read, other) in ppo_fences for other in sr):
                    continue  # SR: PPO / ii0 ∩ RR
                if any(
                    (source, other) in co and (other, read) in prop_hb_star
                    for other in writes
                ):
                    continue  # SR: OBSERVATION
                if any((read, other) in prop for other in sr) or any(
                    (read, other) in prop for other in cw
                ):
                    continue  # SR: PROPAGATION (strong cumulativity of full fences)
                stack.append(
                    _MachineState(cw, cpw, sr | {read}, cr)
                )

            # COMMIT READ
            for read in reads:
                if read in cr or read not in sr:
                    continue
                source = rf_source.get(read)
                if source is None or not visible(source, read):
                    continue  # CR: SC PER LOCATION / coWR, coRW, coRR
                if any((read, other) in ppo_fences for other in cw):
                    continue  # CR: PPO / cc0 ∩ RW
                if any((read, other) in ppo_fences for other in sr):
                    continue  # CR: PPO / (ci0 ∪ cc0) ∩ RR
                # coRR strengthening: same-location po-related reads must not
                # observe writes in an order contradicting the coherence order.
                conflict = False
                for other in cr:
                    other_source = rf_source.get(other)
                    if other_source is None:
                        continue
                    if (other, read) in po_loc and (source, other_source) in co:
                        conflict = True
                        break
                    if (read, other) in po_loc and (other_source, source) in co:
                        conflict = True
                        break
                if conflict:
                    continue
                stack.append(
                    _MachineState(cw, cpw, sr, cr | {read})
                )

        return False

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _visible(execution: Execution, write, read) -> bool:
        """The visibility condition of the COMMIT READ rule (Sec. 7.1.2)."""
        if write.location != read.location:
            return False
        po_loc = execution.po_loc
        co = execution.co
        same_location_writes = [
            w for w in execution.writes if w.location == read.location
        ]

        # wb: the last write to the location po-loc-before the read.
        before = [w for w in same_location_writes if (w, read) in po_loc]
        wb = None
        for candidate in before:
            if all(other is candidate or (other, candidate) in po_loc for other in before):
                wb = candidate
        # wa: the first write to the location po-loc-after the read.
        after = [w for w in same_location_writes if (read, w) in po_loc]
        wa = None
        for candidate in after:
            if all(other is candidate or (candidate, other) in po_loc for other in after):
                wa = candidate

        if wb is not None and write != wb and (write, wb) in co:
            return False  # write is co-before the last local write before the read
        if wa is not None:
            if write == wa or (wa, write) in co:
                return False  # write is equal to or co-after the first local write after
        return True


class OperationalSimulator:
    """Litmus-test simulation through the intermediate machine.

    This is the "operational" engine of the Tab. IX comparison: it
    enumerates candidate executions exactly like herd, but decides each
    one by searching for an accepting machine interleaving instead of
    checking the axioms.
    """

    def __init__(self, architecture: Optional[Architecture] = None):
        self.machine = IntermediateMachine(architecture)

    @property
    def name(self) -> str:
        return f"operational({self.machine.architecture.name})"

    def allowed_outcomes(self, test: LitmusTest) -> FrozenSet:
        outcomes = set()
        for candidate in candidate_executions(test):
            if self.machine.accepts(candidate.execution):
                outcomes.add(candidate.outcome(test))
        return frozenset(outcomes)

    def verdict(self, test: LitmusTest) -> str:
        """Allow/Forbid verdict for the test's target outcome."""
        assert test.condition is not None, "litmus tests carry a final condition"
        for candidate in candidate_executions(test):
            if not self.machine.accepts(candidate.execution):
                continue
            outcome = dict(candidate.outcome(test))
            matches = all(
                outcome.get(
                    f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
                )
                == atom.value
                for atom in test.condition.atoms
            )
            if matches:
                return "Allow"
        return "Forbid"
