"""The circuit breaker between pooled execution and degraded serial mode.

The supervised pool already *survives* worker deaths, hangs and poison
items — but surviving is not free: every incident costs a respawn, a
retry round, or a bisection.  When incidents spike (a poisoned corpus, a
machine under memory pressure killing workers faster than they respawn),
continuing to shard over the pool burns the whole budget on supervision.
The breaker watches the incident *rate* and, past a threshold, routes
execution to the in-process serial path: slower per item, but with no
processes to die.  After a probe interval it half-opens — one batch is
sent back to the pool as a probe; a clean probe closes the breaker, an
incident re-opens it.

States follow the classic automaton: ``closed`` (pooled execution,
counting incidents), ``open`` (serial execution, waiting out the probe
interval), ``half-open`` (one pooled probe in flight).  The breaker is
fed from the supervisor counters the campaign layer already keeps — it
adds no new instrumentation to the hot path.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Dict, Optional

from repro import telemetry as _telemetry

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trip to degraded serial mode when supervisor incidents spike.

    ``threshold`` incidents within the sliding ``window`` (seconds) trip
    the breaker open; while open, :meth:`allow_pooled` returns ``False``
    until ``probe_interval`` seconds have passed, then lets exactly one
    batch through as a half-open probe.  The owner reports the probe's
    outcome via :meth:`record_probe`.  Not thread-safe — the service
    drives it from its event loop only.
    """

    def __init__(
        self,
        threshold: int = 4,
        window: float = 30.0,
        probe_interval: float = 5.0,
        clock=time.monotonic,
    ):
        if threshold < 1:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold
        self.window = window
        self.probe_interval = probe_interval
        self.state = CLOSED
        self.trips = 0
        self._clock = clock
        self._incidents: deque = deque()  # (monotonic stamp, count)
        self._opened_at: Optional[float] = None

    # -- incident accounting ------------------------------------------------------

    def _prune(self, now: float) -> None:
        while self._incidents and now - self._incidents[0][0] > self.window:
            self._incidents.popleft()

    def recent_incidents(self) -> int:
        """Incidents inside the sliding window right now."""
        self._prune(self._clock())
        return sum(count for _, count in self._incidents)

    def record_incidents(self, count: int) -> None:
        """Feed *count* new supervisor incidents (deaths, timeouts,
        quarantines) from the batch that just completed; trips the
        breaker when the windowed total crosses the threshold."""
        now = self._clock()
        self._prune(now)
        if count <= 0:
            return
        self._incidents.append((now, count))
        if self.state == CLOSED and self.recent_incidents() >= self.threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self.trips += 1
        self._opened_at = now
        _telemetry.count("service.breaker_trips")
        _telemetry.set_gauge("service.breaker_open", 1)

    # -- routing ------------------------------------------------------------------

    def allow_pooled(self) -> bool:
        """Should the next batch run on the pool?

        ``closed`` — yes.  ``open`` — no, unless the probe interval has
        elapsed, in which case the breaker moves to ``half-open`` and
        this batch becomes the probe.  ``half-open`` — no (a probe is
        already in flight).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            opened_at = self._opened_at if self._opened_at is not None else 0.0
            if self._clock() - opened_at >= self.probe_interval:
                self.state = HALF_OPEN
                return True
            return False
        return False  # HALF_OPEN: exactly one probe at a time

    def record_probe(self, healthy: bool) -> None:
        """The half-open probe batch finished: close or re-open."""
        if self.state != HALF_OPEN:
            return
        if healthy:
            self.reset()
        else:
            self._trip(self._clock())

    def reset(self) -> None:
        """Back to ``closed`` with a clean window (drain does this)."""
        self.state = CLOSED
        self._incidents.clear()
        self._opened_at = None
        _telemetry.set_gauge("service.breaker_open", 0)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "state": self.state,
            "trips": self.trips,
            "recent_incidents": self.recent_incidents(),
            "threshold": self.threshold,
            "window": self.window,
            "probe_interval": self.probe_interval,
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, trips={self.trips}, "
            f"recent={self.recent_incidents()}/{self.threshold})"
        )
