"""Command line for the verdict service: ``python -m repro.service``.

Binds the listener (``--port 0`` picks a free port and prints it),
serves until SIGTERM/SIGINT, drains gracefully and exits 0.  The CI
smoke job uses ``--trace`` to collect a telemetry JSONL artifact and
``--inject-fault`` to stage a chaos drill against a named test.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.service.app import VerdictService, _serve_async
from repro.service.config import ServiceConfig
from repro.session import Session


def _processes(value: str):
    return value if value == "auto" else int(value)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve litmus verdicts and fence repairs over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8787, help="0 picks a free port (printed at start)"
    )
    parser.add_argument("--model", default="power", help="default model name")
    parser.add_argument(
        "--processes",
        type=_processes,
        default="auto",
        help='campaign worker count, or "auto" (one per core)',
    )
    parser.add_argument("--max-queue", type=int, default=None)
    parser.add_argument("--max-batch", type=int, default=None)
    parser.add_argument("--batch-window", type=float, default=None)
    parser.add_argument("--default-deadline", type=float, default=None)
    parser.add_argument("--drain-window", type=float, default=None)
    parser.add_argument("--chunk-timeout", type=float, default=None)
    parser.add_argument("--breaker-threshold", type=int, default=None)
    parser.add_argument("--breaker-probe-interval", type=float, default=None)
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable telemetry and export it as JSONL to PATH on drain",
    )
    parser.add_argument(
        "--inject-fault",
        metavar="KIND:TARGET",
        default=None,
        help=(
            "chaos drill: install a worker-side fault "
            "(crash|hang|raise|raise_unpicklable) against a test name"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    options = build_parser().parse_args(argv)

    config_overrides = {"host": options.host, "port": options.port}
    for name in (
        "max_queue",
        "max_batch",
        "batch_window",
        "default_deadline",
        "drain_window",
        "breaker_threshold",
        "breaker_probe_interval",
    ):
        value = getattr(options, name)
        if value is not None:
            config_overrides[name] = value
    config = ServiceConfig(**config_overrides)

    if options.inject_fault is not None:
        from repro.campaign import faults

        kind, separator, target = options.inject_fault.partition(":")
        if not separator or not target:
            print(
                f"--inject-fault wants KIND:TARGET, got {options.inject_fault!r}",
                file=sys.stderr,
            )
            return 2
        faults.install(faults.FaultSpec(kind, target))
        print(f"verdict-service chaos drill armed: {kind} on {target!r}", flush=True)

    session_kwargs = {"model": options.model, "processes": options.processes}
    if options.chunk_timeout is not None:
        session_kwargs["chunk_timeout"] = options.chunk_timeout
    if options.trace is not None:
        session_kwargs["telemetry"] = True
    session = Session(**session_kwargs)

    service = VerdictService(session=session, config=config)
    import asyncio

    asyncio.run(_serve_async(service))

    if options.trace is not None and session._telemetry is not None:
        written = session._telemetry.export_jsonl(options.trace)
        print(f"verdict-service trace: {written} records -> {options.trace}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
