"""Tunables of the verdict service, all in one frozen record."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Everything the verdict service trades off, with serving defaults.

    Admission: ``max_queue`` bounds the admitted-but-unanswered item
    count — a request that would push past it is shed with ``429`` and
    ``Retry-After: retry_after`` (a draining server sheds with ``503``
    instead) — and ``max_inflight_per_client`` bounds the share any one
    client (identified by its ``X-Client-Id`` header, or its peer
    address absent one) may hold of it, so a greedy batch submitter is
    shed (429, same hint) while polite clients keep being admitted.
    Connections: HTTP/1.1 keep-alive — one connection serves up to
    ``keepalive_max_requests`` requests and is closed after
    ``keepalive_idle_timeout`` seconds without a next request (a
    draining server closes after the in-flight response instead).
    Batching: the dispatcher coalesces compatible queued
    items into campaign chunks of up to ``max_batch`` tests, waiting at
    most ``batch_window`` seconds for stragglers to arrive.  Deadlines:
    a request may carry ``{"deadline": seconds}``; absent one it gets
    ``default_deadline``, and either is clamped to ``max_deadline``.
    Memoization: verdicts (never repairs — reports are strategy-bound)
    are cached across requests keyed by the test's structural
    fingerprint, the model and the engine, in an LRU of
    ``verdict_cache_size`` entries with an idle TTL of
    ``verdict_cache_ttl`` seconds; ``verdict_cache_size=0`` disables
    the cache.  Comparison: ``POST /compare`` sweeps a server-built
    corpus whose event bound is clamped to ``compare_max_events`` and
    whose size is clamped to the ``compare_max_tests`` smallest tests
    (the summary line flags the truncation).
    Degradation: the circuit breaker trips open after
    ``breaker_threshold`` supervisor incidents (worker deaths, chunk
    timeouts, quarantines) within ``breaker_window`` seconds, serves
    serially in-process while open, and half-opens onto a pooled probe
    batch every ``breaker_probe_interval`` seconds.  Shutdown: drain
    stops admitting and gives in-flight work ``drain_window`` seconds
    before aborting the running batch and closing the pool.
    """

    host: str = "127.0.0.1"
    port: int = 8787
    max_queue: int = 256
    max_inflight_per_client: int = 64
    keepalive_max_requests: int = 100
    keepalive_idle_timeout: float = 5.0
    max_batch: int = 16
    batch_window: float = 0.01
    default_deadline: float = 30.0
    max_deadline: float = 300.0
    drain_window: float = 10.0
    retry_after: float = 1.0
    max_body_bytes: int = 1 << 20
    read_timeout: float = 30.0
    breaker_threshold: int = 4
    breaker_window: float = 30.0
    breaker_probe_interval: float = 5.0
    verdict_cache_size: int = 4096
    verdict_cache_ttl: float = 3600.0
    compare_max_events: int = 6
    compare_max_tests: int = 160

    def __post_init__(self):
        positive = (
            "max_queue",
            "max_inflight_per_client",
            "keepalive_max_requests",
            "keepalive_idle_timeout",
            "max_batch",
            "default_deadline",
            "max_deadline",
            "retry_after",
            "max_body_bytes",
            "read_timeout",
            "breaker_threshold",
            "breaker_window",
            "breaker_probe_interval",
            "verdict_cache_ttl",
            "compare_max_tests",
        )
        for name in positive:
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive, got {getattr(self, name)}")
        for name in ("batch_window", "drain_window"):
            if getattr(self, name) < 0:
                raise ValueError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )
        if self.verdict_cache_size < 0:
            raise ValueError(
                f"verdict_cache_size must be >= 0 (0 disables), got "
                f"{self.verdict_cache_size}"
            )
        if self.compare_max_events < 4:
            raise ValueError(
                f"compare_max_events must be >= 4 (the smallest critical "
                f"cycle), got {self.compare_max_events}"
            )
        if self.default_deadline > self.max_deadline:
            raise ValueError(
                f"default_deadline ({self.default_deadline}) exceeds "
                f"max_deadline ({self.max_deadline})"
            )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "host": self.host,
            "port": self.port,
            "max_queue": self.max_queue,
            "max_inflight_per_client": self.max_inflight_per_client,
            "keepalive_max_requests": self.keepalive_max_requests,
            "keepalive_idle_timeout": self.keepalive_idle_timeout,
            "max_batch": self.max_batch,
            "batch_window": self.batch_window,
            "default_deadline": self.default_deadline,
            "max_deadline": self.max_deadline,
            "drain_window": self.drain_window,
            "retry_after": self.retry_after,
            "max_body_bytes": self.max_body_bytes,
            "read_timeout": self.read_timeout,
            "breaker_threshold": self.breaker_threshold,
            "breaker_window": self.breaker_window,
            "breaker_probe_interval": self.breaker_probe_interval,
            "verdict_cache_size": self.verdict_cache_size,
            "verdict_cache_ttl": self.verdict_cache_ttl,
            "compare_max_events": self.compare_max_events,
            "compare_max_tests": self.compare_max_tests,
        }
