"""A deliberately small HTTP/1.1 layer over asyncio streams.

The standard library ships an asyncio event loop and an HTTP *client*,
but no asyncio HTTP server — and the service must stay stdlib-only.
This module implements exactly the subset the verdict service needs and
nothing more: request-line + header + ``Content-Length`` body parsing
with hard caps, plain JSON responses, and ``chunked`` transfer encoding
for streaming NDJSON results as they land.  Connections are persistent
(HTTP/1.1 keep-alive) so batch submitters stop paying a TCP handshake
per verdict: the server loops requests on one socket up to a
per-connection cap and an idle timeout, and every response declares its
intent (``Connection: keep-alive`` or ``close``) explicitly.  Parse
errors still close the connection — a desynchronized stream is never
worth resynchronizing — and pipelining stays unsupported (the server
reads the next request only after answering the previous one).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "response_bytes",
    "ChunkedWriter",
    "STATUS_REASONS",
]

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Hard cap on the request line plus headers, independent of the body cap.
MAX_HEADER_BYTES = 32 * 1024


class HttpError(Exception):
    """An error with a definite HTTP answer (the handler renders it)."""

    def __init__(self, status: int, detail: str, headers: Optional[Dict[str, str]] = None):
        super().__init__(detail)
        self.status = status
        self.detail = detail
        self.headers = headers or {}


@dataclass
class Request:
    """One parsed request: method, path, headers (lower-cased), body."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body as JSON, or ``HttpError(400)``."""
        if not self.body:
            raise HttpError(400, "empty request body (expected JSON)")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int,
    timeout: float,
    idle_timeout: Optional[float] = None,
) -> Optional[Request]:
    """Parse one request off the stream, or ``None`` on immediate EOF.

    With ``idle_timeout`` set (a kept-alive connection waiting for its
    next request), a connection that stays silent past it also returns
    ``None`` — an idle keep-alive close, not an error; once the first
    byte arrives the ordinary ``timeout`` governs the rest of the head.
    Raises :class:`HttpError` for malformed, oversized or overdue
    requests; the caller renders it as the response.
    """
    prefix = b""
    if idle_timeout is not None:
        try:
            prefix = await asyncio.wait_for(
                reader.readexactly(1), timeout=idle_timeout
            )
        except (asyncio.IncompleteReadError, asyncio.TimeoutError):
            return None  # the connection went idle or away between requests
    try:
        head = prefix + await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout=timeout
        )
    except asyncio.IncompleteReadError as exc:
        if not prefix and not exc.partial:
            return None  # clean EOF before any bytes: client went away
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large") from None
    except asyncio.TimeoutError:
        raise HttpError(408, "timed out reading the request head") from None

    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, "request head too large")
    try:
        text = head.decode("latin-1")
    except Exception:  # pragma: no cover — latin-1 decodes any byte
        raise HttpError(400, "undecodable request head") from None
    lines = text.split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: {length_text!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length_text!r}")
        if length > max_body:
            raise HttpError(413, f"request body over the {max_body}-byte cap")
        try:
            body = await asyncio.wait_for(reader.readexactly(length), timeout=timeout)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length") from None
        except asyncio.TimeoutError:
            raise HttpError(408, "timed out reading the request body") from None
    elif headers.get("transfer-encoding", "").lower() == "chunked":
        # Streaming request bodies buy nothing for batch-of-names
        # payloads; refusing them keeps the parser single-pass.
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(method=method, path=path, headers=headers, body=body)


def response_bytes(
    status: int,
    payload: Any = None,
    *,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = False,
) -> bytes:
    """A complete non-streaming response (JSON unless told otherwise)."""
    if isinstance(payload, bytes):
        body = payload
    elif payload is None:
        body = b""
    else:
        body = (json.dumps(payload) + "\n").encode("utf-8")
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


class ChunkedWriter:
    """Stream an NDJSON response body with chunked transfer encoding.

    One :meth:`write_line` per result, flushed to the socket as it
    lands — a client streaming a 100-test request sees the first
    verdict while the last chunk is still computing.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer
        self._started = False

    @property
    def started(self) -> bool:
        return self._started

    async def start(
        self,
        status: int = 200,
        *,
        content_type: str = "application/x-ndjson",
        extra_headers: Optional[Dict[str, str]] = None,
        keep_alive: bool = False,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {STATUS_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            "Transfer-Encoding: chunked",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        self._started = True
        await self._writer.drain()

    async def write_line(self, payload: Any) -> None:
        data = (json.dumps(payload) + "\n").encode("utf-8")
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
