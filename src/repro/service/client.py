"""A small blocking client for the verdict service.

Built on :class:`http.client.HTTPConnection` (stdlib), which decodes
chunked transfer encoding transparently — ``readline`` on the response
yields NDJSON result lines as the server streams them.  Connections are
**reused**: the server speaks HTTP/1.1 keep-alive, so the client keeps
one persistent connection per thread (the one-shot verbs are the batch
submitters' hot path) and transparently reconnects once when the server
has meanwhile closed it — keep-alive request cap, idle timeout or
restart.  The client is otherwise deliberately thin: it exposes
shed/drain responses (429/503 with their ``Retry-After``) instead of
hiding them behind retries, because load generators and tests need to
*observe* backpressure, and real callers should decide their own retry
policy.
"""

from __future__ import annotations

import http.client
import json
import threading
import uuid
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

__all__ = ["ServiceClient", "ServiceResponse"]

TestSpec = Union[str, Dict[str, Any]]


class ServiceResponse:
    """One answered request: status, headers and (for 200) result lines."""

    def __init__(self, status: int, headers: Dict[str, str], results: List[Dict[str, Any]]):
        self.status = status
        self.headers = headers
        self.results = results

    @property
    def ok(self) -> bool:
        return self.status == 200

    @property
    def retry_after(self) -> Optional[float]:
        """The server's ``Retry-After`` hint (429/503), if any."""
        value = self.headers.get("retry-after")
        try:
            return float(value) if value is not None else None
        except ValueError:  # pragma: no cover — the server sends numbers
            return None

    @property
    def summary(self) -> Optional[Dict[str, Any]]:
        """The trailing ``{"summary": true, ...}`` line of a
        ``/compare`` response, if any."""
        for line in reversed(self.results):
            if isinstance(line, dict) and line.get("summary"):
                return line
        return None

    @property
    def error(self) -> Optional[str]:
        """The error detail of a non-200 response."""
        if self.ok or not self.results:
            return None
        return self.results[0].get("error")

    def __repr__(self) -> str:
        return f"ServiceResponse(status={self.status}, results={len(self.results)})"


class ServiceClient:
    """Blocking HTTP client for one verdict-service endpoint.

    ::

        client = ServiceClient("127.0.0.1", 8787)
        response = client.verdict(["sb", "mp"], model="power", deadline=5.0)
        for line in response.results:
            print(line["test"], line["status"])
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        # One persistent keep-alive connection per thread: the client is
        # routinely shared by hammering threads, and HTTPConnection is
        # not thread-safe.
        self._local = threading.local()
        # One identity across all of this client's threads and
        # connections — the unit of the server's admission fairness.
        self.client_id = uuid.uuid4().hex[:16]

    # -- connection reuse ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
        return connection

    def close(self) -> None:
        """Drop this thread's persistent connection (if any)."""
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            connection.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- one-shot verbs -----------------------------------------------------------

    def verdict(
        self,
        tests: Union[TestSpec, Sequence[TestSpec]],
        model: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> ServiceResponse:
        """``POST /verdict``; returns the full response, lines collected."""
        return self._submit("/verdict", tests, model=model, deadline=deadline)

    def repair(
        self,
        tests: Union[TestSpec, Sequence[TestSpec]],
        model: Optional[str] = None,
        deadline: Optional[float] = None,
        strategy: Optional[str] = None,
    ) -> ServiceResponse:
        """``POST /repair``; returns the full response, lines collected."""
        return self._submit(
            "/repair", tests, model=model, deadline=deadline, strategy=strategy
        )

    def compare(
        self,
        model_a: str,
        model_b: str,
        deadline: Optional[float] = None,
        **budget: Any,
    ) -> ServiceResponse:
        """``POST /compare``: sweep a server-built corpus under both
        models.  ``budget`` keys (``events``, ``threads``, ``arch``,
        ``fences``, ``dependencies``, ``registry``, ``limit``) bound the
        corpus; the response streams one line per test and ends with a
        ``{"summary": true, ...}`` line carrying the comparison verdict
        and the minimal witness of each direction."""
        payload: Dict[str, Any] = {"models": [model_a, model_b]}
        if budget:
            payload["budget"] = budget
        if deadline is not None:
            payload["deadline"] = deadline
        return self._request(
            "POST", "/compare", body=json.dumps(payload).encode("utf-8")
        )

    def stats(self) -> Dict[str, Any]:
        """``GET /stats`` as a dict (raises on non-200)."""
        response = self._request("GET", "/stats")
        if response.status != 200:
            raise RuntimeError(f"GET /stats failed: {response!r}")
        return response.results[0]

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz`` as a dict (raises on non-200)."""
        response = self._request("GET", "/healthz")
        if response.status != 200:
            raise RuntimeError(f"GET /healthz failed: {response!r}")
        return response.results[0]

    # -- streaming ----------------------------------------------------------------

    def stream(
        self,
        path: str,
        tests: Union[TestSpec, Sequence[TestSpec]],
        model: Optional[str] = None,
        deadline: Optional[float] = None,
        strategy: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Yield result lines of a 200 response as the server streams
        them; raises ``RuntimeError`` on a non-200 answer.  Streaming
        uses a dedicated connection (an abandoned generator must not
        poison the thread's reusable one)."""
        body = self._body(tests, model, deadline, strategy)
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(
                "POST",
                path,
                body=body,
                headers={
                    "Content-Type": "application/json",
                    "X-Client-Id": self.client_id,
                },
            )
            raw = connection.getresponse()
            if raw.status != 200:
                detail = raw.read().decode("utf-8", "replace").strip()
                raise RuntimeError(f"{path} failed with {raw.status}: {detail}")
            while True:
                line = raw.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    # -- plumbing -----------------------------------------------------------------

    @staticmethod
    def _body(tests, model, deadline, strategy=None) -> bytes:
        if isinstance(tests, (str, dict)):
            tests = [tests]
        payload: Dict[str, Any] = {"tests": list(tests)}
        if model is not None:
            payload["model"] = model
        if deadline is not None:
            payload["deadline"] = deadline
        if strategy is not None:
            payload["strategy"] = strategy
        return json.dumps(payload).encode("utf-8")

    def _submit(self, path, tests, model=None, deadline=None, strategy=None) -> ServiceResponse:
        return self._request(
            "POST", path, body=self._body(tests, model, deadline, strategy)
        )

    def _request(self, method: str, path: str, body: Optional[bytes] = None) -> ServiceResponse:
        headers = {"X-Client-Id": self.client_id}
        if body:
            headers["Content-Type"] = "application/json"
        for retry in (False, True):
            connection = self._connection()
            try:
                connection.request(method, path, body=body, headers=headers)
                raw = connection.getresponse()
                header_map = {
                    name.lower(): value for name, value in raw.getheaders()
                }
                text = raw.read().decode("utf-8", "replace")
            except (ConnectionError, http.client.HTTPException, OSError):
                # The server closed the kept-alive connection between
                # requests (request cap, idle timeout, restart): retry
                # once on a fresh socket, then let the failure surface.
                self.close()
                if retry:
                    raise
                continue
            if raw.will_close:
                self.close()
            results: List[Dict[str, Any]] = []
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    results.append(json.loads(line))
                except ValueError:
                    results.append({"error": line})
            return ServiceResponse(raw.status, header_map, results)
        raise AssertionError("unreachable")  # pragma: no cover
