"""The resilient verdict service: HTTP front-end over one Session.

See :mod:`repro.service.app` for the design: bounded admission with
load shedding, per-request deadlines propagated into the supervisor,
micro-batching onto the warm campaign pool, a circuit breaker that
degrades to serial in-process execution when supervisor incidents
spike, and graceful drain on SIGTERM.

Run a server::

    python -m repro.service --port 8787 --processes 4

or in-process::

    from repro.service import ServiceThread, ServiceConfig, ServiceClient

    with ServiceThread(processes=2, config=ServiceConfig(port=0)) as handle:
        client = ServiceClient(*handle.address)
        print(client.verdict(["sb", "mp"], model="power").results)
"""

from repro.service.app import ServiceThread, VerdictService, serve
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.client import ServiceClient, ServiceResponse
from repro.service.config import ServiceConfig
from repro.service.http import HttpError

__all__ = [
    "VerdictService",
    "ServiceThread",
    "serve",
    "ServiceConfig",
    "CircuitBreaker",
    "ServiceClient",
    "ServiceResponse",
    "HttpError",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
]
