"""The resilient verdict service: one Session behind an asyncio front door.

The service owns a single multi-worker :class:`~repro.session.Session`
and keeps answering verdict/repair traffic through the failure modes a
long-lived server actually meets:

* **Overload** — admission is bounded: once ``max_queue`` items are
  admitted and unanswered, new requests are shed with ``429`` and a
  ``Retry-After`` hint instead of growing an unbounded backlog.
* **Greedy clients** — admission is also *fair*: each client (its
  ``X-Client-Id`` header, or its peer address absent one) may hold at
  most ``max_inflight_per_client`` admitted-and-unanswered items, so a
  batch submitter that floods the queue is shed (``429``, same hint)
  while polite clients keep landing inside the global cap.
* **Connection churn** — connections are HTTP/1.1 keep-alive: one
  socket serves up to ``keepalive_max_requests`` requests and closes
  after ``keepalive_idle_timeout`` idle seconds, so batch clients stop
  paying a TCP handshake per verdict.  Parse errors and drains still
  close (a desynchronized or draining stream is never kept).
* **Slow work** — every request carries a deadline (its own, or the
  configured default).  The budget propagates down into the supervisor
  as ``SupervisorPolicy.with_budget``: chunk attempts are capped at it,
  no retry or bisection round starts past it, and an overdue chunk is
  killed — a slow test can never pin a request beyond its budget.
* **Concurrency** — concurrent requests for the same (kind, model,
  strategy) are **micro-batched**: the dispatcher coalesces queued
  items into campaign chunks on the warm pool and streams each item's
  JSON result line back the moment its batch lands.
* **Poison inputs and dying workers** — the supervised pool already
  quarantines and self-heals; the service adds a **circuit breaker** on
  top of the supervisor's own counters.  When deaths/timeouts/
  quarantines spike, the breaker trips and batches run serially
  in-process (degraded mode: slower, but with no workers to lose);
  probe batches half-open it on a schedule and a clean probe closes it.
* **Shutdown** — SIGTERM drains: stop admitting (new requests get
  ``503``), let in-flight work finish inside ``drain_window`` seconds,
  then abort the running batch, kill overdue chunks and close the pool.

Execution happens on a **single** worker thread feeding the Session —
the Session is not thread-safe, and parallelism comes from the process
pool inside a batch, not from concurrent batches.  The asyncio loop
only parses, queues, streams and supervises.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro import telemetry as _telemetry
from repro.litmus.ast import LitmusTest
from repro.service.breaker import HALF_OPEN, CircuitBreaker
from repro.service.config import ServiceConfig
from repro.service.http import ChunkedWriter, HttpError, Request, read_request, response_bytes
from repro.session import Session

__all__ = ["VerdictService", "ServiceThread", "serve"]

#: Counter keys pre-seeded to zero so ``GET /stats`` always shows the
#: full shape, quiet servers included.
_COUNTER_NAMES = (
    "requests",
    "connections",
    "keepalive_reuses",
    "admitted",
    "shed",
    "shed_per_client",
    "rejected_draining",
    "expired_in_queue",
    "batches",
    "batched_items",
    "degraded_batches",
    "probe_batches",
    "responses",
    "http_errors",
    "drain_unanswered",
)


class _Item:
    """One admitted unit of work: a single test plus its bookkeeping."""

    __slots__ = ("kind", "test", "model", "strategy", "deadline", "future")

    def __init__(self, kind, test, model, strategy, deadline, future):
        self.kind = kind  # "verdict" | "repair" | "compare"
        self.test = test
        self.model = model  # a name, or a pair of names for "compare"
        self.strategy = strategy  # None for verdicts — batches group on it
        self.deadline = deadline  # absolute time.monotonic()
        self.future = future


class VerdictService:
    """The HTTP front door (see the module docstring for the design).

    ``session`` adopts an existing :class:`~repro.session.Session`;
    without one, a fault-tolerant session is built from
    ``session_defaults`` (``model="power"``, ``processes="auto"`` and a
    one-hour ``cache_ttl`` unless overridden).  Endpoints:

    * ``POST /verdict`` — body ``{"tests": [...], "model": "power",
      "deadline": 5.0}``; each entry is a registry name, ``{"name":
      ...}``, or ``{"source": "<litmus text>"}``.  Responds 200 with an
      NDJSON stream: one line per test, in request order, each
      ``{"test", "status", ...}`` — ``ok`` (with ``verdict``),
      ``quarantined``/``timeout``/``unavailable`` (with the structured
      ``FailedItem``), or ``error``.
    * ``POST /repair`` — same body plus optional ``strategy``
      (``greedy``/``ilp``); ``ok`` lines carry the full repair
      ``report``.
    * ``POST /compare`` — body ``{"models": ["tso", "power"],
      "budget": {"events": 4, ...}, "deadline": 10.0}``; the server
      builds the corpus (event bound clamped to
      ``compare_max_events``, size clamped to ``compare_max_tests``)
      and streams one ``{"test", "status", "verdicts": {model:
      verdict}}`` line per test followed by a final ``{"summary":
      true, "verdict", "witness_a", "witness_b", ...}`` line.
    * ``GET /stats`` — ``{"service": ..., "session": Session.stats()}``.
    * ``GET /healthz`` — liveness plus drain/breaker state.

    Verdicts memoize across requests: an admitted test whose
    ``(fingerprint, model, engine)`` verdict is already cached answers
    from the cache (``"mode": "cache"``) without ever enqueueing, and
    every ``ok`` verdict — including each half of a comparison pair —
    populates the cache for later requests.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        config: Optional[ServiceConfig] = None,
        **session_defaults: Any,
    ):
        self.config = config or ServiceConfig()
        if session is None:
            session_defaults.setdefault("model", "power")
            session_defaults.setdefault("processes", "auto")
            session_defaults.setdefault("cache_ttl", 3600.0)
            session = Session(**session_defaults)
        elif session_defaults:
            raise TypeError("pass either session= or session defaults, not both")
        self.session = session
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            window=self.config.breaker_window,
            probe_interval=self.config.breaker_probe_interval,
        )
        self.counters: Dict[str, float] = {name: 0 for name in _COUNTER_NAMES}
        self.counters["drain_seconds"] = 0.0
        self._queue: Deque[_Item] = deque()
        self._inflight = 0
        self._client_inflight: Dict[str, int] = {}
        self._connections: set = set()
        self._busy_connections: set = set()
        self._draining = False
        self._closed = False
        self._drain_started = False
        self._stop_serial = False
        self._wake: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._batcher: Optional[asyncio.Task] = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="verdict-service"
        )
        self._verdict_cache = None
        self._verdict_cache_stats = None
        if self.config.verdict_cache_size > 0:
            from repro.telemetry import CacheStats
            from repro.util.caches import BoundedTTLCache

            self._verdict_cache_stats = CacheStats(
                "service.verdicts", entries=lambda: len(self._verdict_cache)
            )
            self._verdict_cache = BoundedTTLCache(
                max_entries=self.config.verdict_cache_size,
                ttl=self.config.verdict_cache_ttl,
                stats=self._verdict_cache_stats,
            )
        self._signal_seen = self._supervisor_signal()
        self.address: Optional[Tuple[str, int]] = None

    # -- counters and breaker signals ---------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        _telemetry.count(f"service.{name}", amount)

    def _supervisor_signal(self) -> float:
        """Lifetime supervisor incidents: the breaker's input signal."""
        totals = dict(self.session._supervisor_history)
        pool = self.session._pool
        if pool is not None:
            for name, value in pool.counters.items():
                totals[name] = totals.get(name, 0) + value
        return sum(
            totals.get(name, 0)
            for name in ("worker_deaths", "timeouts", "quarantined")
        )

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and start the dispatcher; returns (host, port)."""
        self._wake = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())
        _telemetry.set_gauge("service.up", 1)
        return self.address

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish in-flight work
        within the drain window, then abort stragglers and close the
        pool.  Idempotent; resets the breaker so a later restart of the
        owning process starts closed."""
        if self._drain_started:
            return
        self._drain_started = True
        started = time.monotonic()
        # Stop admitting first, but keep the listener up through the
        # drain window: late clients get an explicit 503 + Retry-After
        # instead of a connection refusal, and in-flight streams keep
        # their sockets.
        self._draining = True

        deadline = started + self.config.drain_window
        while (self._queue or self._inflight) and time.monotonic() < deadline:
            if self._wake is not None:
                self._wake.set()
            await asyncio.sleep(0.02)

        overdue = bool(self._queue or self._inflight)
        if overdue:
            # The window is blown: abort the supervised batch (the
            # executor thread unblocks with `aborted` failures) and stop
            # the serial path between items.
            self._stop_serial = True
            pool = self.session._pool
            if pool is not None:
                pool.abort()
            grace_until = time.monotonic() + 5.0
            while (self._queue or self._inflight) and time.monotonic() < grace_until:
                if self._wake is not None:
                    self._wake.set()
                await asyncio.sleep(0.02)
            unanswered = list(self._queue)
            self._queue.clear()
            if unanswered:
                self._count("drain_unanswered", len(unanswered))
            for item in unanswered:
                self._resolve(
                    item,
                    {
                        "test": item.test.name,
                        "status": "unavailable",
                        "error": "service drained before this test ran",
                    },
                )

        self._closed = True
        if self._server is not None:
            self._server.close()
        # Kept-alive connections idling between requests would otherwise
        # pin the listener shutdown until their idle timeout expires;
        # busy ones are mid-response and close themselves (the handler
        # loop never keeps a connection once the drain has started).
        for writer in list(self._connections - self._busy_connections):
            with contextlib.suppress(Exception):
                writer.close()
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        if self._wake is not None:
            self._wake.set()
        if self._batcher is not None:
            try:
                await asyncio.wait_for(self._batcher, timeout=10.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._batcher.cancel()
            self._batcher = None

        # Close the pool off-loop (process joins block).  After an abort
        # a small grace kills the overdue chunk's worker instead of
        # waiting out the policy default.
        grace = 0.5 if overdue else None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lambda: self.session.close(grace))
        self._executor.shutdown(wait=False, cancel_futures=True)
        self.breaker.reset()
        elapsed = time.monotonic() - started
        self.counters["drain_seconds"] = elapsed
        _telemetry.observe("service.drain_seconds", elapsed)
        _telemetry.set_gauge("service.up", 0)

    # -- verdict memoization ------------------------------------------------------

    def _memo_key(self, test: LitmusTest, model: str):
        from repro.campaign.context import test_fingerprint

        return (test_fingerprint(test), model, self.session.engine)

    def _cached_outcome(
        self, kind: str, test: LitmusTest, model
    ) -> Optional[Dict[str, Any]]:
        """A ready-made ``ok`` outcome for *test* when the verdict cache
        already knows it — both models' verdicts for a comparison pair.
        Repairs never memoize (reports are strategy-bound)."""
        cache = self._verdict_cache
        if cache is None or kind == "repair":
            return None
        stats = self._verdict_cache_stats
        if kind == "verdict":
            verdict = cache.get(self._memo_key(test, model))
            if verdict is None:
                stats.miss()
                return None
            stats.hit()
            return {
                "test": test.name,
                "status": "ok",
                "mode": "cache",
                "verdict": verdict,
            }
        verdicts = {}
        for name in model:
            verdict = cache.get(self._memo_key(test, name))
            if verdict is None:
                stats.miss()
                return None
            verdicts[name] = verdict
        stats.hit()
        return {
            "test": test.name,
            "status": "ok",
            "mode": "cache",
            "verdicts": verdicts,
        }

    def _memoize(self, item: _Item, outcome: Dict[str, Any]) -> None:
        cache = self._verdict_cache
        if cache is None or outcome.get("status") != "ok":
            return
        if item.kind == "verdict":
            cache[self._memo_key(item.test, item.model)] = outcome["verdict"]
        elif item.kind == "compare":
            for name, verdict in outcome["verdicts"].items():
                cache[self._memo_key(item.test, name)] = verdict

    # -- admission ----------------------------------------------------------------

    def _retry_after_headers(self) -> Dict[str, str]:
        return {"Retry-After": str(max(1, round(self.config.retry_after)))}

    def _admit(
        self,
        kind: str,
        tests: List[LitmusTest],
        model: str,
        strategy: Optional[str],
        budget: float,
        client: Optional[str] = None,
    ) -> List[_Item]:
        if self._draining or self._closed:
            self._count("rejected_draining", len(tests))
            raise HttpError(
                503, "service is draining", self._retry_after_headers()
            )
        # Memoized verdicts answer from the cache without ever entering
        # the queue, so only the misses compete for admission capacity.
        cached = [self._cached_outcome(kind, test, model) for test in tests]
        miss_count = sum(1 for outcome in cached if outcome is None)
        # Per-client fairness first: a greedy client is told it (and
        # only it) is over quota even while the global queue has room.
        # Comparison corpora are exempt — the *server* chooses that
        # fan-out (clamped by compare_max_tests), not the client.
        if client is not None and kind != "compare":
            held = self._client_inflight.get(client, 0)
            if held + miss_count > self.config.max_inflight_per_client:
                self._count("shed_per_client", len(tests))
                raise HttpError(
                    429,
                    f"client {client} holds {held} in-flight items "
                    f"(per-client cap {self.config.max_inflight_per_client})",
                    self._retry_after_headers(),
                )
        depth = len(self._queue) + self._inflight
        if depth + miss_count > self.config.max_queue:
            self._count("shed", len(tests))
            raise HttpError(
                429,
                f"admission queue full ({depth} items in flight, "
                f"cap {self.config.max_queue})",
                self._retry_after_headers(),
            )
        loop = asyncio.get_running_loop()
        deadline = time.monotonic() + budget
        items = []
        misses = []
        for test, outcome in zip(tests, cached):
            item = _Item(kind, test, model, strategy, deadline, loop.create_future())
            items.append(item)
            if outcome is not None:
                item.future.set_result(outcome)
            else:
                misses.append(item)
        if client is not None and kind != "compare" and misses:
            self._client_inflight[client] = (
                self._client_inflight.get(client, 0) + len(misses)
            )
            for item in misses:
                item.future.add_done_callback(
                    lambda _future, c=client: self._client_done(c)
                )
        self._queue.extend(misses)
        self._count("admitted", len(misses))
        _telemetry.set_gauge("service.queue_depth", len(self._queue) + self._inflight)
        if self._wake is not None and misses:
            self._wake.set()
        return items

    def _client_done(self, client: str) -> None:
        """One of *client*'s items was answered: release its quota slot."""
        held = self._client_inflight.get(client, 0) - 1
        if held > 0:
            self._client_inflight[client] = held
        else:
            self._client_inflight.pop(client, None)

    def _resolve(self, item: _Item, outcome: Dict[str, Any]) -> None:
        if not item.future.done():
            item.future.set_result(outcome)

    # -- the dispatcher -----------------------------------------------------------

    async def _batch_loop(self) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        while not self._closed:
            if not self._queue:
                self._wake.clear()
                if self._closed:
                    break
                await self._wake.wait()
                continue
            if (
                len(self._queue) < cfg.max_batch
                and cfg.batch_window > 0
                and not self._draining
            ):
                # Coalescing window: let concurrent arrivals join the batch.
                await asyncio.sleep(cfg.batch_window)

            now = time.monotonic()
            overdue = [item for item in self._queue if item.deadline <= now]
            for item in overdue:
                self._queue.remove(item)
                self._resolve(
                    item,
                    {
                        "test": item.test.name,
                        "status": "timeout",
                        "error": "deadline expired while queued",
                    },
                )
            if overdue:
                self._count("expired_in_queue", len(overdue))
            if not self._queue:
                continue

            # The tightest deadline picks the batch key; everything
            # compatible rides along, earliest deadlines first.
            head = min(self._queue, key=lambda item: item.deadline)
            key = (head.kind, head.model, head.strategy)
            group = [
                item
                for item in sorted(self._queue, key=lambda item: item.deadline)
                if (item.kind, item.model, item.strategy) == key
            ][: cfg.max_batch]
            for item in group:
                self._queue.remove(item)
            self._inflight += len(group)
            self._count("batches")
            self._count("batched_items", len(group))

            pooled = probe = False
            if self.session.workers > 1 and not self._stop_serial:
                pooled = self.breaker.allow_pooled()
                probe = pooled and self.breaker.state == HALF_OPEN
            if not pooled:
                self._count("degraded_batches")
            if probe:
                self._count("probe_batches")

            try:
                outcomes = await loop.run_in_executor(
                    self._executor, self._run_group, group, pooled
                )
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                outcomes = [
                    {
                        "test": item.test.name,
                        "status": "error",
                        "error": repr(exc),
                    }
                    for item in group
                ]

            signal = self._supervisor_signal()
            incidents = int(signal - self._signal_seen)
            self._signal_seen = signal
            if probe:
                self.breaker.record_probe(incidents == 0)
            elif pooled:
                self.breaker.record_incidents(incidents)

            for item, outcome in zip(group, outcomes):
                self._memoize(item, outcome)
                self._resolve(item, outcome)
            self._inflight -= len(group)
            _telemetry.set_gauge(
                "service.queue_depth", len(self._queue) + self._inflight
            )

    # -- batch execution (single worker thread) -----------------------------------

    def _run_group(self, group: List[_Item], pooled: bool) -> List[Dict[str, Any]]:
        if pooled:
            return self._run_pooled(group)
        return self._run_serial(group)

    def _run_pooled(self, group: List[_Item]) -> List[Dict[str, Any]]:
        session = self.session
        head = group[0]
        tests = [item.test for item in group]
        budget = min(item.deadline for item in group) - time.monotonic()
        policy = session.policy.with_budget(budget)
        errors: List[Any] = []

        if head.kind == "repair":
            from repro.fences.campaign import repair_family

            result = repair_family(
                tests,
                head.model,
                pool=session.pool(),
                cache=session.cycle_cache,
                context_cache=session.context_cache,
                strategy=head.strategy or session.strategy,
                policy=policy,
                errors=errors,
            )
            survivors = list(result.reports)

            def name_of(report) -> str:
                return report.test_name

            def render(report) -> Dict[str, Any]:
                return {
                    "test": report.test_name,
                    "status": "ok",
                    "mode": "pooled",
                    "report": report.to_dict(),
                }

        elif head.kind == "compare":
            from repro.campaign import runner as campaign_runner
            from repro.campaign.jobs import VerdictPairJob, verdict_pair_chunk

            survivors = list(
                campaign_runner.run_sharded(
                    verdict_pair_chunk,
                    [
                        VerdictPairJob(test, head.model, session.engine)
                        for test in tests
                    ],
                    pool=session.pool(),
                    policy=policy,
                    errors=errors,
                )
            )

            def name_of(pair) -> str:
                return pair[0]

            def render(pair) -> Dict[str, Any]:
                return {
                    "test": pair[0],
                    "status": "ok",
                    "mode": "pooled",
                    "verdicts": dict(zip(head.model, pair[1])),
                }

        else:
            # run_sharded directly (not sweep_family): the family helper
            # shortcuts single-test batches to serial in-process, which
            # would bypass chunk supervision — the pool must own every
            # pooled item so deadlines and quarantine always apply.
            from repro.campaign import runner as campaign_runner
            from repro.campaign.jobs import VerdictJob, verdict_chunk

            survivors = list(
                campaign_runner.run_sharded(
                    verdict_chunk,
                    [
                        VerdictJob(test, head.model, session.engine)
                        for test in tests
                    ],
                    pool=session.pool(),
                    policy=policy,
                    errors=errors,
                )
            )

            def name_of(pair) -> str:
                return pair[0]

            def render(pair) -> Dict[str, Any]:
                return {
                    "test": pair[0],
                    "status": "ok",
                    "mode": "pooled",
                    "verdict": pair[1],
                }

        session.last_errors.extend(errors)
        return self._align(group, survivors, name_of, render, errors)

    @staticmethod
    def _align(
        group: List[_Item],
        survivors: List[Any],
        name_of: Callable[[Any], str],
        render: Callable[[Any], Dict[str, Any]],
        errors: List[Any],
    ) -> List[Dict[str, Any]]:
        """Zip survivors (submission order) and quarantines back onto
        the group, one outcome per item."""
        remaining = list(errors)
        outcomes: List[Dict[str, Any]] = []
        index = 0
        for item in group:
            name = item.test.name
            if index < len(survivors) and name_of(survivors[index]) == name:
                outcomes.append(render(survivors[index]))
                index += 1
                continue
            failed = next((f for f in remaining if f.item == name), None)
            if failed is not None:
                remaining.remove(failed)
                status = {"timeout": "timeout", "aborted": "unavailable"}.get(
                    failed.kind, "quarantined"
                )
                outcomes.append(
                    {"test": name, "status": status, "error": failed.to_dict()}
                )
            else:  # pragma: no cover — the campaign always accounts for items
                outcomes.append(
                    {
                        "test": name,
                        "status": "error",
                        "error": "no result or quarantine record for this test",
                    }
                )
        return outcomes

    def _run_serial(self, group: List[_Item]) -> List[Dict[str, Any]]:
        """Degraded mode: in-process, one item at a time, no workers to
        lose.  Deadlines are enforced between items — a running item
        cannot be interrupted in-process."""
        outcomes: List[Dict[str, Any]] = []
        for item in group:
            name = item.test.name
            if self._stop_serial:
                outcomes.append(
                    {
                        "test": name,
                        "status": "unavailable",
                        "error": "service is shutting down",
                    }
                )
                continue
            if time.monotonic() >= item.deadline:
                outcomes.append(
                    {
                        "test": name,
                        "status": "timeout",
                        "error": "deadline expired before execution",
                    }
                )
                continue
            try:
                if item.kind == "repair":
                    report = self.session.repair(
                        item.test, model=item.model, strategy=item.strategy
                    )
                    outcomes.append(
                        {
                            "test": name,
                            "status": "ok",
                            "mode": "serial",
                            "report": report.to_dict(),
                        }
                    )
                elif item.kind == "compare":
                    verdicts = {
                        model: self.session.verdict(item.test, model=model)
                        for model in item.model
                    }
                    outcomes.append(
                        {
                            "test": name,
                            "status": "ok",
                            "mode": "serial",
                            "verdicts": verdicts,
                        }
                    )
                else:
                    verdict = self.session.verdict(item.test, model=item.model)
                    outcomes.append(
                        {
                            "test": name,
                            "status": "ok",
                            "mode": "serial",
                            "verdict": verdict,
                        }
                    )
            except Exception as exc:  # noqa: BLE001 — degraded mode must answer
                outcomes.append(
                    {"test": name, "status": "error", "error": repr(exc)}
                )
        return outcomes

    # -- HTTP ---------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        cfg = self.config
        served = 0
        self._count("connections")
        self._connections.add(writer)
        streaming = ChunkedWriter(writer)
        try:
            while not self._closed:
                streaming = ChunkedWriter(writer)
                try:
                    request = await read_request(
                        reader,
                        cfg.max_body_bytes,
                        cfg.read_timeout,
                        # The first request gets the full read timeout;
                        # a kept-alive connection waiting for its next
                        # request is closed quietly once it goes idle.
                        idle_timeout=cfg.keepalive_idle_timeout if served else None,
                    )
                except HttpError as error:
                    # A parse-level failure may leave the stream
                    # desynchronized: answer if possible, then close.
                    self._count("http_errors")
                    with contextlib.suppress(Exception):
                        writer.write(
                            response_bytes(
                                error.status,
                                {"error": error.detail},
                                extra_headers=error.headers,
                            )
                        )
                        await writer.drain()
                    return
                if request is None:
                    return  # clean EOF or idle keep-alive expiry
                served += 1
                if served > 1:
                    self._count("keepalive_reuses")
                keep_alive = (
                    served < cfg.keepalive_max_requests
                    and not self._draining
                    and request.headers.get("connection", "").lower() != "close"
                )
                self._busy_connections.add(writer)
                try:
                    await self._route(request, writer, streaming, keep_alive)
                except HttpError as error:
                    # Application-level: the request was read in full,
                    # so the connection stays in sync and may go on.
                    self._count("http_errors")
                    if streaming.started:
                        return
                    with contextlib.suppress(Exception):
                        writer.write(
                            response_bytes(
                                error.status,
                                {"error": error.detail},
                                extra_headers=error.headers,
                                keep_alive=keep_alive,
                            )
                        )
                        await writer.drain()
                finally:
                    self._busy_connections.discard(writer)
                if not keep_alive or self._draining:
                    return
        except (ConnectionError, asyncio.TimeoutError):
            pass  # the client went away; nothing to answer
        except Exception as exc:  # noqa: BLE001 — one connection, not the server
            self._count("http_errors")
            if not streaming.started:
                with contextlib.suppress(Exception):
                    writer.write(response_bytes(500, {"error": repr(exc)}))
                    await writer.drain()
        finally:
            self._connections.discard(writer)
            self._busy_connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _route(
        self,
        request: Request,
        writer,
        streaming: ChunkedWriter,
        keep_alive: bool = False,
    ) -> None:
        path, method = request.path, request.method
        if path == "/stats":
            if method != "GET":
                raise HttpError(405, "use GET /stats")
            writer.write(response_bytes(200, self.stats(), keep_alive=keep_alive))
            await writer.drain()
            return
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET /healthz")
            writer.write(
                response_bytes(
                    200,
                    {
                        "status": "draining" if self._draining else "ok",
                        "workers": self.session.workers,
                        "breaker": self.breaker.state,
                    },
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
            return
        if path in ("/verdict", "/repair"):
            if method != "POST":
                raise HttpError(405, f"use POST {path}")
            self._count("requests")
            kind = path[1:]
            tests, model, strategy, budget = self._parse_submission(request, kind)
            # Fairness identity: the client's self-declared id when it
            # sends one (ServiceClient always does — one id across all
            # of its connections), else the peer address.
            peername = writer.get_extra_info("peername")
            client = request.headers.get("x-client-id") or (
                peername[0] if isinstance(peername, tuple) else None
            )
            items = self._admit(kind, tests, model, strategy, budget, client)
            await streaming.start(200, keep_alive=keep_alive)
            for item in items:
                outcome = await self._await_item(item)
                await streaming.write_line(outcome)
                self._count("responses")
            await streaming.finish()
            return
        if path == "/compare":
            if method != "POST":
                raise HttpError(405, "use POST /compare")
            self._count("requests")
            models, budget, limit, deadline = self._parse_compare(request)
            corpus, truncated = await asyncio.get_running_loop().run_in_executor(
                None, self._compare_corpus, budget, limit
            )
            peername = writer.get_extra_info("peername")
            client = request.headers.get("x-client-id") or (
                peername[0] if isinstance(peername, tuple) else None
            )
            items = self._admit("compare", corpus, models, None, deadline, client)
            await streaming.start(200, keep_alive=keep_alive)
            from repro.compare.corpus import event_count

            rows = []
            for item in items:
                outcome = await self._await_item(item)
                await streaming.write_line(outcome)
                self._count("responses")
                if outcome.get("status") == "ok":
                    verdicts = outcome["verdicts"]
                    rows.append(
                        (
                            item.test.name,
                            verdicts[models[0]],
                            verdicts[models[1]],
                            event_count(item.test),
                            item.test.num_threads(),
                        )
                    )
            await streaming.write_line(
                self._compare_summary(
                    models, rows, budget, limit, len(items), truncated
                )
            )
            self._count("responses")
            await streaming.finish()
            return
        raise HttpError(404, f"no such endpoint: {path}")

    @staticmethod
    async def _await_item(item: _Item) -> Dict[str, Any]:
        remaining = item.deadline - time.monotonic()
        try:
            # shield(): wait_for must not cancel the shared future on
            # timeout — the batch may still resolve it for the record.
            # The extra second covers batcher scheduling of an expiry
            # that lands exactly on the deadline.
            return await asyncio.wait_for(
                asyncio.shield(item.future),
                timeout=max(remaining, 0.0) + 1.0,
            )
        except asyncio.TimeoutError:
            return {
                "test": item.test.name,
                "status": "timeout",
                "error": "deadline expired before a result was produced",
            }

    def _parse_submission(
        self, request: Request, kind: str
    ) -> Tuple[List[LitmusTest], str, Optional[str], float]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        specs = payload.get("tests", payload.get("test"))
        if isinstance(specs, (str, dict)):
            specs = [specs]
        if not isinstance(specs, list) or not specs:
            raise HttpError(400, 'provide a non-empty "tests" list')

        model = payload.get("model")
        if model is None:
            model = (
                self.session.model
                if isinstance(self.session.model, str)
                else "power"
            )
        if not isinstance(model, str):
            raise HttpError(400, '"model" must be a model name string')
        try:
            self.session.resolve(model)
        except Exception as exc:
            raise HttpError(400, f"unknown model {model!r}: {exc}") from None

        strategy = payload.get("strategy") if kind == "repair" else None
        if strategy is not None and strategy not in ("greedy", "ilp"):
            raise HttpError(400, f'"strategy" must be "greedy" or "ilp", got {strategy!r}')

        budget = self._parse_deadline(payload)

        tests = [self._resolve_test(spec) for spec in specs]
        return tests, model.lower(), strategy, budget

    def _parse_deadline(self, payload: Dict[str, Any]) -> float:
        budget = payload.get("deadline", self.config.default_deadline)
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise HttpError(400, '"deadline" must be a number of seconds')
        if not budget > 0:  # also rejects NaN
            raise HttpError(400, f'"deadline" must be positive, got {budget}')
        return min(float(budget), self.config.max_deadline)

    def _resolve_model_name(self, model: Any) -> str:
        if not isinstance(model, str):
            raise HttpError(400, f"model must be a name string, got {model!r}")
        try:
            self.session.resolve(model)
        except Exception as exc:
            raise HttpError(400, f"unknown model {model!r}: {exc}") from None
        return model.lower()

    def _parse_compare(self, request: Request):
        """``POST /compare`` body: ``(models, budget, limit, deadline)``."""
        from repro.compare.corpus import CorpusBudget

        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        models = payload.get("models")
        if not isinstance(models, list) or len(models) != 2:
            raise HttpError(400, 'provide "models": [A, B], two model names')
        models = tuple(self._resolve_model_name(model) for model in models)

        spec = payload.get("budget", {})
        if not isinstance(spec, dict):
            raise HttpError(400, '"budget" must be a JSON object')
        allowed = {
            "events",
            "threads",
            "arch",
            "fences",
            "dependencies",
            "registry",
            "limit",
        }
        unknown = set(spec) - allowed
        if unknown:
            raise HttpError(
                400,
                f"unknown budget keys {sorted(unknown)}; allowed: {sorted(allowed)}",
            )
        events = spec.get("events", 4)
        try:
            budget = CorpusBudget(
                max_events=min(int(events), self.config.compare_max_events),
                max_threads=int(spec.get("threads", 3)),
                arch=spec.get("arch", "power"),
                fences=bool(spec.get("fences", True)),
                dependencies=bool(spec.get("dependencies", True)),
                include_registry=bool(spec.get("registry", True)),
            )
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"bad comparison budget: {exc}") from None

        limit = spec.get("limit")
        if limit is not None:
            if isinstance(limit, bool) or not isinstance(limit, int) or limit < 1:
                raise HttpError(400, f'"limit" must be a positive integer, got {limit!r}')
        limit = min(limit or self.config.compare_max_tests, self.config.compare_max_tests)

        return models, budget, limit, self._parse_deadline(payload)

    @staticmethod
    def _compare_corpus(budget, limit: int):
        """Build the comparison corpus off-loop; returns ``(tests,
        truncated)`` with the *limit* smallest tests kept (the corpus is
        size-sorted, so the slice preserves witness minimality)."""
        from repro.compare.corpus import comparison_corpus

        corpus = comparison_corpus(budget)
        return corpus[:limit], len(corpus) > limit

    @staticmethod
    def _compare_summary(
        models, rows, budget, limit: int, num_tests: int, truncated: bool
    ) -> Dict[str, Any]:
        from repro.compare.report import classify, minimal_witness

        witness_a = minimal_witness(rows, models[0], models[1], "a")
        witness_b = minimal_witness(rows, models[0], models[1], "b")
        return {
            "summary": True,
            "model_a": models[0],
            "model_b": models[1],
            "verdict": classify(rows),
            "num_tests": num_tests,
            "answered": len(rows),
            "distinguishing": [row[0] for row in rows if row[1] != row[2]],
            "witness_a": witness_a.to_dict() if witness_a else None,
            "witness_b": witness_b.to_dict() if witness_b else None,
            "truncated": truncated,
            "budget": {**budget.as_dict(), "limit": limit},
        }

    @staticmethod
    def _resolve_test(spec: Any) -> LitmusTest:
        from repro.litmus import registry as litmus_registry

        if isinstance(spec, dict) and "source" in spec:
            from repro.litmus.parser import parse_litmus

            try:
                return parse_litmus(spec["source"])
            except Exception as exc:
                raise HttpError(400, f"unparseable litmus source: {exc}") from None
        name = spec.get("name") if isinstance(spec, dict) else spec
        if not isinstance(name, str):
            raise HttpError(
                400,
                f"each test must be a registry name, {{'name': ...}} or "
                f"{{'source': ...}}; got {spec!r}",
            )
        try:
            return litmus_registry.get_test(name)
        except Exception:
            raise HttpError(400, f"unknown litmus test {name!r}") from None

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` payload: service plus session trees."""
        return {
            "service": {
                "counters": dict(self.counters),
                "queue_depth": len(self._queue),
                "inflight": self._inflight,
                "clients_inflight": dict(self._client_inflight),
                "open_connections": len(self._connections),
                "draining": self._draining,
                "breaker": self.breaker.as_dict(),
                "verdict_cache": (
                    self._verdict_cache_stats.as_dict()
                    if self._verdict_cache_stats is not None
                    else None
                ),
                "config": self.config.as_dict(),
            },
            "session": self.session.stats(),
        }


async def _serve_async(
    service: VerdictService, *, install_signal_handlers: bool = True
) -> None:
    """Run *service* until SIGTERM/SIGINT, then drain."""
    import signal

    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    if install_signal_handlers:
        for signum in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, RuntimeError):
                loop.add_signal_handler(signum, stop.set)
    host, port = await service.start()
    print(f"verdict-service listening on http://{host}:{port}", flush=True)
    await stop.wait()
    print("verdict-service draining", flush=True)
    await service.drain()
    print(
        f"verdict-service drained in "
        f"{service.counters['drain_seconds']:.2f}s",
        flush=True,
    )


def serve(
    config: Optional[ServiceConfig] = None,
    session: Optional[Session] = None,
    **session_defaults: Any,
) -> int:
    """Blocking entry point: serve until SIGTERM/SIGINT, drain, return 0."""
    service = VerdictService(session=session, config=config, **session_defaults)
    asyncio.run(_serve_async(service))
    return 0


class ServiceThread:
    """A service on a background event loop — tests, benchmarks, examples.

    ::

        with ServiceThread(processes=2, config=ServiceConfig(port=0)) as handle:
            client = ServiceClient(*handle.address)
            ...

    ``request_drain()`` triggers the same drain path SIGTERM does;
    leaving the ``with`` block requests it and joins the thread.
    """

    def __init__(
        self,
        service: Optional[VerdictService] = None,
        config: Optional[ServiceConfig] = None,
        **session_defaults: Any,
    ):
        if service is None:
            service = VerdictService(config=config, **session_defaults)
        elif config is not None or session_defaults:
            raise TypeError("pass either service= or config/session defaults")
        self.service = service
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    @property
    def address(self) -> Tuple[str, int]:
        assert self.service.address is not None, "service not started"
        return self.service.address

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(
            target=self._run, name="verdict-service-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.service.address is None:
            raise RuntimeError("verdict service failed to start within 30s")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 — surfaced to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.service.start()
        self._ready.set()
        await self._stop.wait()
        await self.service.drain()

    def request_drain(self) -> None:
        """Trigger the drain from any thread (the SIGTERM path)."""
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)

    def join(self, timeout: Optional[float] = 60.0) -> None:
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.request_drain()
        self.join()
