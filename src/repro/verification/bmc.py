"""The bounded model checker (the paper's CBMC experiments, Sec. 8.4).

Given a bounded concurrent program and a memory model, the checker
decides whether an assertion violation is *reachable*: it enumerates the
program's candidate executions (per-thread bounded paths × read-from
maps × coherence orders), keeps the ones the model allows, and reports
the first allowed execution in which some assertion evaluates to false.

Three backends decide whether a candidate is allowed — the three tools
compared in Tab. X/XI:

* ``"axiomatic"`` — this paper's single-event axiomatic model (the CBMC
  encoding of the present model);
* ``"multi-event"`` — the multi-event axiomatic model of Mador-Haim et
  al. (CAV 2012);
* ``"operational"`` — explicit-state exploration of the intermediate
  machine, standing in for the goto-instrument operational
  instrumentation.

``verify_litmus`` wraps a litmus test as a reachability query (is the
final condition's outcome reachable?), which is how the paper produced
the per-litmus-test timings of Tab. X/XI.

The axiomatic encodings (``"axiomatic"``, ``"multi-event"``) enumerate
through the pruning engine (:mod:`repro.herd.engine`): SC-PER-LOCATION-
violating assignments are cut as whole subtrees, candidates whose
outcome cannot witness the query are never decided, and the search
stops at the first counterexample — the solver-side pruning that makes
the axiomatic encoding fast in the paper's Tab. X.  The
``"operational"`` instrumentation backend deliberately keeps the full
exploration (every candidate of the naive cross product is decided by
the machine search): the tool it stands in for has no axiomatic query
planning.  ``candidates_explored`` and ``allowed_executions`` count the
work each backend actually performed.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro import telemetry as _telemetry
from repro.core.architectures import get_architecture
from repro.core.model import Architecture, Model
from repro.herd.engine import ComboPlan, plans
from repro.herd.enumerate import (
    Candidate,
    candidate_executions,
    candidates_of_combination,
    combination_context,
)
from repro.litmus.ast import LitmusTest
from repro.multi_event import MultiEventModel
from repro.operational import IntermediateMachine
from repro.report import JsonReportMixin
from repro.verification.program import Program
from repro.verification.semantics import ProgramPath, enumerate_program_paths

BACKENDS = ("axiomatic", "multi-event", "operational")


@dataclass
class VerificationResult(JsonReportMixin):
    """Outcome of one verification run."""

    name: str
    model_name: str
    backend: str
    safe: bool
    counterexample: Optional[Candidate]
    violated_assertion: Optional[str]
    candidates_explored: int
    allowed_executions: int
    elapsed_seconds: float

    def describe(self) -> str:
        status = "SAFE" if self.safe else f"UNSAFE ({self.violated_assertion})"
        return (
            f"{self.name} under {self.model_name} [{self.backend}]: {status} "
            f"({self.candidates_explored} candidates, {self.allowed_executions} allowed, "
            f"{self.elapsed_seconds:.3f}s)"
        )

    def to_dict(self) -> dict:
        """JSON-plain summary (the counterexample appears as a flag —
        candidate executions do not serialize)."""
        return {
            "type": "verification",
            "name": self.name,
            "model": self.model_name,
            "backend": self.backend,
            "safe": self.safe,
            "has_counterexample": self.counterexample is not None,
            "violated_assertion": self.violated_assertion,
            "candidates_explored": self.candidates_explored,
            "allowed_executions": self.allowed_executions,
            "elapsed_seconds": self.elapsed_seconds,
        }


class BoundedModelChecker:
    """A reusable checker bound to one memory model and one backend."""

    def __init__(
        self,
        model: Union[str, Architecture, Model],
        backend: str = "axiomatic",
    ):
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
        self.backend = backend
        if isinstance(model, str):
            architecture: Optional[Architecture] = get_architecture(model)
        elif isinstance(model, Architecture):
            architecture = model
        elif isinstance(model, Model):
            architecture = model.architecture
        else:
            raise TypeError(f"cannot interpret {model!r} as a model")
        self.architecture = architecture
        if backend == "axiomatic":
            self._decider = Model(architecture)
            # The pruning engine only emits uniproc-consistent candidates
            # (for this architecture's variant), so the axiom check skips
            # SC PER LOCATION.
            self._prune_variant = (
                architecture.sc_per_location_variant
                if architecture.sc_per_location_variant in ("standard", "llh")
                else "standard"
            )
            self._allows = lambda execution: self._decider.check(
                execution, stop_at_first=True, assume_sc_per_location=True
            ).allowed
        elif backend == "multi-event":
            self._decider = MultiEventModel(architecture)
            # The lifted SC PER LOCATION check is the standard variant,
            # so prune with it and skip the (then provably passing) check.
            self._prune_variant = "standard"
            self._allows = lambda execution: self._decider.check(
                execution, stop_at_first=True, assume_sc_per_location=True
            ).allowed
        else:
            self._decider = IntermediateMachine(architecture)
            # The machine's coWW/coWR/coRW/coRR premises block exactly the
            # standard uniproc violations (Thm. 7.1).
            self._prune_variant = "standard"
            self._allows = self._decider.accepts

    @property
    def model_name(self) -> str:
        return self.architecture.name

    # -- programs -------------------------------------------------------------------

    def verify(self, program: Program) -> VerificationResult:
        """Check every assertion of the program under the memory model."""
        start = time.perf_counter()
        per_thread_paths: List[List[ProgramPath]] = [
            enumerate_program_paths(program, thread)
            for thread in range(program.num_threads())
        ]
        candidates_explored = 0
        allowed = 0
        counterexample: Optional[Candidate] = None
        violated: Optional[str] = None

        for combination in itertools.product(*per_thread_paths):
            failing = [
                outcome.message
                for path in combination
                for outcome in path.assertions
                if not outcome.holds
            ]
            if self.backend == "operational":
                # Full instrumentation-style exploration: decide everything.
                for candidate in candidates_of_combination(
                    [path.execution for path in combination],
                    program.shared_variables(),
                    program.shared,
                ):
                    candidates_explored += 1
                    if not self._allows(candidate.execution):
                        continue
                    allowed += 1
                    if failing and counterexample is None:
                        counterexample = candidate
                        violated = failing[0]
                continue
            context = combination_context(
                [path.execution for path in combination],
                program.shared_variables(),
                program.shared,
            )
            plan = ComboPlan(context, variant=self._prune_variant)
            for leaf in plan.leaves(with_outcomes=False):
                candidates_explored += 1
                candidate = leaf.candidate()
                if not self._allows(candidate.execution):
                    continue
                allowed += 1
                if failing and counterexample is None:
                    counterexample = candidate
                    violated = failing[0]
                    break
            if counterexample is not None:
                break  # reachability proven; the query is decided
        elapsed = time.perf_counter() - start
        self._count_query(candidates_explored, allowed)
        return VerificationResult(
            name=program.name,
            model_name=self.model_name,
            backend=self.backend,
            safe=counterexample is None,
            counterexample=counterexample,
            violated_assertion=violated,
            candidates_explored=candidates_explored,
            allowed_executions=allowed,
            elapsed_seconds=elapsed,
        )

    # -- litmus tests ------------------------------------------------------------------

    def verify_litmus(self, test: LitmusTest) -> VerificationResult:
        """Reachability of the litmus test's final condition (Tab. X/XI).

        The test is "safe" when its target outcome is unreachable under
        the model (the model forbids it), "unsafe" when reachable.
        """
        assert test.condition is not None
        start = time.perf_counter()
        candidates_explored = 0
        allowed = 0
        counterexample: Optional[Candidate] = None
        if self.backend == "operational":
            # Full instrumentation-style exploration: decide everything.
            for candidate in candidate_executions(test):
                candidates_explored += 1
                if not self._allows(candidate.execution):
                    continue
                allowed += 1
                outcome = dict(candidate.outcome(test))
                matches = all(
                    outcome.get(
                        f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
                    )
                    == atom.value
                    for atom in test.condition.atoms
                )
                if matches and counterexample is None:
                    counterexample = candidate
            return self._litmus_result(
                test, counterexample, candidates_explored, allowed, start
            )
        for plan in plans(test, self._prune_variant):
            for leaf in plan.leaves():
                candidates_explored += 1
                observed = dict(leaf.outcome)
                matches = all(
                    observed.get(
                        f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
                    )
                    == atom.value
                    for atom in test.condition.atoms
                )
                if not matches:
                    continue  # cannot witness the query; never decided
                candidate = leaf.candidate()
                if not self._allows(candidate.execution):
                    continue
                allowed += 1
                counterexample = candidate
                break
            if counterexample is not None:
                break
        return self._litmus_result(
            test, counterexample, candidates_explored, allowed, start
        )

    @staticmethod
    def _count_query(candidates_explored: int, allowed: int) -> None:
        registry = _telemetry._ACTIVE
        if registry is not None:
            registry.count("bmc.queries")
            registry.count("bmc.candidates_explored", candidates_explored)
            registry.count("bmc.allowed_executions", allowed)

    def _litmus_result(
        self,
        test: LitmusTest,
        counterexample: Optional[Candidate],
        candidates_explored: int,
        allowed: int,
        start: float,
    ) -> VerificationResult:
        elapsed = time.perf_counter() - start
        self._count_query(candidates_explored, allowed)
        return VerificationResult(
            name=test.name,
            model_name=self.model_name,
            backend=self.backend,
            safe=counterexample is None,
            counterexample=counterexample,
            violated_assertion=str(test.condition) if counterexample is not None else None,
            candidates_explored=candidates_explored,
            allowed_executions=allowed,
            elapsed_seconds=elapsed,
        )


def verify_program(
    program: Program,
    model: Union[str, Architecture, Model] = "power",
    backend: str = "axiomatic",
) -> VerificationResult:
    """Convenience wrapper: verify a program under a model with a backend."""
    return BoundedModelChecker(model, backend).verify(program)


def verify_litmus(
    test: LitmusTest,
    model: Union[str, Architecture, Model] = "power",
    backend: str = "axiomatic",
) -> VerificationResult:
    """Convenience wrapper: check reachability of a litmus test's final state."""
    return BoundedModelChecker(model, backend).verify_litmus(test)


def verify_batch(
    items: Sequence[Union[Program, LitmusTest]],
    model: Union[str, Architecture, Model] = "power",
    backend: str = "axiomatic",
    processes=None,
    chunk_size: int = 4,
    pool=None,
    policy=None,
    errors: Optional[List] = None,
) -> List[VerificationResult]:
    """Verify a batch of programs and/or litmus tests, optionally sharded.

    The batch path of the Tab. X/XI experiments: one checker decides the
    whole batch (constructed once, not per item), and ``processes`` (an
    int, or ``"auto"`` for one worker per core) shards the queries over
    the campaign runtime — the model must then be a *name*, so workers
    re-hydrate and memoize their own checker per process.  Results come
    back in batch order; ``elapsed_seconds`` is measured wherever the
    query actually ran.

    ``policy`` (a :class:`~repro.campaign.SupervisorPolicy`, or the
    pool's own default) makes the sharded batch fault-tolerant:
    quarantined queries are dropped from the results and appended to
    ``errors`` (when the caller passes a list) as
    :class:`~repro.campaign.FailedItem` records.
    """
    from repro.campaign import runner as campaign_runner

    items = list(items)
    sharded = (
        pool is not None or campaign_runner.worker_count(processes) > 1
    ) and isinstance(model, str)
    if sharded and len(items) > 1:
        from repro.campaign.jobs import BmcJob, bmc_chunk

        return campaign_runner.run_sharded(
            bmc_chunk,
            [BmcJob(item, model, backend) for item in items],
            processes=processes,
            chunk_size=chunk_size,
            pool=pool,
            policy=policy,
            errors=errors,
        )

    checker = BoundedModelChecker(model, backend)
    return [
        checker.verify(item)
        if isinstance(item, Program)
        else checker.verify_litmus(item)
        for item in items
    ]
