"""The full-fledged verification examples of Tab. XII.

Three miniatures reproduce the concurrency idioms of the paper's
real-world case studies (Sec. 8.4, Sec. 9.1):

* **PgSQL** — the PostgreSQL worker-latch idiom: one process sets a
  work flag and then the latch; the other sees the latch and must see
  the flag.  A message-passing shape whose correctness on Power needs a
  lightweight fence on the signalling side and a control+isync on the
  waiting side.
* **RCU** — the Linux Read-Copy-Update publish/read idiom of Fig. 40:
  the updater initialises the new structure and publishes it with
  ``lwsync``; the reader dereferences the global pointer, so its second
  access carries an address dependency.
* **Apache** — the worker-queue idiom extracted from the Apache HTTP
  server: a producer fills a slot and advances the tail with a full
  fence; a consumer observes the tail and reads the slot under a
  control+isync.

Each miniature also has a deliberately unfenced variant (used by the
tests and by the fence-placement example) in which the assertion is
violated under Power.
"""

from __future__ import annotations

from typing import Dict, List

from repro.verification.program import (
    AssertStmt,
    Assign,
    BinOp,
    Const,
    FenceStmt,
    IfStmt,
    LoadStmt,
    Program,
    StoreStmt,
    Var,
    WhileStmt,
)


def postgresql_example(fenced: bool = True) -> Program:
    """The PostgreSQL worker-latch idiom (message passing)."""
    signaller = (
        StoreStmt("flag", Const(1)),
        *( (FenceStmt("lwsync"),) if fenced else () ),
        StoreStmt("latch", Const(1)),
    )
    waiter = (
        LoadStmt("latch_seen", "latch"),
        IfStmt(
            BinOp("==", Var("latch_seen"), Const(1)),
            then_branch=(
                *( (FenceStmt("isync"),) if fenced else () ),
                LoadStmt("flag_seen", "flag"),
                AssertStmt(
                    BinOp("==", Var("flag_seen"), Const(1)),
                    message="latch set implies work flag visible",
                ),
            ),
        ),
    )
    return Program(
        name="PgSQL" if fenced else "PgSQL-unfenced",
        shared={"flag": 0, "latch": 0},
        threads=[signaller, waiter],
        description="PostgreSQL worker latch idiom (Sec. 8.4, Sec. 9)",
    )


def rcu_example(fenced: bool = True) -> Program:
    """The RCU publish/read idiom of Fig. 40.

    ``gbl_foo`` holds which generation of the structure is current
    (1 = foo1, 2 = foo2); ``foo2_a`` is the field the updater initialises
    before publishing.  The reader's field load carries an address
    dependency on the pointer load (the IR's rendering of ``p->a``).
    """
    updater = (
        StoreStmt("foo2_a", Const(100)),
        *( (FenceStmt("lwsync"),) if fenced else () ),
        StoreStmt("gbl_foo", Const(2)),
    )
    reader = (
        LoadStmt("p", "gbl_foo"),
        IfStmt(
            BinOp("==", Var("p"), Const(2)),
            then_branch=(
                LoadStmt("a_value", "foo2_a", addr_dep_on="p" if fenced else None),
                AssertStmt(
                    BinOp("==", Var("a_value"), Const(100)),
                    message="a published foo is fully initialised",
                ),
            ),
            else_branch=(
                LoadStmt("a_value", "foo1_a", addr_dep_on="p" if fenced else None),
                AssertStmt(
                    BinOp("==", Var("a_value"), Const(1)),
                    message="the old foo keeps its value",
                ),
            ),
        ),
    )
    return Program(
        name="RCU" if fenced else "RCU-unfenced",
        shared={"gbl_foo": 1, "foo1_a": 1, "foo2_a": 0},
        threads=[updater, reader],
        description="Linux Read-Copy-Update publish/read idiom (Fig. 40)",
    )


def apache_example(fenced: bool = True) -> Program:
    """The Apache worker-queue idiom: fill a slot, publish the tail index."""
    producer = (
        StoreStmt("slot", Const(7)),
        *( (FenceStmt("sync"),) if fenced else () ),
        StoreStmt("tail", Const(1)),
    )
    consumer = (
        LoadStmt("seen_tail", "tail"),
        IfStmt(
            BinOp("==", Var("seen_tail"), Const(1)),
            then_branch=(
                *( (FenceStmt("isync"),) if fenced else () ),
                LoadStmt("item", "slot"),
                AssertStmt(
                    BinOp("==", Var("item"), Const(7)),
                    message="a popped queue entry is fully initialised",
                ),
            ),
        ),
    )
    return Program(
        name="Apache" if fenced else "Apache-unfenced",
        shared={"slot": 0, "tail": 0},
        threads=[producer, consumer],
        description="Apache fdqueue idiom (Sec. 8.4, Sec. 9)",
    )


def dekker_example(fenced: bool = False, fence: str = "sync") -> Program:
    """Dekker-style mutual exclusion (a store-buffering shape).

    Without full fences both threads can enter the critical section at
    the same time on TSO and Power alike; with a full fence (``sync`` on
    Power, ``mfence`` on x86/TSO — pick via ``fence``) it is safe.
    Used by the examples and by the fence-placement demonstration.
    """
    def contender(me: str, other: str) -> tuple:
        return (
            StoreStmt(me, Const(1)),
            *( (FenceStmt(fence),) if fenced else () ),
            LoadStmt("other_flag", other),
            IfStmt(
                BinOp("==", Var("other_flag"), Const(0)),
                then_branch=(
                    # Critical section: record that we entered.
                    LoadStmt("turns", "in_critical"),
                    StoreStmt("in_critical", BinOp("+", Var("turns"), Const(1))),
                    AssertStmt(
                        BinOp("==", Var("turns"), Const(0)),
                        message="at most one thread in the critical section",
                    ),
                ),
            ),
        )

    return Program(
        name="Dekker" if fenced else "Dekker-unfenced",
        shared={"flag0": 0, "flag1": 0, "in_critical": 0},
        threads=[contender("flag0", "flag1"), contender("flag1", "flag0")],
        description="Dekker mutual exclusion (store-buffering shape)",
    )


def all_examples(fenced: bool = True) -> List[Program]:
    """The three Tab. XII case studies."""
    return [postgresql_example(fenced), rcu_example(fenced), apache_example(fenced)]
