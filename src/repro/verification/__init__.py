"""Bounded verification of concurrent programs under weak memory (Sec. 8.4).

The paper implements its model inside the bounded model-checker CBMC and
compares verification times against (a) the operational instrumentation
of goto-instrument and (b) the multi-event axiomatic model.  This package
provides the corresponding substrate:

* :mod:`repro.verification.program` — a small concurrent C-like IR
  (shared/local variables, loads, stores, fences, if/while with bounds,
  assertions);
* :mod:`repro.verification.semantics` — bounded symbolic execution of
  one thread into memory events, dependencies and assertion outcomes;
* :mod:`repro.verification.bmc` — the bounded model checker: enumerate
  the program's candidate executions and decide reachability of an
  assertion violation under a memory model, through one of three
  backends (axiomatic, multi-event axiomatic, operational);
* :mod:`repro.verification.examples` — the PostgreSQL, RCU and Apache
  miniatures used by Tab. XII, plus a litmus-to-program bridge used by
  Tab. X/XI.
"""

from repro.verification.program import (
    Program,
    Assign,
    LoadStmt,
    StoreStmt,
    FenceStmt,
    IfStmt,
    WhileStmt,
    AssertStmt,
    Var,
    Const,
    BinOp,
)
from repro.verification.bmc import (
    BoundedModelChecker,
    VerificationResult,
    verify_batch,
    verify_litmus,
    verify_program,
)
from repro.verification.examples import (
    postgresql_example,
    rcu_example,
    apache_example,
    all_examples,
)

__all__ = [
    "Program",
    "Assign",
    "LoadStmt",
    "StoreStmt",
    "FenceStmt",
    "IfStmt",
    "WhileStmt",
    "AssertStmt",
    "Var",
    "Const",
    "BinOp",
    "BoundedModelChecker",
    "VerificationResult",
    "verify_program",
    "verify_litmus",
    "verify_batch",
    "postgresql_example",
    "rcu_example",
    "apache_example",
    "all_examples",
]
