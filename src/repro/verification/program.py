"""A small concurrent C-like intermediate representation.

Programs are a set of *shared* variables (with initial values), one
statement list per thread, and inline assertions.  The IR deliberately
mirrors what the goto-programs of the paper's tool chain contain after
simplification: every access to a shared variable is an explicit load or
store, locals are thread-private, loops carry an explicit unrolling
bound, and fences are named after the assembly mnemonics.

Expressions range over locals and constants only — reading a shared
variable requires an explicit :class:`LoadStmt` into a local first,
which is what makes the memory events of the program explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union


# -- expressions -----------------------------------------------------------------

class Expr:
    """Base class of expressions over locals and constants."""


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A thread-local variable."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operation; ``op`` is one of ``+ - * == != < <= and or xor``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


_OPERATIONS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    "and": lambda a, b: int(bool(a) and bool(b)),
    "or": lambda a, b: int(bool(a) or bool(b)),
    "xor": lambda a, b: a ^ b,
}


def evaluate(expr: Expr, locals_: Mapping[str, int]) -> int:
    """Evaluate an expression over a concrete local state."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        return int(locals_.get(expr.name, 0))
    if isinstance(expr, BinOp):
        if expr.op not in _OPERATIONS:
            raise ValueError(f"unknown operator {expr.op!r}")
        return _OPERATIONS[expr.op](evaluate(expr.left, locals_), evaluate(expr.right, locals_))
    raise TypeError(f"not an expression: {expr!r}")


def expression_variables(expr: Expr) -> Tuple[str, ...]:
    """The local variables an expression reads (for dependency tracking)."""
    if isinstance(expr, Const):
        return ()
    if isinstance(expr, Var):
        return (expr.name,)
    if isinstance(expr, BinOp):
        return expression_variables(expr.left) + expression_variables(expr.right)
    raise TypeError(f"not an expression: {expr!r}")


def expression_constants(expr: Expr) -> Tuple[int, ...]:
    if isinstance(expr, Const):
        return (expr.value,)
    if isinstance(expr, Var):
        return ()
    if isinstance(expr, BinOp):
        return expression_constants(expr.left) + expression_constants(expr.right)
    raise TypeError(f"not an expression: {expr!r}")


# -- statements ------------------------------------------------------------------

class Statement:
    """Base class of statements."""


@dataclass(frozen=True)
class Assign(Statement):
    """``local := expr`` (no shared access)."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class LoadStmt(Statement):
    """``local := shared`` — a memory read event.

    ``addr_dep_on`` optionally names a local whose value the *address*
    of this access depends on — the IR's rendering of a pointer
    dereference (``p->field`` after ``p = load(gbl)``), which is how the
    RCU read side orders its accesses.
    """

    target: str
    shared: str
    addr_dep_on: Optional[str] = None


@dataclass(frozen=True)
class StoreStmt(Statement):
    """``shared := expr`` — a memory write event."""

    shared: str
    expr: Expr


@dataclass(frozen=True)
class FenceStmt(Statement):
    """A memory fence (sync, lwsync, dmb, mfence, isync, isb...)."""

    name: str


@dataclass(frozen=True)
class IfStmt(Statement):
    condition: Expr
    then_branch: Tuple[Statement, ...] = ()
    else_branch: Tuple[Statement, ...] = ()


@dataclass(frozen=True)
class WhileStmt(Statement):
    """A loop with an explicit unrolling bound (bounded model checking)."""

    condition: Expr
    body: Tuple[Statement, ...]
    bound: int = 2


@dataclass(frozen=True)
class AssertStmt(Statement):
    """An inline safety assertion over the thread's locals."""

    condition: Expr
    message: str = ""


@dataclass
class Program:
    """A whole concurrent program."""

    name: str
    shared: Dict[str, int]
    threads: List[Tuple[Statement, ...]]
    description: str = ""

    def num_threads(self) -> int:
        return len(self.threads)

    def constants(self) -> Tuple[int, ...]:
        """All integer constants occurring in the program (the value domain)."""
        values = set(self.shared.values()) | {0, 1}

        def visit(statements: Sequence[Statement]) -> None:
            for statement in statements:
                if isinstance(statement, Assign):
                    values.update(expression_constants(statement.expr))
                elif isinstance(statement, StoreStmt):
                    values.update(expression_constants(statement.expr))
                elif isinstance(statement, (IfStmt,)):
                    values.update(expression_constants(statement.condition))
                    visit(statement.then_branch)
                    visit(statement.else_branch)
                elif isinstance(statement, WhileStmt):
                    values.update(expression_constants(statement.condition))
                    visit(statement.body)
                elif isinstance(statement, AssertStmt):
                    values.update(expression_constants(statement.condition))

        for thread in self.threads:
            visit(thread)
        return tuple(sorted(values))

    def shared_variables(self) -> Tuple[str, ...]:
        return tuple(sorted(self.shared))
