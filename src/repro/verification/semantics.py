"""Bounded symbolic execution of the C-like IR (one thread at a time).

This mirrors the litmus instruction semantics (Sec. 5) at the level of
the verification IR: every load forks over the program's value domain,
branches are resolved concretely per fork, while-loops are unrolled up
to their bound, and the dependency relations are tracked through the
locals:

* a store whose value expression reads a local that (transitively) holds
  a loaded value carries a *data* dependency;
* a load flagged ``addr_dep_on`` carries an *address* dependency
  (pointer dereference);
* accesses under an ``if``/``while`` whose condition reads loaded values
  carry a *control* dependency (and ctrl+cfence once a control fence has
  been executed).

The result of one fork is a :class:`ProgramPath`: a
:class:`repro.litmus.semantics.ThreadExecution` (so the herd enumeration
machinery applies unchanged) plus the outcomes of the assertions the
path evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.events import Event, MemoryRead, MemoryWrite
from repro.litmus.semantics import ThreadExecution
from repro.verification.program import (
    AssertStmt,
    Assign,
    Expr,
    FenceStmt,
    IfStmt,
    LoadStmt,
    Program,
    Statement,
    StoreStmt,
    WhileStmt,
    evaluate,
    expression_variables,
)

#: Fences that end a control dependency into a ctrl+cfence one.
_CONTROL_FENCES = ("isync", "isb")


@dataclass
class AssertionOutcome:
    """One evaluated assertion."""

    message: str
    holds: bool


@dataclass
class ProgramPath:
    """One bounded execution path of one thread."""

    execution: ThreadExecution
    assertions: List[AssertionOutcome]

    @property
    def violated(self) -> bool:
        return any(not outcome.holds for outcome in self.assertions)


class _NeedValue(Exception):
    """Internal signal: the executor needs one more load-value choice."""


class _ThreadRunner:
    def __init__(self, thread: int, load_values: Tuple[int, ...]):
        self.thread = thread
        self.load_values = load_values
        self.load_index = 0
        self.locals: Dict[str, int] = {}
        self.deps: Dict[str, FrozenSet[Event]] = {}
        self.memory_events: List[Event] = []
        self.addr: List[Tuple[Event, Event]] = []
        self.data: List[Tuple[Event, Event]] = []
        self.ctrl: List[Tuple[Event, Event]] = []
        self.ctrl_cfence: List[Tuple[Event, Event]] = []
        self.fence_markers: List[Tuple[str, int]] = []
        self.control_scopes: List[List] = []  # [deps, fenced] pairs
        self.assertions: List[AssertionOutcome] = []
        self._event_counter = 0

    # -- helpers --------------------------------------------------------------

    def _expr_deps(self, expr: Expr) -> FrozenSet[Event]:
        result: Set[Event] = set()
        for name in expression_variables(expr):
            result |= self.deps.get(name, frozenset())
        return frozenset(result)

    def _new_event(self, action) -> Event:
        event = Event(
            thread=self.thread,
            poi=len(self.memory_events),
            eid=f"T{self.thread}v{self._event_counter}",
            action=action,
        )
        self._event_counter += 1
        self.memory_events.append(event)
        return event

    def _record_control(self, event: Event) -> None:
        for scope in self.control_scopes:
            scope_deps, fenced = scope
            for source in scope_deps:
                self.ctrl.append((source, event))
                if fenced:
                    self.ctrl_cfence.append((source, event))

    # -- statement execution ----------------------------------------------------

    def run(self, statements: Sequence[Statement]) -> None:
        for statement in statements:
            self._run_one(statement)

    def _run_one(self, statement: Statement) -> None:
        if isinstance(statement, Assign):
            self.locals[statement.target] = evaluate(statement.expr, self.locals)
            self.deps[statement.target] = self._expr_deps(statement.expr)
            return

        if isinstance(statement, LoadStmt):
            if self.load_index >= len(self.load_values):
                raise _NeedValue()
            value = self.load_values[self.load_index]
            self.load_index += 1
            event = self._new_event(MemoryRead(statement.shared, value))
            if statement.addr_dep_on is not None:
                for source in self.deps.get(statement.addr_dep_on, frozenset()):
                    self.addr.append((source, event))
            self._record_control(event)
            self.locals[statement.target] = value
            self.deps[statement.target] = frozenset({event})
            return

        if isinstance(statement, StoreStmt):
            value = evaluate(statement.expr, self.locals)
            event = self._new_event(MemoryWrite(statement.shared, value))
            for source in self._expr_deps(statement.expr):
                self.data.append((source, event))
            self._record_control(event)
            return

        if isinstance(statement, FenceStmt):
            if statement.name in _CONTROL_FENCES:
                for scope in self.control_scopes:
                    scope[1] = True
            self.fence_markers.append((statement.name, len(self.memory_events)))
            return

        if isinstance(statement, IfStmt):
            condition = evaluate(statement.condition, self.locals)
            scope = [self._expr_deps(statement.condition), False]
            self.control_scopes.append(scope)
            try:
                if condition:
                    self.run(statement.then_branch)
                else:
                    self.run(statement.else_branch)
            finally:
                self.control_scopes.remove(scope)
            return

        if isinstance(statement, WhileStmt):
            for _ in range(statement.bound):
                if not evaluate(statement.condition, self.locals):
                    return
                scope = [self._expr_deps(statement.condition), False]
                self.control_scopes.append(scope)
                try:
                    self.run(statement.body)
                finally:
                    self.control_scopes.remove(scope)
            return

        if isinstance(statement, AssertStmt):
            holds = bool(evaluate(statement.condition, self.locals))
            self.assertions.append(
                AssertionOutcome(message=statement.message or str(statement.condition), holds=holds)
            )
            return

        raise TypeError(f"unsupported statement {statement!r}")

    # -- result -------------------------------------------------------------------

    def finish(self) -> ProgramPath:
        fences: Dict[str, List[Tuple[Event, Event]]] = {}
        for name, marker in self.fence_markers:
            before = self.memory_events[:marker]
            after = self.memory_events[marker:]
            fences.setdefault(name, []).extend(
                (earlier, later) for earlier in before for later in after
            )
        execution = ThreadExecution(
            thread=self.thread,
            memory_events=self.memory_events,
            addr=self.addr,
            data=self.data,
            ctrl=self.ctrl,
            ctrl_cfence=self.ctrl_cfence,
            fences=fences,
            final_registers=dict(self.locals),
            load_values=tuple(self.load_values[: self.load_index]),
        )
        return ProgramPath(execution=execution, assertions=self.assertions)


def enumerate_program_paths(
    program: Program, thread: int, value_domain: Optional[Sequence[int]] = None
) -> List[ProgramPath]:
    """All bounded execution paths of one thread of the program."""
    domain = sorted(set(value_domain if value_domain is not None else program.constants()))
    if not domain:
        domain = [0]
    statements = program.threads[thread]
    results: List[ProgramPath] = []
    pending: List[Tuple[int, ...]] = [()]
    while pending:
        choices = pending.pop()
        runner = _ThreadRunner(thread, choices)
        try:
            runner.run(statements)
        except _NeedValue:
            pending.extend(choices + (value,) for value in reversed(domain))
            continue
        results.append(runner.finish())
    results.sort(key=lambda path: path.execution.load_values)
    return results
