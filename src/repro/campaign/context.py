"""Per-test simulation contexts: memoizing the front half of the pipeline.

A verdict or simulation query splits into two halves:

1. a **front half** that depends only on the litmus test — enumerate the
   per-thread control/data paths, intern each combination's event
   universe into an :class:`~repro.core.bitrel.EventIndex`, build the
   fixed relations (po, addr/data/ctrl, fences) and the rf×co plan
   skeleton (:class:`~repro.herd.engine.ComboPlan`);
2. a **back half** — the pruned plan walk plus the model's axiom checks
   — that depends on the model.

The front half is roughly half the cost of a verdict query and is
*model-independent*, so repeated queries against the same test — the
fence escalation loop's re-validations, Sec. 8.2-style model
comparisons, Tab. IX engine re-runs, a chip population simulating one
test under several implementation models — redo it for nothing.  A
:class:`SimulationContext` memoizes it per test; a :class:`ContextCache`
keys contexts by *structural* test identity, so a test spliced by the
fence-repair pipeline (new fences, new dependency instructions) never
hits the original's entry: stale relations are unreachable by
construction.

Contexts build lazily at per-combination granularity: a verdict-only
query against a register-only ``exists`` clause interns only the
combinations that can witness the target (mirroring
:func:`repro.herd.engine.target_plans`), and a later full run completes
the remaining combinations on demand.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.herd.engine import BasePlan, ComboPlan, combination_matches_target
from repro.herd.enumerate import CombinationContext, _thread_paths, combination_context
from repro.herd.optimal import OptimalPlan
from repro.litmus.ast import LitmusTest

#: Plan classes by engine name (the plan-based half of ``ENGINES``).
_PLAN_CLASSES = {"pruning": ComboPlan, "optimal": OptimalPlan}

Fingerprint = Tuple


def test_fingerprint(test: LitmusTest) -> Fingerprint:
    """Structural identity of a litmus test.

    Two tests share a fingerprint exactly when they share architecture,
    instruction streams, initial state and final condition — everything
    the front half of the pipeline reads.  The name and doc string are
    deliberately excluded (a repaired test often keeps its ancestor's
    name) and any splice that changes an instruction — a fence, a false
    dependency — changes the fingerprint.
    """
    condition = str(test.condition) if test.condition is not None else None
    return (
        test.arch,
        tuple(
            tuple(instruction.mnemonic() for instruction in thread)
            for thread in test.threads
        ),
        tuple(
            sorted(
                (thread, register, str(value))
                for (thread, register), value in test.init_registers.items()
            )
        ),
        tuple(sorted(test.init_memory.items())),
        condition,
    )


# Not a pytest test function, despite the name.
test_fingerprint.__test__ = False  # type: ignore[attr-defined]


class SimulationContext:
    """The memoized front half of simulating one litmus test.

    Thread paths, per-combination :class:`CombinationContext` objects
    and per-variant :class:`ComboPlan` skeletons are built on first use
    and reused by every subsequent query — under any model, since none
    of them depend on one.  Plan walks themselves stay per-query (a
    :meth:`ComboPlan.leaves` walk carries no state between calls), so a
    cached context may serve any number of sequential queries.
    """

    __slots__ = ("test", "_paths", "_combinations", "_locations", "_contexts", "_plans")

    def __init__(self, test: LitmusTest):
        self.test = test
        self._paths: Optional[List] = None
        self._combinations: Optional[Tuple] = None
        self._locations: Optional[set] = None
        self._contexts: Dict[int, CombinationContext] = {}
        self._plans: Dict[Tuple[str, str, int], BasePlan] = {}

    def combinations(self) -> Tuple:
        """All choices of per-thread paths (enumerated once)."""
        if self._combinations is None:
            self._paths = _thread_paths(self.test)
            self._combinations = tuple(itertools.product(*self._paths))
            self._locations = set(self.test.locations())
        return self._combinations

    def context(self, index: int) -> CombinationContext:
        """The interned context of combination *index* (built once)."""
        context = self._contexts.get(index)
        if context is None:
            combination = self.combinations()[index]
            context = combination_context(
                combination, self._locations, self.test.init_memory
            )
            self._contexts[index] = context
        return context

    def plan(
        self, variant: str, index: int, engine: str = "pruning"
    ) -> BasePlan:
        """The plan of combination *index* for one SC-PER-LOCATION
        variant and one plan-based engine (built once per pair).  For
        ``engine="optimal"`` the cached plan also carries its solved
        per-location walks, so repeated queries — under any model —
        skip the exploration entirely."""
        key = (engine, variant, index)
        plan = self._plans.get(key)
        if plan is None:
            plan_class = _PLAN_CLASSES[engine]
            plan = plan_class(self.context(index), self.test, variant)
            self._plans[key] = plan
        return plan

    def plans(
        self, variant: str = "standard", engine: str = "pruning"
    ) -> Iterator[BasePlan]:
        """Every combination's plan — the cached analogue of
        :func:`repro.herd.engine.plans` (or, for ``engine="optimal"``,
        :func:`repro.herd.optimal.plans`)."""
        for index in range(len(self.combinations())):
            yield self.plan(variant, index, engine)

    def target_plans(
        self, variant: str = "standard", engine: str = "pruning"
    ) -> Iterator[BasePlan]:
        """Plans of the combinations that could witness the target — the
        cached analogue of :func:`repro.herd.engine.target_plans`,
        filtering with the same register-atom predicate."""
        condition = self.test.condition
        assert condition is not None, "target_plans needs a final condition"
        for index, combination in enumerate(self.combinations()):
            if not combination_matches_target(combination, condition):
                continue
            yield self.plan(variant, index, engine)


class ContextCache:
    """An LRU cache of :class:`SimulationContext`, keyed structurally.

    ``capacity`` bounds memory in long campaigns: the fence escalation
    loop creates a fresh spliced test per candidate fence set, and each
    spliced test gets (correctly) its own context; evicting the least
    recently used entries keeps the working set to the tests actually
    being re-queried.  ``ttl`` (seconds, ``None`` for no expiry) adds an
    *idle* bound for long-lived owners like the verdict service: an
    entry untouched for ``ttl`` seconds counts as evicted and is rebuilt
    on its next use.  ``hits``/``misses`` feed the benchmarks.
    """

    def __init__(self, capacity: Optional[int] = 256, ttl: Optional[float] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive or None, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._entries: "OrderedDict[Fingerprint, SimulationContext]" = OrderedDict()
        self._stamps: Dict[Fingerprint, float] = {}
        from repro.telemetry import CacheStats

        #: counters on the unified interface; ``hits``/``misses``/
        #: ``evictions`` remain readable as attributes (backcompat).
        self._stats = CacheStats("context", entries=lambda: len(self._entries))

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._stats.hits

    @property
    def misses(self) -> int:
        return self._stats.misses

    @property
    def evictions(self) -> int:
        return self._stats.evictions

    @property
    def expirations(self) -> int:
        return self._stats.expirations

    def get(self, test: LitmusTest) -> SimulationContext:
        """The context of *test*, building (and caching) it on a miss."""
        import time

        key = test_fingerprint(test)
        now = time.monotonic()
        context = self._entries.get(key)
        if context is not None and self.ttl is not None:
            if now - self._stamps.get(key, now) > self.ttl:
                # Idle-expired: the entry counts as evicted (and is
                # attributed as an expiration), the access as a miss,
                # and the context is rebuilt below.
                del self._entries[key]
                self._stamps.pop(key, None)
                self._stats.evict()
                self._stats.expire()
                context = None
        if context is not None:
            self._stats.hit()
            self._entries.move_to_end(key)
            self._stamps[key] = now
            return context
        self._stats.miss()
        context = SimulationContext(test)
        self._entries[key] = context
        self._stamps[key] = now
        if self.capacity is not None and len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self._stamps.pop(evicted, None)
            self._stats.evict()
        return context

    def invalidate(self, test: LitmusTest) -> bool:
        """Drop *test*'s entry; True when one was present."""
        key = test_fingerprint(test)
        self._stamps.pop(key, None)
        return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        self._entries.clear()
        self._stamps.clear()

    def cache_stats(self):
        """The cache's :class:`repro.telemetry.CacheStats`."""
        return self._stats

    def stats(self) -> Dict[str, int]:
        """Backcompat probe: the pre-telemetry dictionary shape."""
        return {
            "entries": len(self._entries),
            "hits": self._stats.hits,
            "misses": self._stats.misses,
            "evictions": self._stats.evictions,
            "expirations": self._stats.expirations,
        }
