"""Deterministic fault injection for the campaign runtime (tests only).

The fault-tolerance guarantees of :mod:`repro.campaign.supervisor` —
self-healing pools, chunk deadlines, poison-item bisection — are only
worth committing if they are exercised by real worker crashes, hangs
and unpicklable exceptions.  This module provides the injectable hooks
the test-suite and benchmarks use to stage exactly those failures at an
exactly chosen item:

* :class:`FaultSpec` — a picklable description of one fault: *what*
  (``crash`` via ``os._exit``, ``hang`` via a long sleep, ``raise`` a
  plain exception, ``raise_unpicklable`` an exception carrying a
  closure) and *where* (the item label it fires on).  With
  ``only_in_worker=True`` (the default) the fault never fires in the
  installing process, so ``on_error="serial_retry"`` demonstrably heals
  worker-only faults.
* :func:`install` / :func:`uninstall` — process-global plan, inherited
  by forked campaign workers, consulted by every driver chunk worker in
  :mod:`repro.campaign.jobs` through the zero-cost :func:`trip` hook.
* The spec can also ride a worker ``payload`` (it pickles fine) for
  runner-level tests that use the synthetic chunk workers below.

Nothing in the production path depends on this module: ``trip`` is one
module-global ``None`` check per job while no plan is installed.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional

__all__ = [
    "FaultInjected",
    "FaultSpec",
    "UnpicklableFault",
    "echo_chunk",
    "install",
    "installed",
    "trip",
    "uninstall",
]


class FaultInjected(RuntimeError):
    """The plain injected exception (picklable like any RuntimeError)."""


class UnpicklableFault(RuntimeError):
    """An injected exception that can never cross a process boundary.

    Carries a closure, so ``pickle`` refuses the instance — exactly the
    shape that kills a bare ``multiprocessing.Pool``'s result machinery
    and that the supervisor's error envelopes must flatten to strings.
    """

    def __init__(self, label: str):
        super().__init__(f"unpicklable fault injected on {label!r}")
        self.label = label
        self.payload = lambda: label  # the unpicklable part


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: fire *kind* when *target* is processed.

    ``kind`` is ``"crash"`` (``os._exit(exit_code)``, simulating an
    OOM-kill or native segfault), ``"hang"`` (sleep ``hang_seconds``,
    simulating a runaway job), ``"raise"`` (a picklable
    :class:`FaultInjected`) or ``"raise_unpicklable"`` (an
    :class:`UnpicklableFault`).  ``target`` is the item label as
    :func:`repro.campaign.supervisor.item_label` renders it (a test
    name, a package name, or ``repr`` for plain values).

    ``only_in_worker`` keys the fault on the process: ``parent_pid`` is
    recorded at construction time (in the installing process), and the
    fault only fires in *other* processes — forked campaign workers —
    so in-process serial retries of the same item succeed.
    """

    kind: str
    target: str
    only_in_worker: bool = True
    parent_pid: int = field(default_factory=os.getpid)
    hang_seconds: float = 300.0
    exit_code: int = 77

    def __post_init__(self):
        if self.kind not in ("crash", "hang", "raise", "raise_unpicklable"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def maybe_fire(self, label: str) -> None:
        """Fire the fault if *label* is the target (and we are a worker)."""
        if label != self.target:
            return
        if self.only_in_worker and os.getpid() == self.parent_pid:
            return
        if self.kind == "crash":
            os._exit(self.exit_code)
        if self.kind == "hang":
            time.sleep(self.hang_seconds)
            return
        if self.kind == "raise":
            raise FaultInjected(f"fault injected on {label!r}")
        raise UnpicklableFault(label)


#: The process-global fault plan, or None (the production state).
#: Forked campaign workers inherit whatever was installed at fork time.
_PLAN: Optional[FaultSpec] = None


def install(spec: FaultSpec) -> FaultSpec:
    """Install *spec* as the process-global fault plan."""
    global _PLAN
    _PLAN = spec
    return spec


def uninstall() -> None:
    """Remove the fault plan (tests must always do this on teardown)."""
    global _PLAN
    _PLAN = None


def installed() -> Optional[FaultSpec]:
    return _PLAN


def trip(label: str) -> None:
    """The per-job hook the driver chunk workers call.

    One global read and a ``None`` check while no plan is installed —
    cheap enough to sit inside every chunk worker's item loop.
    """
    plan = _PLAN
    if plan is not None:
        plan.maybe_fire(label)


# -- synthetic chunk workers for runner-level tests and benchmarks --------------


def echo_chunk(chunk: List[Any], payload: Any = None) -> List[Any]:
    """Worker: double each item; fire the payload's fault spec if given.

    ``payload`` may be a :class:`FaultSpec` (shipped picklably with the
    chunk), letting runner-level tests inject faults without touching
    the process-global plan; any other payload is ignored, so the same
    worker serves the unpicklable-payload fallback tests.
    """
    results = []
    for item in chunk:
        if isinstance(payload, FaultSpec):
            payload.maybe_fire(repr(item))
        trip(repr(item))
        results.append(item * 2)
    return results


def busy_chunk(chunk: List[Any], payload: Any = None) -> List[Any]:
    """Worker: a small fixed CPU spin per item (benchmark healthy path)."""
    spins = payload or 2_000
    results = []
    for item in chunk:
        total = 0
        for i in range(spins):
            total += (item + i) * (item ^ i)
        results.append(total)
    return results
