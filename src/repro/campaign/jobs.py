"""Picklable job specs and per-process warm state for campaign workers.

Worker processes cannot receive live models or simulators: architecture
definitions and simulated chips carry closures, so job specs ship the
litmus test (plain dataclasses pickle fine) plus *names* — a model name,
chip names, a backend — and the worker re-hydrates heavyweight objects
on first use, memoizing them in module-level per-process state:

* :func:`process_simulator` — one resolved :class:`Simulator` per
  (model name, engine) per process;
* :func:`process_context_cache` — one :class:`ContextCache` per process,
  so every verdict a worker runs against a test it has seen before skips
  the front half of the pipeline;
* checkers and chips are memoized the same way by the driver-specific
  chunk workers below.

The chunk workers are module-level functions (multiprocessing pickles
them by reference) with lazy driver imports, keeping ``repro.campaign``
import-light and free of circular imports — driver modules import the
runtime, never the reverse at import time.

Every worker consults :func:`repro.campaign.faults.trip` once per job —
a module-global ``None`` check in production, and the seam the
fault-tolerance test-suite uses to stage worker crashes, hangs and
unpicklable exceptions at an exactly chosen item.  Exceptions escaping
a chunk are captured at the chunk boundary by
:func:`repro.campaign.supervisor.guarded_call` into picklable error
envelopes, so nothing a job raises can wedge the pool machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.campaign import faults as _faults
from repro.campaign.context import ContextCache
from repro.herd.simulator import Simulator
from repro.litmus.ast import LitmusTest

# -- per-process warm state -----------------------------------------------------

_SIMULATORS: Dict[Tuple[str, str], Simulator] = {}
_CHECKERS: Dict[Tuple[str, str], Any] = {}
_CHIPS: Dict[str, Any] = {}
_CONTEXT_CACHE: Optional[ContextCache] = None


def process_simulator(model_name: str, engine: str = "auto") -> Simulator:
    """This process's simulator for a model name (resolved once)."""
    key = (model_name, engine)
    simulator = _SIMULATORS.get(key)
    if simulator is None:
        simulator = Simulator(model_name, engine=engine)
        _SIMULATORS[key] = simulator
    return simulator


def process_context_cache() -> ContextCache:
    """This process's per-test simulation-context cache."""
    global _CONTEXT_CACHE
    if _CONTEXT_CACHE is None:
        _CONTEXT_CACHE = ContextCache()
    return _CONTEXT_CACHE


def _process_chip(name: str):
    chip = _CHIPS.get(name)
    if chip is None:
        from repro.hardware.chips import chip_by_name

        chip = chip_by_name(name)
        _CHIPS[name] = chip
    return chip


def _process_checker(model_name: str, backend: str):
    key = (model_name, backend)
    checker = _CHECKERS.get(key)
    if checker is None:
        from repro.verification.bmc import BoundedModelChecker

        checker = BoundedModelChecker(model_name, backend)
        _CHECKERS[key] = checker
    return checker


# -- job specs ------------------------------------------------------------------


@dataclass(frozen=True)
class VerdictJob:
    """Allow/Forbid of one test's target outcome under one model."""

    test: LitmusTest
    model_name: str
    engine: str = "auto"


@dataclass(frozen=True)
class VerdictPairJob:
    """Allow/Forbid of one test under *several* models at once.

    The model-comparison driver's unit of work: the front half of the
    pipeline (paths, event interning, plan skeletons) is model
    independent, so one :class:`~repro.campaign.context.SimulationContext`
    serves every model's verdict — a paired sweep pays it once where two
    independent sweeps pay it twice.  ``models`` are names (workers
    re-hydrate them); two entries for an A-vs-B comparison, more for
    ``-violates/-satisfies`` style multi-model filters.
    """

    test: LitmusTest
    models: Tuple[str, ...]
    engine: str = "auto"


@dataclass(frozen=True)
class SimulateJob:
    """One full simulation summary (no candidate objects — those do not
    cross process boundaries; ``Session.simulate`` keeps
    ``keep_candidates`` queries serial)."""

    test: LitmusTest
    model_name: str
    engine: str = "auto"
    until: Optional[str] = None


@dataclass(frozen=True)
class HardwareJob:
    """One test of a hardware-testing campaign: model summary plus chip
    observations (chips re-hydrated by name, RNG seeds drawn by the
    parent so sharded campaigns observe exactly what serial ones do)."""

    test: LitmusTest
    model_name: str
    chip_names: Tuple[str, ...]
    iterations: int
    seeds: Tuple[int, ...]


@dataclass(frozen=True)
class MoleJob:
    """The mole census of one package (a list of IR programs)."""

    package: str
    programs: Tuple[Any, ...]
    max_cycle_length: int = 6


@dataclass(frozen=True)
class BmcJob:
    """One bounded-model-checking query (an IR program or a litmus test)."""

    item: Any
    model_name: str
    backend: str = "axiomatic"


# -- chunk workers --------------------------------------------------------------


def verdict_chunk(chunk: List[VerdictJob], payload: Any = None) -> List[Tuple[str, str]]:
    """Worker: ``(test name, verdict)`` for each job of the chunk."""
    results = []
    cache = process_context_cache()
    for job in chunk:
        _faults.trip(job.test.name)
        simulator = process_simulator(job.model_name, job.engine)
        verdict = simulator.verdict(job.test, context=cache.get(job.test))
        results.append((job.test.name, verdict))
    return results


def verdict_pair_chunk(
    chunk: List[VerdictPairJob], payload: Any = None
) -> List[Tuple[str, Tuple[str, ...]]]:
    """Worker: ``(test name, verdict per model)`` for each job.

    One context lookup per job, shared by every model's verdict — the
    paired-sweep economy the comparison driver is built on.
    """
    results = []
    cache = process_context_cache()
    for job in chunk:
        _faults.trip(job.test.name)
        context = cache.get(job.test)
        verdicts = tuple(
            process_simulator(name, job.engine).verdict(job.test, context=context)
            for name in job.models
        )
        results.append((job.test.name, verdicts))
    return results


def simulate_chunk(chunk: List[SimulateJob], payload: Any = None):
    """Worker: one full :class:`SimulationResult` per job of the chunk."""
    results = []
    cache = process_context_cache()
    for job in chunk:
        _faults.trip(job.test.name)
        simulator = process_simulator(job.model_name, job.engine)
        results.append(
            simulator.run(job.test, until=job.until, context=cache.get(job.test))
        )
    return results


def repair_chunk(chunk: List[LitmusTest], payload: Tuple[str, dict, str]):
    """Worker: repair a chunk of tests with a process-local memo cache.

    ``payload`` is ``(model name, cycle-cache snapshot, placement
    strategy)``; the worker repairs against a local copy of the snapshot
    and returns it with the reports so the parent can merge what this
    chunk learned.  ILP chunks behave exactly like greedy ones — the
    strategy only changes which planner each repair runs.
    """
    from repro.fences.campaign import repair_one

    model_name, cache_snapshot, strategy = payload
    local = dict(cache_snapshot)
    simulator_model = process_simulator(model_name).model
    cache = process_context_cache()
    reports = []
    for test in chunk:
        _faults.trip(test.name)
        reports.append(
            repair_one(
                test, simulator_model, local, context_cache=cache,
                strategy=strategy,
            )
        )
    return reports, local


def hardware_chunk(chunk: List[HardwareJob], payload: Any = None):
    """Worker: observe each test on its chip population."""
    from repro.hardware.testing import observe_test

    results = []
    cache = process_context_cache()
    for job in chunk:
        _faults.trip(job.test.name)
        simulator = process_simulator(job.model_name)
        chips = [_process_chip(name) for name in job.chip_names]
        results.append(
            observe_test(
                simulator,
                job.test,
                chips,
                job.iterations,
                job.seeds,
                context_cache=cache,
            )
        )
    return results


def mole_chunk(chunk: List[MoleJob], payload: Any = None):
    """Worker: ``(package, static cycles)`` for each package of the chunk."""
    from repro.mole.analysis import find_cycles

    results = []
    for job in chunk:
        _faults.trip(job.package)
        cycles: list = []
        for program in job.programs:
            cycles.extend(find_cycles(program, job.max_cycle_length))
        results.append((job.package, cycles))
    return results


def bmc_chunk(chunk: List[BmcJob], payload: Any = None):
    """Worker: one :class:`VerificationResult` per query of the chunk."""
    from repro.verification.program import Program

    results = []
    for job in chunk:
        _faults.trip(getattr(job.item, "name", repr(job.item)))
        checker = _process_checker(job.model_name, job.backend)
        if isinstance(job.item, Program):
            results.append(checker.verify(job.item))
        else:
            results.append(checker.verify_litmus(job.item))
    return results
