"""Supervised campaign execution: deadlines, retries, quarantine, self-heal.

The bare ``multiprocessing.Pool`` behind :mod:`repro.campaign.runner`
has production-hostile failure modes: a worker killed by the OOM killer
(or a segfault in a native extension) silently loses its in-flight task
and the batch wedges forever; an exception whose instance cannot be
pickled kills the pool's result machinery; a runaway job (an ILP
branch-and-bound that never bounds) hangs the whole campaign.  Large
hardware-testing campaigns are exactly where partial failure is routine,
so this module puts a **supervisor** between the chunked batch and the
OS processes:

* :class:`SupervisedPool` manages raw ``multiprocessing.Process``
  workers over duplex pipes.  The parent waits on connections *and*
  process sentinels, so a dying worker is detected the instant the OS
  reaps it — the task is rescheduled and a fresh worker is spawned in
  its place (the pool **self-heals** instead of wedging).
* Every chunk attempt runs under an optional wall-clock **deadline**
  (``SupervisorPolicy.chunk_timeout``); overdue workers are killed,
  respawned, and the chunk is retried.
* Failures are retried with bounded **exponential backoff**; a chunk
  that keeps failing is **bisected** down to the single poison item,
  so one bad job never takes its chunk-mates' results with it.
* Worker-side exceptions are captured at the chunk boundary into
  **picklable error envelopes** (:class:`ErrorEnvelope` — type name,
  ``repr``, traceback text), so even exceptions carrying unpicklable
  state cross the process boundary as plain strings.
* What happens to the poison item is the caller's
  :class:`SupervisorPolicy` — ``on_error="quarantine"`` records a
  structured :class:`FailedItem` and completes the batch,
  ``"serial_retry"`` re-runs the item in-process as graceful
  degradation, ``"raise"`` raises :class:`PoisonItemError`.

Every event (retry, timeout, worker death, respawn, bisection,
quarantine, backoff seconds) is counted into the pool's plain counter
dict *and* the active telemetry registry, so ``Session.stats()`` and
traces see the same story.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import multiprocessing.connection
import os
import pickle
import threading
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import telemetry as _telemetry
from repro.report import JsonReportMixin

__all__ = [
    "CampaignPicklingWarning",
    "ErrorEnvelope",
    "ErrorRing",
    "FailedItem",
    "PoisonItemError",
    "SupervisedPool",
    "SupervisorPolicy",
    "item_label",
    "new_counters",
]


class CampaignPicklingWarning(UserWarning):
    """A job payload could not be pickled; the work ran in-process."""

#: Supervisor event counters, all plain ints (``backoff_seconds`` is a
#: float total) — the shape of ``CampaignPool.counters`` and of the
#: ``supervisor`` subtree of ``Session.stats()``.
COUNTER_NAMES = (
    "retries",
    "timeouts",
    "worker_deaths",
    "respawns",
    "bisections",
    "quarantined",
    "serial_retries",
    "unpicklable_payloads",
    "deadline_exhausted",
    "aborted",
)


def new_counters() -> Dict[str, float]:
    counters: Dict[str, float] = {name: 0 for name in COUNTER_NAMES}
    counters["backoff_seconds"] = 0.0
    return counters


def _bump(counters: Optional[Dict[str, float]], name: str, amount: float = 1) -> None:
    """Count one supervisor event into the plain dict and telemetry."""
    if counters is not None:
        counters[name] = counters.get(name, 0) + amount
    if name == "backoff_seconds":
        _telemetry.observe("campaign.supervisor.backoff_seconds", amount)
    else:
        _telemetry.count(f"campaign.supervisor.{name}", int(amount))


@dataclass(frozen=True)
class SupervisorPolicy:
    """How a supervised campaign treats misbehaving chunks.

    ``chunk_timeout`` is the wall-clock budget of one chunk *attempt*
    in seconds (``None`` disables deadlines — hangs then wait forever);
    ``max_retries`` bounds re-submissions of one task beyond its first
    attempt; retries back off exponentially from ``backoff`` seconds by
    ``backoff_factor`` up to ``max_backoff``.  ``on_error`` decides the
    fate of a poison item once bisection has isolated it:

    * ``"quarantine"`` — drop it from the results, record a
      :class:`FailedItem`, complete the batch;
    * ``"serial_retry"`` — re-run the item in-process in the parent
      (graceful degradation: transient worker-side faults heal, and the
      surviving sharded==serial guarantee extends to the retried item);
      if it fails again, quarantine it;
    * ``"raise"`` — raise :class:`PoisonItemError` after the batch
      drains.

    ``grace`` is the shutdown grace period: ``close()`` asks workers to
    finish and waits this long before escalating to ``terminate()``.

    ``deadline`` is an absolute ``time.monotonic()`` point bounding the
    whole *batch* (``None`` for unbounded): once it passes, no retry or
    bisection round is scheduled, undispatched chunks fail fast as
    ``timeout`` quarantines, and in-flight attempts are capped at it.
    Build deadline-carrying policies with :meth:`with_budget` — the
    verdict service derives one per request from the client's budget.
    """

    chunk_timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    on_error: str = "quarantine"
    grace: float = 5.0
    deadline: Optional[float] = None

    def __post_init__(self):
        if self.on_error not in ("quarantine", "raise", "serial_retry"):
            raise ValueError(
                f"on_error must be 'quarantine', 'raise' or 'serial_retry', "
                f"got {self.on_error!r}"
            )
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError(f"chunk_timeout must be positive, got {self.chunk_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def backoff_seconds(self, attempt: int) -> float:
        """The backoff before re-submission number *attempt* (1-based)."""
        return min(
            self.backoff * self.backoff_factor ** max(attempt - 1, 0),
            self.max_backoff,
        )

    def with_budget(self, seconds: float) -> "SupervisorPolicy":
        """This policy bounded to *seconds* of wall clock from now.

        Sets :attr:`deadline` to ``time.monotonic() + seconds`` and caps
        :attr:`chunk_timeout` at the budget, so a single slow chunk can
        never pin the batch past it.  The budget is floored at a few
        milliseconds — an already-blown budget still produces a policy
        that fails every chunk fast rather than a validation error.
        """
        seconds = max(float(seconds), 0.005)
        timeout = (
            seconds
            if self.chunk_timeout is None
            else min(self.chunk_timeout, seconds)
        )
        return dataclasses.replace(
            self,
            chunk_timeout=timeout,
            deadline=time.monotonic() + seconds,
        )

    def expired(self, now: Optional[float] = None) -> bool:
        """Has the batch deadline passed (always False when unbounded)?"""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def as_dict(self) -> Dict[str, Any]:
        return {
            "chunk_timeout": self.chunk_timeout,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
            "backoff_factor": self.backoff_factor,
            "max_backoff": self.max_backoff,
            "on_error": self.on_error,
            "grace": self.grace,
            "deadline": self.deadline,
        }


class ErrorEnvelope:
    """A worker-side failure flattened to strings — always picklable.

    Built at the chunk boundary in the worker process, so exceptions
    whose instances cannot cross a pipe (closures, locks, sockets in
    ``args``) still come home as their ``repr`` plus traceback text.
    """

    __slots__ = ("kind", "exc_type", "error", "traceback")

    def __init__(self, kind: str, exc_type: str, error: str, tb: str):
        self.kind = kind
        self.exc_type = exc_type
        self.error = error
        self.traceback = tb

    @classmethod
    def from_exception(cls, exc: BaseException, kind: str = "exception") -> "ErrorEnvelope":
        try:
            rendered = repr(exc)
        except Exception:
            rendered = f"<unreprable {type(exc).__name__}>"
        return cls(kind, type(exc).__name__, rendered, traceback.format_exc())

    def __repr__(self) -> str:
        return f"ErrorEnvelope({self.kind}: {self.error})"


@dataclass(frozen=True)
class FailedItem(JsonReportMixin):
    """One quarantined job: everything a report needs, all JSON-plain.

    ``item`` is the job's label (test name, package name, or ``repr``),
    ``phase`` the chunk worker it failed in (e.g. ``repair_chunk``),
    ``kind`` how it failed (``exception`` / ``timeout`` /
    ``worker-death`` / ``unpicklable``), ``error`` the exception's
    ``repr`` (or the death/timeout description), ``traceback`` the
    worker-side traceback text (empty for deaths and timeouts), and
    ``attempts`` how many times the supervisor tried before giving up.
    """

    item: str
    phase: str
    kind: str
    error: str
    traceback: str = ""
    attempts: int = 1

    def describe(self) -> str:
        return (
            f"{self.item} [{self.phase}]: {self.kind} after "
            f"{self.attempts} attempt{'s' if self.attempts != 1 else ''} — {self.error}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "failed-item",
            "item": self.item,
            "phase": self.phase,
            "kind": self.kind,
            "error": self.error,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }


class PoisonItemError(RuntimeError):
    """Raised under ``on_error="raise"`` once a poison item is isolated."""

    def __init__(self, failures: Sequence[FailedItem]):
        self.failures = list(failures)
        names = ", ".join(failure.item for failure in self.failures)
        super().__init__(
            f"{len(self.failures)} campaign item(s) failed terminally: {names} "
            f"(first: {self.failures[0].describe() if self.failures else '?'})"
        )


class ErrorRing:
    """A bounded error sink: the newest *capacity* records, drops counted.

    Campaign verbs append :class:`FailedItem` records to their caller's
    ``errors`` sink; a long-lived owner (``Session.last_errors``, the
    verdict service) that never pruned it would leak memory across
    batches.  The ring keeps only the most recent *capacity* records,
    counts everything it sheds in :attr:`dropped` (which survives
    :meth:`clear`, so ``stats()`` reports lifetime drops), and behaves
    like the list the drivers expect: ``append``/``extend``, slicing,
    iteration, and equality against lists and tuples.
    """

    __slots__ = ("_items", "dropped")

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._items: deque = deque(maxlen=capacity)
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._items.maxlen or 0

    def append(self, item: Any) -> None:
        if len(self._items) == self._items.maxlen:
            self.dropped += 1
        self._items.append(item)

    def extend(self, items: Sequence[Any]) -> None:
        for item in items:
            self.append(item)

    def clear(self) -> None:
        """Forget the records (the lifetime drop count survives)."""
        self._items.clear()

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __getitem__(self, index):
        return list(self._items)[index]

    def __eq__(self, other: Any):
        if isinstance(other, (ErrorRing, list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"ErrorRing({list(self._items)!r}, capacity={self.capacity}, "
            f"dropped={self.dropped})"
        )


def item_label(item: Any) -> str:
    """A human-readable label for a job spec (test / package / repr)."""
    for attribute in ("test", "item", "program"):
        inner = getattr(item, attribute, None)
        name = getattr(inner, "name", None)
        if name is not None:
            return str(name)
    for attribute in ("name", "package"):
        name = getattr(item, attribute, None)
        if isinstance(name, str):
            return name
    return repr(item)


def is_pickling_error(exc: BaseException) -> bool:
    """Does *exc* look like a pickling failure (not a worker bug)?"""
    if isinstance(exc, pickle.PicklingError):
        return True
    return isinstance(exc, (TypeError, AttributeError, NotImplementedError)) and (
        "pickle" in str(exc).lower()
    )


def find_unpicklable(obj: Any, path: str = "payload") -> Optional[Tuple[str, str, str]]:
    """Locate the deepest unpicklable leaf of *obj*.

    Returns ``(path, repr(leaf), reason)`` — e.g. ``("payload[2].fn",
    "<function <lambda> ...>", "Can't pickle ...")`` — or ``None`` when
    *obj* pickles fine.  Used to turn a raw ``PicklingError`` from deep
    inside the pool machinery into an error naming the offending object.
    """
    try:
        pickle.dumps(obj)
        return None
    except Exception as exc:
        reason = str(exc)
    if isinstance(obj, (list, tuple, set, frozenset)):
        for index, entry in enumerate(obj):
            found = find_unpicklable(entry, f"{path}[{index}]")
            if found is not None:
                return found
    elif isinstance(obj, dict):
        for key, value in obj.items():
            found = find_unpicklable(key, f"{path} key {key!r}")
            if found is not None:
                return found
            found = find_unpicklable(value, f"{path}[{key!r}]")
            if found is not None:
                return found
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        for f in dataclasses.fields(obj):
            found = find_unpicklable(getattr(obj, f.name), f"{path}.{f.name}")
            if found is not None:
                return found
    try:
        rendered = repr(obj)
    except Exception:
        rendered = f"<unreprable {type(obj).__name__}>"
    return (path, rendered, reason)


def warn_unpicklable(args: Any, exc: BaseException) -> None:
    """Warn, naming the exact object that would not pickle."""
    found = find_unpicklable(args, path="job")
    if found is not None:
        path, rendered, reason = found
        detail = f"{path} = {rendered} ({reason})"
    else:  # pragma: no cover — transient pickling failure
        detail = str(exc)
    warnings.warn(
        f"campaign job payload failed to pickle — {detail}; "
        f"running it serially in-process instead",
        CampaignPicklingWarning,
        stacklevel=3,
    )


def guarded_call(func: Callable, args: Tuple[Any, ...]) -> Tuple[str, Any]:
    """Run ``func(*args)`` capturing any exception into an envelope.

    The chunk boundary: returns ``("ok", value)`` or ``("err",
    ErrorEnvelope)``.  Both shapes are picklable whenever the value is,
    and the envelope is picklable *always*.
    """
    try:
        return ("ok", func(*args))
    except Exception as exc:  # noqa: BLE001 — the whole point is capture
        return ("err", ErrorEnvelope.from_exception(exc))


def _worker_main(conn) -> None:
    """The supervised worker loop: recv task, run guarded, send outcome.

    Module-level warm state (:mod:`repro.campaign.jobs`) accumulates
    across tasks exactly as under ``multiprocessing.Pool``.  A ``None``
    task is the shutdown sentinel.  Results are pickled *before* any
    bytes hit the pipe (``Connection.send`` serializes first), so an
    unpicklable result never corrupts the stream — it is re-sent as an
    error envelope instead.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        task_id, func, args = task
        outcome = guarded_call(func, args)
        try:
            conn.send((task_id, outcome))
        except Exception as exc:  # unpicklable result value
            envelope = ErrorEnvelope.from_exception(exc, kind="unpicklable")
            try:
                conn.send((task_id, ("err", envelope)))
            except Exception:
                os._exit(81)  # cannot report at all: die, supervisor reschedules
    try:
        conn.close()
    except Exception:
        pass


@dataclass
class _Task:
    """One schedulable slice of an original chunk."""

    chunk_index: int
    offset: int
    items: List[Any]
    attempts: int = 0
    ready_at: float = 0.0
    #: of the most recent failed attempt: (kind, error text, traceback).
    last_error: Tuple[str, str, str] = ("", "", "")


@dataclass
class _Failure:
    """A terminally failed single item, pre-policy."""

    chunk_index: int
    offset: int
    item: Any
    kind: str
    error: str
    traceback: str
    attempts: int


class _Worker:
    """One supervised process plus its duplex pipe."""

    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None


class SupervisedPool:
    """Self-healing worker processes executing chunk tasks under a policy.

    Workers persist across :meth:`run_tasks` calls (their module-level
    warm state — simulators, context caches — carries over, exactly
    like :class:`repro.campaign.CampaignPool`), and dead or overdue
    workers are replaced on the spot.  ``counters`` (shared with the
    owning :class:`~repro.campaign.CampaignPool` when there is one)
    accumulates every supervision event.
    """

    def __init__(self, workers: int, counters: Optional[Dict[str, float]] = None):
        self.workers = max(int(workers), 1)
        self.counters = counters if counters is not None else new_counters()
        if "fork" in multiprocessing.get_all_start_methods():
            self._ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover — non-POSIX fallback
            self._ctx = multiprocessing.get_context()
        self._members: List[_Worker] = []
        self._task_ids = 0
        self._close_lock = threading.Lock()
        self._abort = threading.Event()

    # -- process lifecycle --------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True,
            name="campaign-supervised-worker",
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _ensure_members(self) -> None:
        while len(self._members) < self.workers:
            self._members.append(self._spawn())

    def _discard(self, worker: _Worker) -> None:
        """Kill and forget one worker (its replacement spawns lazily)."""
        try:
            worker.conn.close()
        except Exception:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(1.0)
            if worker.process.is_alive():  # pragma: no cover — stubborn child
                worker.process.kill()
                worker.process.join(1.0)
        if worker in self._members:
            self._members.remove(worker)

    def _replace(self, worker: _Worker) -> None:
        self._discard(worker)
        self._members.append(self._spawn())
        _bump(self.counters, "respawns")

    def abort(self) -> None:
        """Ask a :meth:`run_tasks` loop in another thread to stop now.

        The supervise loop notices within one wait quantum, kills its
        in-flight workers, fails every unfinished item as ``aborted``
        and returns — unblocking a thread stuck on a long batch so the
        owner can :meth:`close`.  Safe to call with no batch running
        (the flag is cleared when the next batch starts).
        """
        self._abort.set()

    def close(self, grace: float = 5.0) -> None:
        """Graceful shutdown: sentinel, bounded join, then terminate.

        Workers drain their current task and exit on the sentinel, so
        caches flush and in-flight telemetry snapshots are not lost;
        only workers still alive after *grace* seconds are terminated.
        Idempotent and thread-safe: repeated or concurrent ``close``
        calls (including with members already dead) are no-ops beyond
        the first — each worker is torn down exactly once.
        """
        with self._close_lock:
            members, self._members = self._members, []
        for worker in members:
            try:
                worker.conn.send(None)
            except Exception:
                pass
        deadline = time.monotonic() + max(grace, 0.0)
        for worker in members:
            worker.process.join(max(deadline - time.monotonic(), 0.0))
        for worker in members:
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(1.0)
                if worker.process.is_alive():  # pragma: no cover
                    worker.process.kill()
                    worker.process.join(1.0)
            try:
                worker.conn.close()
            except Exception:
                pass

    @property
    def alive(self) -> int:
        return sum(1 for worker in self._members if worker.process.is_alive())

    # -- the supervise loop -------------------------------------------------------

    def run_tasks(
        self,
        run_worker: Callable,
        make_args: Callable[[List[Any]], Tuple[Any, ...]],
        chunks: Sequence[List[Any]],
        policy: SupervisorPolicy,
    ) -> Tuple[List[Tuple[int, int, Any]], List[_Failure]]:
        """Execute every chunk under supervision.

        Returns ``(successes, failures)``: ``successes`` holds
        ``(chunk_index, offset, outcome)`` triples for every completed
        (possibly bisected) slice, ``failures`` one :class:`_Failure`
        per poison item that exhausted its retries.  Policy application
        (quarantine / serial retry / raise) is the caller's job — this
        loop only isolates.
        """
        self._abort.clear()
        pending: List[_Task] = [
            _Task(index, 0, list(chunk)) for index, chunk in enumerate(chunks)
        ]
        successes: List[Tuple[int, int, Any]] = []
        failures: List[_Failure] = []
        in_flight: Dict[int, _Worker] = {}
        warned_unpicklable = False

        def record_terminal(task: _Task, kind: str, error: str, tb: str) -> None:
            """Every item of *task* has terminally failed — one record each."""
            for position, item in enumerate(task.items):
                failures.append(
                    _Failure(
                        chunk_index=task.chunk_index,
                        offset=task.offset + position,
                        item=item,
                        kind=kind,
                        error=error,
                        traceback=tb,
                        attempts=max(task.attempts, 1),
                    )
                )

        def fail_task(task: _Task, kind: str, error: str, tb: str) -> None:
            """Retry, bisect, or record terminal failure for *task*."""
            task.attempts += 1
            task.last_error = (kind, error, tb)
            if kind == "timeout":
                _bump(self.counters, "timeouts")
            elif kind == "worker-death":
                _bump(self.counters, "worker_deaths")
            if task.attempts <= policy.max_retries:
                backoff = policy.backoff_seconds(task.attempts)
                ready_at = time.monotonic() + backoff
                # A retry that could not even start before the batch
                # deadline is no retry at all — fall through to bisect
                # (which dispatches immediately) or terminal failure.
                if policy.deadline is None or ready_at < policy.deadline:
                    _bump(self.counters, "retries")
                    _bump(self.counters, "backoff_seconds", backoff)
                    task.ready_at = ready_at
                    pending.append(task)
                    return
            if len(task.items) > 1 and not policy.expired():
                # Terminal for the chunk, not yet for any item: bisect.
                _bump(self.counters, "bisections")
                middle = len(task.items) // 2
                pending.append(
                    _Task(task.chunk_index, task.offset, task.items[:middle])
                )
                pending.append(
                    _Task(
                        task.chunk_index,
                        task.offset + middle,
                        task.items[middle:],
                    )
                )
                return
            record_terminal(task, kind, error, tb)

        def handle_outcome(task: _Task, outcome: Tuple[str, Any]) -> None:
            status, value = outcome
            if status == "ok":
                successes.append((task.chunk_index, task.offset, value))
            else:
                fail_task(task, value.kind, value.error, value.traceback)

        def assign(worker: _Worker, task: _Task) -> bool:
            task_id = self._task_ids = self._task_ids + 1
            try:
                worker.conn.send((task_id, run_worker, make_args(task.items)))
            except Exception as exc:
                if is_pickling_error(exc):
                    # The payload cannot reach any worker: run the slice
                    # here, in-process, and say exactly what would not
                    # pickle.
                    nonlocal warned_unpicklable
                    _bump(self.counters, "unpicklable_payloads")
                    if not warned_unpicklable:
                        warned_unpicklable = True
                        warn_unpicklable(make_args(task.items), exc)
                    handle_outcome(task, guarded_call(run_worker, make_args(task.items)))
                    return False
                # A broken pipe: the worker died between tasks.  Replace
                # it and put the task back — no attempt consumed.
                self._replace(worker)
                pending.append(task)
                return False
            worker.task = task
            attempt_deadline = (
                time.monotonic() + policy.chunk_timeout
                if policy.chunk_timeout is not None
                else None
            )
            if policy.deadline is not None:
                attempt_deadline = (
                    policy.deadline
                    if attempt_deadline is None
                    else min(attempt_deadline, policy.deadline)
                )
            worker.deadline = attempt_deadline
            in_flight[id(worker)] = worker
            return True

        def reap(worker: _Worker, kind: str, error: str) -> None:
            """A busy worker died or went overdue: salvage, heal, retry."""
            task = worker.task
            in_flight.pop(id(worker), None)
            # The worker may have finished and died *after* sending: a
            # completed outcome in the pipe still counts.
            salvaged = False
            try:
                if worker.conn.poll(0):
                    _, outcome = worker.conn.recv()
                    salvaged = True
            except Exception:
                salvaged = False
            self._replace(worker)
            if salvaged and task is not None:
                handle_outcome(task, outcome)
            elif task is not None:
                fail_task(task, kind, error, "")

        while pending or in_flight:
            now = time.monotonic()
            # -- abort: another thread asked this batch to stop now -----------
            if self._abort.is_set():
                aborted = sum(len(task.items) for task in pending) + sum(
                    len(worker.task.items)
                    for worker in in_flight.values()
                    if worker.task is not None
                )
                _bump(self.counters, "aborted", aborted)
                for worker in list(in_flight.values()):
                    task = worker.task
                    in_flight.pop(id(worker), None)
                    self._discard(worker)
                    if task is not None:
                        record_terminal(
                            task, "aborted", "batch aborted by pool shutdown", ""
                        )
                for task in pending:
                    record_terminal(
                        task, "aborted", "batch aborted by pool shutdown", ""
                    )
                pending.clear()
                break
            # -- batch deadline: fail undispatched work fast ------------------
            if policy.deadline is not None and now >= policy.deadline and pending:
                _bump(
                    self.counters,
                    "deadline_exhausted",
                    sum(len(task.items) for task in pending),
                )
                for task in pending:
                    record_terminal(
                        task,
                        "timeout",
                        "batch deadline exhausted before dispatch",
                        "",
                    )
                pending.clear()
                if not in_flight:
                    break
            # -- assign ready tasks to idle, healthy workers ------------------
            if pending:
                # A worker that died while idle (OOM-killed, crashed
                # between batches) still occupies a member slot: without
                # this sweep it is never dispatched to and never
                # replaced — silent capacity loss.
                for worker in list(self._members):
                    if worker.task is None and not worker.process.is_alive():
                        _bump(self.counters, "worker_deaths")
                        self._replace(worker)
                self._ensure_members()
                idle = [
                    worker
                    for worker in self._members
                    if worker.task is None and worker.process.is_alive()
                ]
                for worker in idle:
                    ready_index = next(
                        (
                            index
                            for index, task in enumerate(pending)
                            if task.ready_at <= now
                        ),
                        None,
                    )
                    if ready_index is None:
                        break
                    assign(worker, pending.pop(ready_index))

            if not in_flight:
                if pending:
                    # Everything is backing off: sleep until the soonest.
                    delay = max(
                        min(task.ready_at for task in pending) - time.monotonic(),
                        0.0,
                    )
                    time.sleep(min(delay, 0.1))
                continue

            # -- wait for a result, a death, or the next deadline -------------
            wait_timeout = 0.2
            deadlines = [
                worker.deadline
                for worker in in_flight.values()
                if worker.deadline is not None
            ]
            if deadlines:
                wait_timeout = min(
                    wait_timeout, max(min(deadlines) - time.monotonic(), 0.0)
                )
            # Only backoffs still in the future bound the wait: a task
            # that is ready but queued behind busy workers has nothing
            # to wake up for until a result, death or deadline fires —
            # clamping on it would spin the parent and steal CPU from
            # the very workers it is waiting on.
            future_backoffs = [
                task.ready_at for task in pending if task.ready_at > now
            ]
            if future_backoffs:
                wait_timeout = min(
                    wait_timeout, max(min(future_backoffs) - time.monotonic(), 0.0)
                )
            watched = {}
            for worker in in_flight.values():
                watched[worker.conn] = worker
                watched[worker.process.sentinel] = worker
            ready = multiprocessing.connection.wait(
                list(watched), timeout=max(wait_timeout, 0.0)
            )

            seen = set()
            for handle in ready:
                worker = watched[handle]
                if id(worker) in seen or id(worker) not in in_flight:
                    continue
                seen.add(id(worker))
                if handle is worker.conn:
                    task = worker.task
                    try:
                        _, outcome = worker.conn.recv()
                    except (EOFError, OSError):
                        reap(
                            worker,
                            "worker-death",
                            "worker closed its pipe mid-task",
                        )
                        continue
                    worker.task = None
                    worker.deadline = None
                    in_flight.pop(id(worker), None)
                    if task is not None:
                        handle_outcome(task, outcome)
                else:  # the process sentinel fired: the worker is gone
                    code = worker.process.exitcode
                    reap(worker, "worker-death", f"worker died with exitcode {code}")

            # -- deadline sweep ----------------------------------------------
            now = time.monotonic()
            for worker in list(in_flight.values()):
                if worker.deadline is not None and now >= worker.deadline:
                    budget = policy.chunk_timeout
                    description = (
                        f"chunk exceeded its {budget:g}s deadline"
                        if budget is not None
                        else "chunk exceeded the batch deadline"
                    )
                    in_flight.pop(id(worker), None)
                    task = worker.task
                    self._replace(worker)
                    if task is not None:
                        fail_task(task, "timeout", description, "")

        return successes, failures
