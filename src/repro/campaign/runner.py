"""Process-sharded execution of homogeneous campaign jobs.

Every campaign driver (fence repair, hardware testing, mole censuses,
diy family sweeps, BMC batches) boils down to the same shape: a list of
independent jobs, each producing one result, whose order must be
preserved.  This module is the one fan-out layer they all share:

* jobs are grouped into **chunks** so that scheduling and pickling
  overhead amortizes over several jobs and per-worker warm state
  (resolved models, simulators, per-test simulation contexts — see
  :mod:`repro.campaign.jobs`) gets reused within and across chunks;
* the worker callable must be a picklable module-level function taking
  ``(chunk, payload)`` — a list of job specs plus one static payload
  shared by every chunk — and returning one result per job (or
  ``(results, extra)`` when a ``merge`` callback collects per-chunk
  side state, e.g. the fence campaign's cycle-signature memo);
* results come back in submission order, so sharded campaigns report
  exactly what the serial path reports;
* the **serial fallback** (``processes`` of ``None``/``0``/``1``, a
  single-core machine under ``"auto"``, or a single job) runs the very
  same worker over the very same chunks in-process, so its results are
  byte-identical to the sharded path by construction;
* an optional :class:`~repro.campaign.supervisor.SupervisorPolicy`
  routes the batch through the **supervised** execution layer
  (:mod:`repro.campaign.supervisor`): per-chunk deadlines, bounded
  retry with backoff, worker-death detection with automatic respawn,
  and poison-item bisection with quarantine — the batch then completes
  with ``errors=`` populated instead of wedging or raising.

``CampaignPool`` keeps one pool alive across several batches: worker
processes then retain their warm state (per-process simulators and
context caches) between calls, which is what escalation-style loops
want.  Pools shut down gracefully — ``close()``/``__exit__`` ask the
workers to drain and only ``terminate()`` after a grace period — so
worker caches flush and in-flight telemetry snapshots are not lost.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import telemetry as _telemetry
from repro.campaign import supervisor as _supervisor
from repro.campaign.supervisor import (
    FailedItem,
    PoisonItemError,
    SupervisedPool,
    SupervisorPolicy,
    guarded_call,
    is_pickling_error,
    item_label,
    warn_unpicklable,
)
from repro.telemetry.metrics import Metrics

#: Default number of jobs per shard; small enough to balance uneven job
#: costs, large enough to amortize pickling and scheduling.
DEFAULT_CHUNK_SIZE = 8

#: Default shutdown grace period (seconds) before terminate() escalation.
DEFAULT_GRACE = 5.0

Processes = Union[None, int, str]


def _instrumented_chunk(
    worker: Callable[[List[Any], Any], Any],
    chunk: List[Any],
    payload: Any,
    submitted: float,
) -> Tuple[Any, Any]:
    """Run one chunk under a fresh telemetry registry and snapshot it.

    The cross-process aggregation seam: when the parent has telemetry
    enabled, every shard runs through this wrapper — in a worker process
    *or* in-process on the serial fallback, so sharded and serial runs
    produce identical per-chunk snapshots by construction.  The fresh
    registry is installed for the duration of the chunk (shadowing any
    registry a forked worker inherited, which would otherwise accumulate
    invisibly in the child), the chunk's wall time and queue wait are
    recorded into it, and the snapshot rides home next to the results
    for the parent to merge in submission order.
    """
    started = time.time()
    registry = Metrics()
    previous = _telemetry._swap(registry)
    try:
        t0 = time.perf_counter()
        outcome = worker(chunk, payload)
        elapsed = time.perf_counter() - t0
    finally:
        _telemetry._swap(previous)
    registry.count("campaign.chunks")
    registry.count("campaign.jobs", len(chunk))
    registry.observe("campaign.chunk_seconds", elapsed)
    registry.observe("campaign.queue_wait_seconds", max(started - submitted, 0.0))
    return outcome, registry.snapshot()


def worker_count(processes: Processes = None) -> int:
    """Resolve a ``processes`` argument to an effective worker count.

    ``None``, ``0`` and ``1`` mean serial; ``"auto"`` means one worker
    per CPU core (which on a single-core machine is again serial).
    """
    if processes in (None, 0, 1):
        return 1
    if processes == "auto":
        return os.cpu_count() or 1
    count = int(processes)  # type: ignore[arg-type]
    if count < 0:
        raise ValueError(f"negative worker count: {processes!r}")
    return max(count, 1)


def chunked(jobs: Sequence[Any], chunk_size: int) -> List[List[Any]]:
    """Split *jobs* into order-preserving chunks of at most *chunk_size*."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [list(jobs[i : i + chunk_size]) for i in range(0, len(jobs), chunk_size)]


def _serial_supervised(
    run_worker: Callable,
    make_args: Callable[[List[Any]], Tuple[Any, ...]],
    chunks: Sequence[List[Any]],
    counters: Dict[str, float],
    policy: Optional[SupervisorPolicy] = None,
):
    """The supervised semantics without processes: capture and bisect.

    Exceptions are caught at the chunk boundary and bisected down to
    the poison item exactly as the pooled supervisor does, so a policy
    behaves the same when the pool degrades to the serial fallback.
    Crashes and hangs cannot be contained in-process — those need real
    worker processes.  A batch ``policy.deadline`` is honoured at slice
    boundaries: a running chunk cannot be interrupted in-process, but
    once the deadline passes every remaining slice fails fast as a
    ``timeout`` instead of being executed.
    """
    successes: List[Tuple[int, int, Any]] = []
    failures: List[_supervisor._Failure] = []

    def run_slice(chunk_index: int, offset: int, items: List[Any]) -> None:
        if policy is not None and policy.expired():
            _supervisor._bump(counters, "deadline_exhausted", len(items))
            for position, item in enumerate(items):
                failures.append(
                    _supervisor._Failure(
                        chunk_index=chunk_index,
                        offset=offset + position,
                        item=item,
                        kind="timeout",
                        error="batch deadline exhausted before dispatch",
                        traceback="",
                        attempts=1,
                    )
                )
            return
        status, value = guarded_call(run_worker, make_args(items))
        if status == "ok":
            successes.append((chunk_index, offset, value))
        elif len(items) > 1:
            _supervisor._bump(counters, "bisections")
            middle = len(items) // 2
            run_slice(chunk_index, offset, items[:middle])
            run_slice(chunk_index, offset + middle, items[middle:])
        else:
            failures.append(
                _supervisor._Failure(
                    chunk_index=chunk_index,
                    offset=offset,
                    item=items[0],
                    kind=value.kind,
                    error=value.error,
                    traceback=value.traceback,
                    attempts=1,
                )
            )

    for index, chunk in enumerate(chunks):
        run_slice(index, 0, list(chunk))
    return successes, failures


def _run_supervised(
    run_worker: Callable,
    make_args: Callable[[List[Any]], Tuple[Any, ...]],
    chunks: Sequence[List[Any]],
    policy: SupervisorPolicy,
    *,
    processes: Processes,
    pool: Optional["CampaignPool"],
    phase: str,
) -> Tuple[List[Tuple[int, int, Any]], List[FailedItem]]:
    """Run *chunks* under supervision and apply the error policy.

    Returns ``(successes, failed_items)`` where successes are
    ``(chunk_index, offset, outcome)`` triples covering every surviving
    slice.  ``on_error="serial_retry"`` failures are re-run here, in
    the parent; whatever still fails is quarantined (or raised, under
    ``on_error="raise"``).
    """
    counters = pool.counters if pool is not None else _supervisor.new_counters()
    effective = pool.workers if pool is not None else worker_count(processes)

    # A single chunk only stays in-process when there is no warm pool:
    # spawning workers for one chunk buys nothing, but with a pool
    # already up, real workers are what make a chunk *killable* — a
    # hang or crash in a single-chunk batch must still be contained
    # (the verdict service counts on this for one-test requests).
    if effective <= 1 or (pool is None and len(chunks) <= 1):
        successes, failures = _serial_supervised(
            run_worker, make_args, chunks, counters, policy
        )
    elif pool is not None:
        successes, failures = pool.supervised().run_tasks(
            run_worker, make_args, chunks, policy
        )
    else:
        ephemeral = SupervisedPool(min(effective, len(chunks)), counters)
        try:
            successes, failures = ephemeral.run_tasks(
                run_worker, make_args, chunks, policy
            )
        finally:
            ephemeral.close(policy.grace)

    failed_items: List[FailedItem] = []
    for failure in failures:
        attempts = failure.attempts
        if policy.on_error == "serial_retry" and not policy.expired():
            # Graceful degradation: one in-process attempt in the
            # parent.  Worker-only faults (a chunk that OOMs the worker,
            # an environment-dependent crash) heal here, preserving the
            # sharded==serial guarantee for the retried item too.  A
            # blown batch deadline skips the retry — re-running poison
            # items serially is exactly how a deadline gets pinned.
            _supervisor._bump(counters, "serial_retries")
            attempts += 1
            status, value = guarded_call(run_worker, make_args([failure.item]))
            if status == "ok":
                successes.append((failure.chunk_index, failure.offset, value))
                continue
            failure.kind = value.kind
            failure.error = value.error
            failure.traceback = value.traceback
        failed_items.append(
            FailedItem(
                item=item_label(failure.item),
                phase=phase,
                kind=failure.kind,
                error=failure.error,
                traceback=failure.traceback,
                attempts=attempts,
            )
        )

    if failed_items and policy.on_error == "raise":
        raise PoisonItemError(failed_items)
    if failed_items:
        _supervisor._bump(counters, "quarantined", len(failed_items))
    return successes, failed_items


def run_sharded(
    worker: Callable[[List[Any], Any], Any],
    jobs: Sequence[Any],
    *,
    payload: Any = None,
    processes: Processes = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    merge: Optional[Callable[[Any], None]] = None,
    pool: Optional["CampaignPool"] = None,
    policy: Optional[SupervisorPolicy] = None,
    errors: Optional[List[FailedItem]] = None,
) -> List[Any]:
    """Run *worker* over *jobs* in chunks, results in submission order.

    ``worker(chunk, payload)`` must return a list with one result per
    job of the chunk — or, when ``merge`` is given, a ``(results,
    extra)`` pair; ``merge(extra)`` is then invoked in submission order
    as chunks complete (the fence campaign merges worker-local memo
    caches this way).  ``pool`` reuses an open :class:`CampaignPool`
    instead of spinning a fresh one.

    ``policy`` (or the pool's default policy) routes the batch through
    the supervised layer: chunk deadlines, bounded retry, worker
    respawn, and poison-item bisection.  Quarantined jobs are dropped
    from the results — in submission order, so the surviving results
    equal a clean serial run over the surviving jobs — and reported as
    :class:`~repro.campaign.supervisor.FailedItem` records appended to
    the caller's ``errors`` list.  Without a policy, failures propagate
    exactly as the bare pool raised them.

    A payload that fails to pickle no longer surfaces as a raw
    ``PicklingError`` from inside the pool machinery: the batch falls
    back to in-process serial execution with a
    :class:`~repro.campaign.supervisor.CampaignPicklingWarning` naming
    the offending object.

    When a telemetry registry is active in the calling process, every
    shard runs through :func:`_instrumented_chunk`: chunk workers
    snapshot a chunk-local registry (counters, spans, cache traffic,
    chunk wall time and queue wait) and the parent folds the snapshots
    back into its registry in submission order — so ``Session.stats()``
    sees one coherent tree across process boundaries, and sharded
    counter totals equal the serial run's.  With telemetry disabled
    this path is byte-identical to the uninstrumented one.
    """
    jobs = list(jobs)
    parent_registry = _telemetry._ACTIVE
    batch_t0 = time.perf_counter()
    if policy is None and pool is not None:
        policy = pool.policy
    chunks = chunked(jobs, chunk_size)

    if parent_registry is not None:
        submitted = time.time()
        run_worker: Callable = _instrumented_chunk

        def make_args(items: List[Any]) -> Tuple[Any, ...]:
            return (worker, items, payload, submitted)

    else:
        run_worker = worker

        def make_args(items: List[Any]) -> Tuple[Any, ...]:
            return (items, payload)

    if policy is not None:
        effective_workers = pool.workers if pool is not None else worker_count(processes)
        successes, failed_items = _run_supervised(
            run_worker,
            make_args,
            chunks,
            policy,
            processes=processes,
            pool=pool,
            phase=getattr(worker, "__name__", str(worker)),
        )
        if errors is not None:
            errors.extend(failed_items)
        per_chunk: Dict[int, List[Tuple[int, Any]]] = {}
        for chunk_index, offset, outcome in successes:
            per_chunk.setdefault(chunk_index, []).append((offset, outcome))
        outcomes = [
            outcome
            for chunk_index in range(len(chunks))
            for _, outcome in sorted(per_chunk.get(chunk_index, ()))
        ]
    else:
        shards = [make_args(chunk) for chunk in chunks]
        if pool is not None:
            effective_workers = pool.workers
            outcomes = pool._starmap(run_worker, shards)
        else:
            effective_workers = worker_count(processes)
            # A single shard has no parallelism to win: run it in-process
            # rather than paying for a one-worker pool.
            if effective_workers <= 1 or len(shards) <= 1:
                outcomes = [run_worker(*shard) for shard in shards]
            else:
                try:
                    with multiprocessing.Pool(
                        min(effective_workers, len(shards))
                    ) as mp_pool:
                        outcomes = mp_pool.starmap(run_worker, shards, chunksize=1)
                except Exception as exc:
                    if not is_pickling_error(exc):
                        raise
                    warn_unpicklable(shards, exc)
                    outcomes = [run_worker(*shard) for shard in shards]

    results: List[Any] = []
    busy_seconds = 0.0
    for outcome in outcomes:
        if parent_registry is not None:
            outcome, snapshot = outcome
            busy_seconds += snapshot.histograms.get(
                "campaign.chunk_seconds", {}
            ).get("total", 0.0)
            parent_registry.merge(snapshot)
        if merge is not None:
            chunk_results, extra = outcome
            merge(extra)
        else:
            chunk_results = outcome
        results.extend(chunk_results)
    if parent_registry is not None:
        batch_seconds = time.perf_counter() - batch_t0
        parent_registry.count("campaign.batches")
        parent_registry.observe("campaign.batch_seconds", batch_seconds)
        workers_used = max(1, min(effective_workers, len(chunks)))
        if batch_seconds > 0:
            parent_registry.set_gauge(
                "campaign.worker_utilization",
                min(1.0, busy_seconds / (batch_seconds * workers_used)),
            )
    return results


def _graceful_mp_close(mp_pool, grace: float) -> None:
    """``close()`` + bounded ``join()``, falling back to ``terminate()``.

    ``multiprocessing.Pool.join`` has no timeout, so the join runs in a
    daemon thread and the pool is terminated only if the workers have
    not drained within *grace* seconds.
    """
    mp_pool.close()
    joiner = threading.Thread(target=mp_pool.join, daemon=True)
    joiner.start()
    joiner.join(max(grace, 0.0))
    if joiner.is_alive():
        mp_pool.terminate()
        joiner.join(1.0)


class CampaignPool:
    """A reusable worker pool for multi-batch campaigns.

    The pool's processes survive between :meth:`run` calls, so the
    per-process warm state built by :mod:`repro.campaign.jobs` (resolved
    models, simulators, per-test simulation contexts) carries over from
    one batch to the next — exactly what escalation loops and repeated
    model comparisons want.  With an effective worker count of one the
    pool degrades to the serial fallback and spawns nothing.

    ``policy`` (a :class:`~repro.campaign.supervisor.SupervisorPolicy`)
    makes every batch on this pool supervised: chunk deadlines, bounded
    retry, automatic respawn of dead workers, poison-item quarantine.
    ``counters`` accumulates the supervision events across batches (and
    across worker respawns) — the ``supervisor`` subtree of
    ``Session.stats()`` reads it.

    Use as a context manager::

        with CampaignPool("auto") as pool:
            first = pool.run(worker, jobs_a, payload=...)
            second = pool.run(worker, jobs_b, payload=...)
    """

    def __init__(
        self,
        processes: Processes = "auto",
        policy: Optional[SupervisorPolicy] = None,
    ):
        self.workers = worker_count(processes)
        self.policy = policy
        self.counters: Dict[str, float] = _supervisor.new_counters()
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._supervised: Optional[SupervisedPool] = None
        self._close_lock = threading.Lock()

    def __enter__(self) -> "CampaignPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, grace: Optional[float] = None) -> None:
        """Drain and shut down the workers, gracefully then forcefully.

        Workers get *grace* seconds (default: the policy's, else 5) to
        finish their in-flight chunk and exit; stragglers are
        terminated.  The supervision counters survive ``close`` — a
        pool restarted by a later batch keeps accumulating into them.

        Idempotent and thread-safe: repeated or concurrent ``close``
        calls — including after a worker has already died — tear each
        pool down exactly once and simply return afterwards, so every
        shutdown path (``__exit__``, a service drain, an ``atexit``
        hook) may call it without coordinating.
        """
        if grace is None:
            grace = self.policy.grace if self.policy is not None else DEFAULT_GRACE
        with self._close_lock:
            mp_pool, self._pool = self._pool, None
            supervised, self._supervised = self._supervised, None
        if mp_pool is not None:
            _graceful_mp_close(mp_pool, grace)
        if supervised is not None:
            supervised.close(grace)

    def abort(self) -> None:
        """Abort the supervised batch running on this pool, if any.

        Thread-safe: meant to be called from a watchdog (the verdict
        service's drain-window expiry) while another thread is blocked
        inside :meth:`run` — that batch fails its unfinished items as
        ``aborted`` and returns promptly, after which :meth:`close` can
        shut the workers down without waiting out a long chunk.
        """
        supervised = self._supervised
        if supervised is not None:
            supervised.abort()

    def supervised(self) -> SupervisedPool:
        """This pool's supervised process group (started lazily)."""
        with self._close_lock:
            if self._supervised is None:
                self._supervised = SupervisedPool(self.workers, self.counters)
            return self._supervised

    def stats(self) -> Dict[str, float]:
        """A copy of the supervision counters (zeros when never used)."""
        return dict(self.counters)

    def _starmap(
        self, worker: Callable, shards: List[Tuple[Any, ...]]
    ) -> List[Any]:
        if self.workers <= 1 or len(shards) <= 1:
            return [worker(*shard) for shard in shards]
        if self._pool is None:
            self._pool = multiprocessing.Pool(self.workers)
        try:
            return self._pool.starmap(worker, shards, chunksize=1)
        except Exception as exc:
            if not is_pickling_error(exc):
                raise
            # A half-submitted batch can leave the pool machinery in an
            # undefined state: drop it (a later batch respawns lazily)
            # and run this batch here, naming the unpicklable object.
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            warn_unpicklable(shards, exc)
            return [worker(*shard) for shard in shards]

    def run(
        self,
        worker: Callable[[List[Any], Any], Any],
        jobs: Sequence[Any],
        *,
        payload: Any = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        merge: Optional[Callable[[Any], None]] = None,
        policy: Optional[SupervisorPolicy] = None,
        errors: Optional[List[FailedItem]] = None,
    ) -> List[Any]:
        """:func:`run_sharded` on this pool's (persistent) workers."""
        return run_sharded(
            worker,
            jobs,
            payload=payload,
            chunk_size=chunk_size,
            merge=merge,
            pool=self,
            policy=policy,
            errors=errors,
        )
