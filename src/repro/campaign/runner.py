"""Process-sharded execution of homogeneous campaign jobs.

Every campaign driver (fence repair, hardware testing, mole censuses,
diy family sweeps, BMC batches) boils down to the same shape: a list of
independent jobs, each producing one result, whose order must be
preserved.  This module is the one fan-out layer they all share:

* jobs are grouped into **chunks** so that scheduling and pickling
  overhead amortizes over several jobs and per-worker warm state
  (resolved models, simulators, per-test simulation contexts — see
  :mod:`repro.campaign.jobs`) gets reused within and across chunks;
* the worker callable must be a picklable module-level function taking
  ``(chunk, payload)`` — a list of job specs plus one static payload
  shared by every chunk — and returning one result per job (or
  ``(results, extra)`` when a ``merge`` callback collects per-chunk
  side state, e.g. the fence campaign's cycle-signature memo);
* results come back in submission order, so sharded campaigns report
  exactly what the serial path reports;
* the **serial fallback** (``processes`` of ``None``/``0``/``1``, a
  single-core machine under ``"auto"``, or a single job) runs the very
  same worker over the very same chunks in-process, so its results are
  byte-identical to the sharded path by construction.

``CampaignPool`` keeps one pool alive across several batches: worker
processes then retain their warm state (per-process simulators and
context caches) between calls, which is what escalation-style loops
want.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

#: Default number of jobs per shard; small enough to balance uneven job
#: costs, large enough to amortize pickling and scheduling.
DEFAULT_CHUNK_SIZE = 8

Processes = Union[None, int, str]


def worker_count(processes: Processes = None) -> int:
    """Resolve a ``processes`` argument to an effective worker count.

    ``None``, ``0`` and ``1`` mean serial; ``"auto"`` means one worker
    per CPU core (which on a single-core machine is again serial).
    """
    if processes in (None, 0, 1):
        return 1
    if processes == "auto":
        return os.cpu_count() or 1
    count = int(processes)  # type: ignore[arg-type]
    if count < 0:
        raise ValueError(f"negative worker count: {processes!r}")
    return max(count, 1)


def chunked(jobs: Sequence[Any], chunk_size: int) -> List[List[Any]]:
    """Split *jobs* into order-preserving chunks of at most *chunk_size*."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [list(jobs[i : i + chunk_size]) for i in range(0, len(jobs), chunk_size)]


def run_sharded(
    worker: Callable[[List[Any], Any], Any],
    jobs: Sequence[Any],
    *,
    payload: Any = None,
    processes: Processes = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    merge: Optional[Callable[[Any], None]] = None,
    pool: Optional["CampaignPool"] = None,
) -> List[Any]:
    """Run *worker* over *jobs* in chunks, results in submission order.

    ``worker(chunk, payload)`` must return a list with one result per
    job of the chunk — or, when ``merge`` is given, a ``(results,
    extra)`` pair; ``merge(extra)`` is then invoked in submission order
    as chunks complete (the fence campaign merges worker-local memo
    caches this way).  ``pool`` reuses an open :class:`CampaignPool`
    instead of spinning a fresh one.
    """
    jobs = list(jobs)
    shards = [(chunk, payload) for chunk in chunked(jobs, chunk_size)]
    if pool is not None:
        outcomes = pool._starmap(worker, shards)
    else:
        workers = worker_count(processes)
        # A single shard has no parallelism to win: run it in-process
        # rather than paying for a one-worker pool.
        if workers <= 1 or len(shards) <= 1:
            outcomes = [worker(chunk, chunk_payload) for chunk, chunk_payload in shards]
        else:
            with multiprocessing.Pool(min(workers, len(shards))) as mp_pool:
                outcomes = mp_pool.starmap(worker, shards, chunksize=1)

    results: List[Any] = []
    for outcome in outcomes:
        if merge is not None:
            chunk_results, extra = outcome
            merge(extra)
        else:
            chunk_results = outcome
        results.extend(chunk_results)
    return results


class CampaignPool:
    """A reusable worker pool for multi-batch campaigns.

    The pool's processes survive between :meth:`run` calls, so the
    per-process warm state built by :mod:`repro.campaign.jobs` (resolved
    models, simulators, per-test simulation contexts) carries over from
    one batch to the next — exactly what escalation loops and repeated
    model comparisons want.  With an effective worker count of one the
    pool degrades to the serial fallback and spawns nothing.

    Use as a context manager::

        with CampaignPool("auto") as pool:
            first = pool.run(worker, jobs_a, payload=...)
            second = pool.run(worker, jobs_b, payload=...)
    """

    def __init__(self, processes: Processes = "auto"):
        self.workers = worker_count(processes)
        self._pool: Optional[multiprocessing.pool.Pool] = None

    def __enter__(self) -> "CampaignPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _starmap(
        self, worker: Callable, shards: List[Tuple[List[Any], Any]]
    ) -> List[Any]:
        if self.workers <= 1 or len(shards) <= 1:
            return [worker(chunk, payload) for chunk, payload in shards]
        if self._pool is None:
            self._pool = multiprocessing.Pool(self.workers)
        return self._pool.starmap(worker, shards, chunksize=1)

    def run(
        self,
        worker: Callable[[List[Any], Any], Any],
        jobs: Sequence[Any],
        *,
        payload: Any = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        merge: Optional[Callable[[Any], None]] = None,
    ) -> List[Any]:
        """:func:`run_sharded` on this pool's (persistent) workers."""
        return run_sharded(
            worker,
            jobs,
            payload=payload,
            chunk_size=chunk_size,
            merge=merge,
            pool=self,
        )
