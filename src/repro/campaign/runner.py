"""Process-sharded execution of homogeneous campaign jobs.

Every campaign driver (fence repair, hardware testing, mole censuses,
diy family sweeps, BMC batches) boils down to the same shape: a list of
independent jobs, each producing one result, whose order must be
preserved.  This module is the one fan-out layer they all share:

* jobs are grouped into **chunks** so that scheduling and pickling
  overhead amortizes over several jobs and per-worker warm state
  (resolved models, simulators, per-test simulation contexts — see
  :mod:`repro.campaign.jobs`) gets reused within and across chunks;
* the worker callable must be a picklable module-level function taking
  ``(chunk, payload)`` — a list of job specs plus one static payload
  shared by every chunk — and returning one result per job (or
  ``(results, extra)`` when a ``merge`` callback collects per-chunk
  side state, e.g. the fence campaign's cycle-signature memo);
* results come back in submission order, so sharded campaigns report
  exactly what the serial path reports;
* the **serial fallback** (``processes`` of ``None``/``0``/``1``, a
  single-core machine under ``"auto"``, or a single job) runs the very
  same worker over the very same chunks in-process, so its results are
  byte-identical to the sharded path by construction.

``CampaignPool`` keeps one pool alive across several batches: worker
processes then retain their warm state (per-process simulators and
context caches) between calls, which is what escalation-style loops
want.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro import telemetry as _telemetry
from repro.telemetry.metrics import Metrics

#: Default number of jobs per shard; small enough to balance uneven job
#: costs, large enough to amortize pickling and scheduling.
DEFAULT_CHUNK_SIZE = 8

Processes = Union[None, int, str]


def _instrumented_chunk(
    worker: Callable[[List[Any], Any], Any],
    chunk: List[Any],
    payload: Any,
    submitted: float,
) -> Tuple[Any, Any]:
    """Run one chunk under a fresh telemetry registry and snapshot it.

    The cross-process aggregation seam: when the parent has telemetry
    enabled, every shard runs through this wrapper — in a worker process
    *or* in-process on the serial fallback, so sharded and serial runs
    produce identical per-chunk snapshots by construction.  The fresh
    registry is installed for the duration of the chunk (shadowing any
    registry a forked worker inherited, which would otherwise accumulate
    invisibly in the child), the chunk's wall time and queue wait are
    recorded into it, and the snapshot rides home next to the results
    for the parent to merge in submission order.
    """
    started = time.time()
    registry = Metrics()
    previous = _telemetry._swap(registry)
    try:
        t0 = time.perf_counter()
        outcome = worker(chunk, payload)
        elapsed = time.perf_counter() - t0
    finally:
        _telemetry._swap(previous)
    registry.count("campaign.chunks")
    registry.count("campaign.jobs", len(chunk))
    registry.observe("campaign.chunk_seconds", elapsed)
    registry.observe("campaign.queue_wait_seconds", max(started - submitted, 0.0))
    return outcome, registry.snapshot()


def worker_count(processes: Processes = None) -> int:
    """Resolve a ``processes`` argument to an effective worker count.

    ``None``, ``0`` and ``1`` mean serial; ``"auto"`` means one worker
    per CPU core (which on a single-core machine is again serial).
    """
    if processes in (None, 0, 1):
        return 1
    if processes == "auto":
        return os.cpu_count() or 1
    count = int(processes)  # type: ignore[arg-type]
    if count < 0:
        raise ValueError(f"negative worker count: {processes!r}")
    return max(count, 1)


def chunked(jobs: Sequence[Any], chunk_size: int) -> List[List[Any]]:
    """Split *jobs* into order-preserving chunks of at most *chunk_size*."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [list(jobs[i : i + chunk_size]) for i in range(0, len(jobs), chunk_size)]


def run_sharded(
    worker: Callable[[List[Any], Any], Any],
    jobs: Sequence[Any],
    *,
    payload: Any = None,
    processes: Processes = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    merge: Optional[Callable[[Any], None]] = None,
    pool: Optional["CampaignPool"] = None,
) -> List[Any]:
    """Run *worker* over *jobs* in chunks, results in submission order.

    ``worker(chunk, payload)`` must return a list with one result per
    job of the chunk — or, when ``merge`` is given, a ``(results,
    extra)`` pair; ``merge(extra)`` is then invoked in submission order
    as chunks complete (the fence campaign merges worker-local memo
    caches this way).  ``pool`` reuses an open :class:`CampaignPool`
    instead of spinning a fresh one.

    When a telemetry registry is active in the calling process, every
    shard runs through :func:`_instrumented_chunk`: chunk workers
    snapshot a chunk-local registry (counters, spans, cache traffic,
    chunk wall time and queue wait) and the parent folds the snapshots
    back into its registry in submission order — so ``Session.stats()``
    sees one coherent tree across process boundaries, and sharded
    counter totals equal the serial run's.  With telemetry disabled
    this path is byte-identical to the uninstrumented one.
    """
    jobs = list(jobs)
    parent_registry = _telemetry._ACTIVE
    batch_t0 = time.perf_counter()
    if parent_registry is not None:
        submitted = time.time()
        shards = [
            (worker, chunk, payload, submitted)
            for chunk in chunked(jobs, chunk_size)
        ]
        run_worker: Callable = _instrumented_chunk
    else:
        shards = [(chunk, payload) for chunk in chunked(jobs, chunk_size)]
        run_worker = worker
    if pool is not None:
        effective_workers = pool.workers
        outcomes = pool._starmap(run_worker, shards)
    else:
        effective_workers = worker_count(processes)
        # A single shard has no parallelism to win: run it in-process
        # rather than paying for a one-worker pool.
        if effective_workers <= 1 or len(shards) <= 1:
            outcomes = [run_worker(*shard) for shard in shards]
        else:
            with multiprocessing.Pool(
                min(effective_workers, len(shards))
            ) as mp_pool:
                outcomes = mp_pool.starmap(run_worker, shards, chunksize=1)

    results: List[Any] = []
    busy_seconds = 0.0
    for outcome in outcomes:
        if parent_registry is not None:
            outcome, snapshot = outcome
            busy_seconds += snapshot.histograms.get(
                "campaign.chunk_seconds", {}
            ).get("total", 0.0)
            parent_registry.merge(snapshot)
        if merge is not None:
            chunk_results, extra = outcome
            merge(extra)
        else:
            chunk_results = outcome
        results.extend(chunk_results)
    if parent_registry is not None:
        batch_seconds = time.perf_counter() - batch_t0
        parent_registry.count("campaign.batches")
        parent_registry.observe("campaign.batch_seconds", batch_seconds)
        workers_used = max(1, min(effective_workers, len(shards)))
        if batch_seconds > 0:
            parent_registry.set_gauge(
                "campaign.worker_utilization",
                min(1.0, busy_seconds / (batch_seconds * workers_used)),
            )
    return results


class CampaignPool:
    """A reusable worker pool for multi-batch campaigns.

    The pool's processes survive between :meth:`run` calls, so the
    per-process warm state built by :mod:`repro.campaign.jobs` (resolved
    models, simulators, per-test simulation contexts) carries over from
    one batch to the next — exactly what escalation loops and repeated
    model comparisons want.  With an effective worker count of one the
    pool degrades to the serial fallback and spawns nothing.

    Use as a context manager::

        with CampaignPool("auto") as pool:
            first = pool.run(worker, jobs_a, payload=...)
            second = pool.run(worker, jobs_b, payload=...)
    """

    def __init__(self, processes: Processes = "auto"):
        self.workers = worker_count(processes)
        self._pool: Optional[multiprocessing.pool.Pool] = None

    def __enter__(self) -> "CampaignPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _starmap(
        self, worker: Callable, shards: List[Tuple[Any, ...]]
    ) -> List[Any]:
        if self.workers <= 1 or len(shards) <= 1:
            return [worker(*shard) for shard in shards]
        if self._pool is None:
            self._pool = multiprocessing.Pool(self.workers)
        return self._pool.starmap(worker, shards, chunksize=1)

    def run(
        self,
        worker: Callable[[List[Any], Any], Any],
        jobs: Sequence[Any],
        *,
        payload: Any = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        merge: Optional[Callable[[Any], None]] = None,
    ) -> List[Any]:
        """:func:`run_sharded` on this pool's (persistent) workers."""
        return run_sharded(
            worker,
            jobs,
            payload=payload,
            chunk_size=chunk_size,
            merge=merge,
            pool=self,
        )
