"""Shared campaign runtime: process sharding plus per-test context caching.

The campaign drivers — :func:`repro.fences.campaign.repair_family`,
:func:`repro.hardware.testing.run_campaign`,
:func:`repro.mole.report.analyse_corpus`,
:func:`repro.diy.families.sweep_family` and
:func:`repro.verification.bmc.verify_batch` — all fan homogeneous
batches of independent simulate/verdict jobs over this one runtime:

* :mod:`repro.campaign.runner` — chunked, order-preserving work sharding
  over a process pool, with a serial fallback whose results are
  byte-identical by construction;
* :mod:`repro.campaign.supervisor` — the fault-tolerant execution layer:
  per-chunk deadlines, bounded retry with exponential backoff, worker
  death detection with automatic respawn (self-healing pools), and
  poison-item bisection with structured quarantine
  (:class:`~repro.campaign.supervisor.FailedItem`) under an
  ``on_error="quarantine"|"raise"|"serial_retry"`` policy;
* :mod:`repro.campaign.context` — per-test
  :class:`~repro.campaign.context.SimulationContext` memoization of the
  front half of the pipeline (thread paths, event interning, fixed
  relations, plan skeletons), keyed by structural test identity;
* :mod:`repro.campaign.jobs` — picklable job specs and the per-process
  warm state (resolved models, simulators, context caches) the workers
  re-hydrate them with;
* :mod:`repro.campaign.faults` — deterministic fault injection (worker
  crash/hang/unpicklable-exception at a chosen item), used only by the
  test-suite and benchmarks to pin the fault-tolerance guarantees.
"""

from repro.campaign.context import ContextCache, SimulationContext, test_fingerprint
from repro.campaign.runner import (
    DEFAULT_CHUNK_SIZE,
    CampaignPool,
    chunked,
    run_sharded,
    worker_count,
)
from repro.campaign.supervisor import (
    CampaignPicklingWarning,
    ErrorRing,
    FailedItem,
    PoisonItemError,
    SupervisorPolicy,
)

__all__ = [
    "ContextCache",
    "SimulationContext",
    "test_fingerprint",
    "CampaignPool",
    "CampaignPicklingWarning",
    "DEFAULT_CHUNK_SIZE",
    "ErrorRing",
    "FailedItem",
    "PoisonItemError",
    "SupervisorPolicy",
    "chunked",
    "run_sharded",
    "worker_count",
]
