"""Shared campaign runtime: process sharding plus per-test context caching.

The campaign drivers — :func:`repro.fences.campaign.repair_family`,
:func:`repro.hardware.testing.run_campaign`,
:func:`repro.mole.report.analyse_corpus`,
:func:`repro.diy.families.sweep_family` and
:func:`repro.verification.bmc.verify_batch` — all fan homogeneous
batches of independent simulate/verdict jobs over this one runtime:

* :mod:`repro.campaign.runner` — chunked, order-preserving work sharding
  over a process pool, with a serial fallback whose results are
  byte-identical by construction;
* :mod:`repro.campaign.context` — per-test
  :class:`~repro.campaign.context.SimulationContext` memoization of the
  front half of the pipeline (thread paths, event interning, fixed
  relations, plan skeletons), keyed by structural test identity;
* :mod:`repro.campaign.jobs` — picklable job specs and the per-process
  warm state (resolved models, simulators, context caches) the workers
  re-hydrate them with.
"""

from repro.campaign.context import ContextCache, SimulationContext, test_fingerprint
from repro.campaign.runner import (
    DEFAULT_CHUNK_SIZE,
    CampaignPool,
    chunked,
    run_sharded,
    worker_count,
)

__all__ = [
    "ContextCache",
    "SimulationContext",
    "test_fingerprint",
    "CampaignPool",
    "DEFAULT_CHUNK_SIZE",
    "chunked",
    "run_sharded",
    "worker_count",
]
