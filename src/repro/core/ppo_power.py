"""The preserved program order of Power and ARM (Fig. 25).

The definition distinguishes two parts of every memory event — its
*init* part and its *commit* part — and defines four mutually recursive
relations with a least-fixpoint semantics:

* ``ii`` relates init parts to init parts,
* ``ic`` init to commit,
* ``ci`` commit to init,
* ``cc`` commit to commit.

The base cases are (Fig. 25)::

    dp      = addr | data
    rdw     = po-loc & (fre; rfe)
    detour  = po-loc & (coe; rfe)
    ii0     = dp | rdw | rfi
    ic0     = 0
    ci0     = ctrl+cfence | detour
    cc0     = dp | po-loc | ctrl | (addr; po)        (Power)
    cc0     = dp | ctrl | (addr; po)                 (proposed ARM, Tab. VII)

and the fixpoint equations::

    ii = ii0 | ci | (ic; ci) | (ii; ii)
    ic = ic0 | ii | cc | (ic; cc) | (ii; ic)
    ci = ci0 | (ci; ii) | (cc; ci)
    cc = cc0 | ci | (ci; ic) | (cc; cc)

Finally ``ppo = (ii ∩ RR) ∪ (ic ∩ RW)``.

The module also provides the "static" variant discussed at the end of
Sec. 8.2 (``rdw`` removed from ``ii0`` and ``detour`` removed from
``ci0``), used by the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.bitrel import rows_seq
from repro.core.execution import Execution
from repro.core.relation import Relation


@dataclass(frozen=True)
class PpoComponents:
    """The fixpoint solution; useful for debugging and for tests."""

    ii: Relation
    ic: Relation
    ci: Relation
    cc: Relation
    ppo: Relation


def _fixpoint(
    ii0: Relation, ic0: Relation, ci0: Relation, cc0: Relation
) -> Tuple[Relation, Relation, Relation, Relation]:
    """Least fixpoint of the four recursive equations of Fig. 25."""
    ii, ic, ci, cc = ii0, ic0, ci0, cc0
    while True:
        new_ii = ii0 | ci | ic.seq(ci) | ii.seq(ii)
        new_ic = ic0 | ii | cc | ic.seq(cc) | ii.seq(ic)
        new_ci = ci0 | ci.seq(ii) | cc.seq(ci)
        new_cc = cc0 | ci | ci.seq(ic) | cc.seq(cc)
        if (new_ii, new_ic, new_ci, new_cc) == (ii, ic, ci, cc):
            return ii, ic, ci, cc
        ii, ic, ci, cc = new_ii, new_ic, new_ci, new_cc


def _fixpoint_rows(
    ii0: List[int], ic0: List[int], ci0: List[int], cc0: List[int]
) -> Tuple[List[int], List[int], List[int], List[int]]:
    """The same fixpoint, run on raw successor rows of the bitmask kernel.

    This is the hottest loop of a Power/ARM model check; working on
    plain lists of ints sidesteps one Relation allocation per operator
    per iteration.
    """
    ii, ic, ci, cc = list(ii0), list(ic0), list(ci0), list(cc0)
    indices = range(len(ii))
    while True:
        ic_ci = rows_seq(ic, ci)
        ii_ii = rows_seq(ii, ii)
        new_ii = [ii0[i] | ci[i] | ic_ci[i] | ii_ii[i] for i in indices]
        ic_cc = rows_seq(ic, cc)
        ii_ic = rows_seq(ii, ic)
        new_ic = [ic0[i] | ii[i] | cc[i] | ic_cc[i] | ii_ic[i] for i in indices]
        ci_ii = rows_seq(ci, ii)
        cc_ci = rows_seq(cc, ci)
        new_ci = [ci0[i] | ci_ii[i] | cc_ci[i] for i in indices]
        ci_ic = rows_seq(ci, ic)
        cc_cc = rows_seq(cc, cc)
        new_cc = [cc0[i] | ci[i] | ci_ic[i] | cc_cc[i] for i in indices]
        if (new_ii, new_ic, new_ci, new_cc) == (ii, ic, ci, cc):
            return ii, ic, ci, cc
        ii, ic, ci, cc = new_ii, new_ic, new_ci, new_cc


def ppo_components(
    execution: Execution,
    include_po_loc_in_cc0: bool = True,
    include_rdw: bool = True,
    include_detour: bool = True,
) -> PpoComponents:
    """Compute the ii/ic/ci/cc fixpoint and the resulting ppo.

    Parameters
    ----------
    include_po_loc_in_cc0:
        True for Power (and the "Power-ARM" model); False for the
        proposed ARM model of Tab. VII, which removes ``po-loc`` from
        ``cc0`` to account for the early-commit behaviours of Fig. 32/33.
    include_rdw / include_detour:
        Setting either to False gives the "more static" ppo variant
        discussed at the end of Sec. 8.2.
    """
    dp = execution.dp
    rdw = execution.rdw if include_rdw else Relation()
    detour = execution.detour if include_detour else Relation()

    ii0 = dp | rdw | execution.rfi
    ic0 = Relation()
    ci0 = execution.ctrl_cfence | detour
    cc0 = dp | execution.ctrl | execution.addr.seq(execution.po)
    if include_po_loc_in_cc0:
        cc0 = cc0 | execution.po_loc

    index = ii0._index
    if (
        index is not None
        and ci0._index is index
        and cc0._index is index
    ):
        # Kernel fast path: iterate on raw rows, wrap once at the end.
        zero = [0] * index.n
        ii_r, ic_r, ci_r, cc_r = _fixpoint_rows(
            list(ii0._rows), zero, list(ci0._rows), list(cc0._rows)
        )
        reads_mask = index.reads_mask
        writes_mask = index.writes_mask
        ppo_rows = [
            ((ii_r[i] & reads_mask) | (ic_r[i] & writes_mask))
            if reads_mask >> i & 1
            else 0
            for i in range(index.n)
        ]
        return PpoComponents(
            ii=Relation.from_rows(index, ii_r),
            ic=Relation.from_rows(index, ic_r),
            ci=Relation.from_rows(index, ci_r),
            cc=Relation.from_rows(index, cc_r),
            ppo=Relation.from_rows(index, ppo_rows),
        )

    ii, ic, ci, cc = _fixpoint(ii0, ic0, ci0, cc0)
    ppo = execution.restrict_rr(ii) | execution.restrict_rw(ic)
    return PpoComponents(ii=ii, ic=ic, ci=ci, cc=cc, ppo=ppo)


def power_ppo(execution: Execution) -> Relation:
    """Preserved program order for Power (Fig. 25)."""
    return ppo_components(execution, include_po_loc_in_cc0=True).ppo


def arm_ppo(execution: Execution) -> Relation:
    """Preserved program order for the proposed ARM model (Tab. VII)."""
    return ppo_components(execution, include_po_loc_in_cc0=False).ppo


def static_power_ppo(execution: Execution) -> Relation:
    """Ablation: Power ppo without the dynamic rdw/detour components."""
    return ppo_components(
        execution,
        include_po_loc_in_cc0=True,
        include_rdw=False,
        include_detour=False,
    ).ppo


def static_arm_ppo(execution: Execution) -> Relation:
    """Ablation: ARM ppo without the dynamic rdw/detour components."""
    return ppo_components(
        execution,
        include_po_loc_in_cc0=False,
        include_rdw=False,
        include_detour=False,
    ).ppo
