"""Architectures and the generic model (Fig. 5).

An :class:`Architecture` is the triple of functions ``(ppo, fences,
prop)`` of Sec. 4.1, plus two switches selecting axiom variants
(SC PER LOCATION standard vs llh; PROPAGATION acyclic vs the C++ R-A
irreflexive form).

A :class:`Model` pairs an architecture with the four axioms and decides
whether a candidate execution is valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import axioms
from repro.core.axioms import AxiomViolation
from repro.core.execution import Execution
from repro.core.relation import Relation

RelationFn = Callable[[Execution], Relation]
PropFn = Callable[[Execution, Relation, Relation], Relation]


@dataclass(frozen=True)
class Architecture:
    """An instance of the framework: ``(ppo, fences, prop)`` plus variants.

    Attributes
    ----------
    name:
        Short identifier, e.g. ``"power"``, ``"tso"``.
    ppo_fn:
        Execution -> preserved program order.
    fences_fn:
        Execution -> the ``fences`` relation (union of the fence
        relations relevant to the architecture, already direction
        filtered, e.g. ``lwsync \\ WR`` on Power).
    prop_fn:
        (Execution, ppo, fences) -> the propagation order.
    ffence_fn:
        Execution -> the full-fence relation (used by the operational
        machine and by prop on Power/ARM); defaults to the empty relation.
    sc_per_location_variant:
        ``"standard"`` or ``"llh"``.
    propagation_variant:
        ``"acyclic"`` or ``"irreflexive_prop_co"`` (C++ R-A).
    """

    name: str
    ppo_fn: RelationFn
    fences_fn: RelationFn
    prop_fn: PropFn
    ffence_fn: RelationFn = field(default=lambda execution: Relation())
    sc_per_location_variant: str = "standard"
    propagation_variant: str = "acyclic"
    description: str = ""

    def ppo(self, execution: Execution) -> Relation:
        return self.ppo_fn(execution)

    def fences(self, execution: Execution) -> Relation:
        return self.fences_fn(execution)

    def ffence(self, execution: Execution) -> Relation:
        return self.ffence_fn(execution)

    def prop(self, execution: Execution, ppo: Optional[Relation] = None,
             fences: Optional[Relation] = None) -> Relation:
        if ppo is None:
            ppo = self.ppo(execution)
        if fences is None:
            fences = self.fences(execution)
        return self.prop_fn(execution, ppo, fences)

    def hb(self, execution: Execution, ppo: Optional[Relation] = None,
           fences: Optional[Relation] = None) -> Relation:
        """Happens-before: ``ppo ∪ fences ∪ rfe``."""
        if ppo is None:
            ppo = self.ppo(execution)
        if fences is None:
            fences = self.fences(execution)
        return ppo | fences | execution.rfe

    def relations(self, execution: Execution) -> Dict[str, Relation]:
        """All architecture-level relations of an execution, by name."""
        ppo = self.ppo(execution)
        fences = self.fences(execution)
        prop = self.prop_fn(execution, ppo, fences)
        hb = ppo | fences | execution.rfe
        return {
            "ppo": ppo,
            "fences": fences,
            "prop": prop,
            "hb": hb,
            "ffence": self.ffence(execution),
        }


@dataclass(frozen=True)
class CheckResult:
    """Outcome of checking one candidate execution against a model."""

    allowed: bool
    violations: Tuple[AxiomViolation, ...] = ()

    @property
    def forbidden(self) -> bool:
        return not self.allowed

    def violated_axioms(self) -> Tuple[str, ...]:
        return tuple(v.axiom for v in self.violations)

    def describe(self) -> str:
        if self.allowed:
            return "allowed"
        return "forbidden by " + ", ".join(v.describe() for v in self.violations)


class Model:
    """The generic weak memory model of Fig. 5, instantiated by an architecture."""

    def __init__(self, architecture: Architecture):
        self.architecture = architecture

    @property
    def name(self) -> str:
        return self.architecture.name

    def check(
        self,
        execution: Execution,
        stop_at_first: bool = False,
        assume_sc_per_location: bool = False,
    ) -> CheckResult:
        """Check the four axioms on a candidate execution.

        When ``stop_at_first`` is True the check returns as soon as one
        axiom fails (faster for plain allowed/forbidden queries); when
        False every violated axiom is reported, which the anomaly
        classification of Tab. VIII relies on.

        ``assume_sc_per_location`` skips the SC PER LOCATION axiom: the
        pruning enumeration engine (:mod:`repro.herd.engine`) only emits
        candidates it has already proven uniproc-consistent, so the
        check would always pass.
        """
        arch = self.architecture
        violations: List[AxiomViolation] = []

        if not assume_sc_per_location:
            violation = axioms.check_sc_per_location(
                execution, arch.sc_per_location_variant
            )
            if violation is not None:
                violations.append(violation)
                if stop_at_first:
                    return CheckResult(False, tuple(violations))

        ppo = arch.ppo(execution)
        fences = arch.fences(execution)
        hb = ppo | fences | execution.rfe

        violation = axioms.check_no_thin_air(execution, hb)
        if violation is not None:
            violations.append(violation)
            if stop_at_first:
                return CheckResult(False, tuple(violations))

        prop = arch.prop(execution, ppo, fences)

        violation = axioms.check_observation(execution, prop, hb)
        if violation is not None:
            violations.append(violation)
            if stop_at_first:
                return CheckResult(False, tuple(violations))

        violation = axioms.check_propagation(execution, prop, arch.propagation_variant)
        if violation is not None:
            violations.append(violation)

        return CheckResult(not violations, tuple(violations))

    def allows(self, execution: Execution) -> bool:
        return self.check(execution, stop_at_first=True).allowed

    def __repr__(self) -> str:
        return f"Model({self.architecture.name})"
