"""The instances of the framework used in the paper.

* SC, TSO and C++ R-A (Fig. 21);
* Power (Figs. 17, 18, 25, 38);
* the "Power-ARM" model (the Power model read literally on ARM), the
  proposed ARM model and the "ARM llh" testing variant (Tab. VII);
* a PLDI-2011-style comparison variant reproducing the documented
  experimental differences with Sarkar et al.'s operational model
  (it forbids ``mp+lwsync+addr-po-detour`` and the ARM ``fri-rfi``
  behaviours);
* "static" ablation variants of Power and ARM (Sec. 8.2: rdw and detour
  removed from the ppo).

All are exposed both as factory functions and through the
``ARCHITECTURES`` registry / :func:`get_architecture`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.execution import Execution
from repro.core.model import Architecture
from repro.core.ppo_power import arm_ppo, power_ppo, static_arm_ppo, static_power_ppo
from repro.core.relation import Relation


# ---------------------------------------------------------------------------
# Fence helpers (Fig. 17)
# ---------------------------------------------------------------------------

def power_ffence(execution: Execution) -> Relation:
    """Power full fence: sync."""
    return execution.fence("sync")


def power_lwfence(execution: Execution) -> Relation:
    """Power lightweight fences: ``lwsync \\ WR`` plus ``eieio ∩ WW``."""
    lwsync = execution.fence("lwsync")
    lwsync = lwsync - execution.restrict_wr(lwsync)
    eieio = execution.restrict_ww(execution.fence("eieio"))
    return lwsync | eieio


def power_fences(execution: Execution) -> Relation:
    return power_ffence(execution) | power_lwfence(execution)


def arm_ffence(execution: Execution) -> Relation:
    """ARM full fences: dmb, dsb, and the .st variants limited to WW pairs."""
    full = execution.fence("dmb", "dsb")
    st = execution.restrict_ww(execution.fence("dmb.st", "dsb.st"))
    return full | st


def arm_lwfence(execution: Execution) -> Relation:
    """The proposed ARM model has no lightweight fence (Fig. 17)."""
    return Relation()


def arm_fences(execution: Execution) -> Relation:
    return arm_ffence(execution) | arm_lwfence(execution)


def tso_ffence(execution: Execution) -> Relation:
    return execution.fence("mfence")


# ---------------------------------------------------------------------------
# Propagation orders
# ---------------------------------------------------------------------------

def _cumulative_prop(
    execution: Execution, ppo: Relation, fences: Relation, ffence: Relation
) -> Relation:
    """The Power/ARM propagation order (Fig. 18).

    ::

        hb        = ppo ∪ fences ∪ rfe
        A-cumul   = rfe; fences
        prop-base = (fences ∪ A-cumul); hb*
        prop      = (prop-base ∩ WW) ∪ (com*; prop-base*; ffence; hb*)
    """
    events = execution.memory_events
    hb = ppo | fences | execution.rfe
    hb_star = hb.reflexive_transitive_closure(events)
    a_cumul = execution.rfe.seq(fences)
    prop_base = (fences | a_cumul).seq(hb_star)
    com_star = execution.com.reflexive_transitive_closure(events)
    prop_base_star = prop_base.reflexive_transitive_closure(events)
    strong = com_star.seq(prop_base_star).seq(ffence).seq(hb_star)
    return execution.restrict_ww(prop_base) | strong


def power_prop(execution: Execution, ppo: Relation, fences: Relation) -> Relation:
    return _cumulative_prop(execution, ppo, fences, power_ffence(execution))


def arm_prop(execution: Execution, ppo: Relation, fences: Relation) -> Relation:
    return _cumulative_prop(execution, ppo, fences, arm_ffence(execution))


def sc_prop(execution: Execution, ppo: Relation, fences: Relation) -> Relation:
    """SC (Fig. 21): prop = ppo ∪ fences ∪ rf ∪ fr."""
    return ppo | fences | execution.rf | execution.fr


def tso_prop(execution: Execution, ppo: Relation, fences: Relation) -> Relation:
    """TSO (Fig. 21): prop = ppo ∪ fences ∪ rfe ∪ fr."""
    return ppo | fences | execution.rfe | execution.fr


def cpp_ra_prop(execution: Execution, ppo: Relation, fences: Relation) -> Relation:
    """C++ R-A (Fig. 21): prop = hb+ with hb = sb ∪ rf."""
    return (ppo | fences | execution.rf).transitive_closure()


# ---------------------------------------------------------------------------
# Preserved program orders for the strong models
# ---------------------------------------------------------------------------

def sc_ppo(execution: Execution) -> Relation:
    return execution.po

def tso_ppo(execution: Execution) -> Relation:
    """TSO preserves everything but write-read pairs (po \\ WR)."""
    return execution.po - execution.restrict_wr(execution.po)


def pldi2011_ppo(execution: Execution) -> Relation:
    """Power ppo strengthened the way the PLDI 2011 machine behaves.

    The machine of Sarkar et al. additionally orders a read with any
    po-later read reached through an address dependency followed by
    program order (their commit-time treatment of detours), which makes
    it forbid ``mp+lwsync+addr-po-detour`` — a behaviour observed on
    Power hardware (Fig. 36) — and the ARM ``fri-rfi`` behaviours
    (Fig. 32).  See DESIGN.md, substitution table.
    """
    base = power_ppo(execution)
    addr_po = execution.addr.seq(execution.po)
    return base | execution.restrict_rr(addr_po)


# ---------------------------------------------------------------------------
# Architecture instances
# ---------------------------------------------------------------------------

def sc_architecture() -> Architecture:
    """Lamport's Sequential Consistency (Fig. 21)."""
    return Architecture(
        name="sc",
        ppo_fn=sc_ppo,
        fences_fn=lambda execution: Relation(),
        prop_fn=sc_prop,
        description="Sequential Consistency (Lamport 1979)",
    )


def tso_architecture() -> Architecture:
    """Sparc/x86 Total Store Order (Fig. 21)."""
    return Architecture(
        name="tso",
        ppo_fn=tso_ppo,
        fences_fn=tso_ffence,
        prop_fn=tso_prop,
        ffence_fn=tso_ffence,
        description="Total Store Order (Sparc TSO / x86)",
    )


def cpp_ra_architecture() -> Architecture:
    """C++ restricted to release-acquire atomics (Fig. 21, Sec. 4.8)."""
    return Architecture(
        name="cpp-ra",
        ppo_fn=sc_ppo,  # sequenced-before
        fences_fn=lambda execution: Relation(),
        prop_fn=cpp_ra_prop,
        propagation_variant="irreflexive_prop_co",
        description="C++ release-acquire fragment",
    )


def power_architecture() -> Architecture:
    """IBM Power (Figs. 17, 18, 25, 38)."""
    return Architecture(
        name="power",
        ppo_fn=power_ppo,
        fences_fn=power_fences,
        prop_fn=power_prop,
        ffence_fn=power_ffence,
        description="IBM Power",
    )


def power_static_architecture() -> Architecture:
    """Ablation: Power with the static ppo (no rdw, no detour) — Sec. 8.2."""
    return Architecture(
        name="power-static-ppo",
        ppo_fn=static_power_ppo,
        fences_fn=power_fences,
        prop_fn=power_prop,
        ffence_fn=power_ffence,
        description="Power with rdw/detour removed from the ppo",
    )


def power_arm_architecture() -> Architecture:
    """The "Power-ARM" model: Power's ppo read literally with ARM fences."""
    return Architecture(
        name="power-arm",
        ppo_fn=power_ppo,
        fences_fn=arm_fences,
        prop_fn=arm_prop,
        ffence_fn=arm_ffence,
        description="Power model instantiated on ARM (Tab. VII, first column)",
    )


def arm_architecture() -> Architecture:
    """The proposed ARM model (Tab. VII): cc0 without po-loc."""
    return Architecture(
        name="arm",
        ppo_fn=arm_ppo,
        fences_fn=arm_fences,
        prop_fn=arm_prop,
        ffence_fn=arm_ffence,
        description="Proposed ARM model (early commit allowed)",
    )


def arm_llh_architecture() -> Architecture:
    """The "ARM llh" testing model: ARM plus load-load hazards allowed."""
    return Architecture(
        name="arm-llh",
        ppo_fn=arm_ppo,
        fences_fn=arm_fences,
        prop_fn=arm_prop,
        ffence_fn=arm_ffence,
        sc_per_location_variant="llh",
        description="ARM model allowing load-load hazards (Tab. VII)",
    )


def arm_static_architecture() -> Architecture:
    """Ablation: ARM with the static ppo (no rdw, no detour) — Sec. 8.2."""
    return Architecture(
        name="arm-static-ppo",
        ppo_fn=static_arm_ppo,
        fences_fn=arm_fences,
        prop_fn=arm_prop,
        ffence_fn=arm_ffence,
        description="ARM with rdw/detour removed from the ppo",
    )


def pldi2011_architecture() -> Architecture:
    """Comparison variant standing in for the PLDI 2011 operational model."""
    return Architecture(
        name="pldi2011",
        ppo_fn=pldi2011_ppo,
        fences_fn=power_fences,
        prop_fn=power_prop,
        ffence_fn=power_ffence,
        description="Sarkar et al. PLDI 2011 model (stronger ppo; flawed w.r.t. hardware)",
    )


ARCHITECTURES: Dict[str, Callable[[], Architecture]] = {
    "sc": sc_architecture,
    "tso": tso_architecture,
    "cpp-ra": cpp_ra_architecture,
    "power": power_architecture,
    "power-static-ppo": power_static_architecture,
    "power-arm": power_arm_architecture,
    "arm": arm_architecture,
    "arm-llh": arm_llh_architecture,
    "arm-static-ppo": arm_static_architecture,
    "pldi2011": pldi2011_architecture,
}


def get_architecture(name: str) -> Architecture:
    """Look an architecture up by name (case-insensitive)."""
    key = name.lower()
    if key not in ARCHITECTURES:
        known = ", ".join(sorted(ARCHITECTURES))
        raise KeyError(f"unknown architecture {name!r}; known: {known}")
    return ARCHITECTURES[key]()
