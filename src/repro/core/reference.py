"""Reference characterisations of SC and TSO (Lemma 4.1).

The paper proves that its SC and TSO instances coincide with the classic
characterisations of [Alglave 2012]:

* an execution is SC iff ``acyclic(po ∪ com)``;
* an execution is TSO iff ``acyclic(ppo ∪ co ∪ rfe ∪ fr ∪ fences)`` with
  ``ppo = po \\ WR`` and ``fences = mfence``.

These reference checkers are used by the equivalence tests and by the
Fig. 21 benchmark to validate the instantiation empirically on generated
test families.
"""

from __future__ import annotations

from repro.core.execution import Execution


def is_sc_reference(execution: Execution) -> bool:
    """Lamport SC: the union of program order and communications is acyclic."""
    return (execution.po | execution.com).is_acyclic()


def is_tso_reference(execution: Execution) -> bool:
    """Sparc TSO: acyclic(ppo ∪ co ∪ rfe ∪ fr ∪ mfence)."""
    ppo = execution.po - execution.restrict_wr(execution.po)
    fences = execution.fence("mfence")
    relation = ppo | execution.co | execution.rfe | execution.fr | fences
    return relation.is_acyclic()
