"""Dense integer kernel for relations: interning and bitmask rows.

The hot path of the simulator manipulates relations over a *fixed,
small* universe of events (one candidate family shares a single event
set across every rf/co choice).  Instead of frozensets of
``(Event, Event)`` pairs, the kernel assigns each event a dense integer
id and stores a relation as one Python int per source — bit ``j`` of
``rows[i]`` meaning ``(event_i, event_j)``.  Union, intersection,
difference, relational sequence, transitive closure and acyclicity then
become word-parallel bitwise operations; on litmus-sized universes
(tens of events) every row fits a machine word.

Two layers live here:

* module-level row primitives (pure ``list[int]`` in, ``list[int]``
  out) with no knowledge of events;
* :class:`EventIndex`, the interning table mapping a universe of events
  to ids, with precomputed per-thread / per-location / read / write
  masks used by :class:`repro.core.relation.Relation` to answer
  ``internal()``, ``same_location()``, ``restrict()`` etc. without pair
  scans.

:class:`EventIndex` is deliberately duck-typed: any orderable, hashable
node with optional ``thread`` / ``location`` attributes and
``is_read``/``is_write``/``is_init`` predicates can be interned (the
multi-event model interns its per-thread propagation copies).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.events import MemoryRead, MemoryWrite

Rows = Sequence[int]


# ---------------------------------------------------------------------------
# Row primitives
# ---------------------------------------------------------------------------

def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of *mask* in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def rows_seq(left: Rows, right: Rows) -> List[int]:
    """Relational sequence ``left; right`` on successor rows."""
    out = []
    for row in left:
        targets = 0
        while row:
            low = row & -row
            targets |= right[low.bit_length() - 1]
            row ^= low
        out.append(targets)
    return out


def rows_inverse(rows: Rows) -> List[int]:
    """Transpose: bit ``j`` of ``out[i]`` iff bit ``i`` of ``rows[j]``."""
    out = [0] * len(rows)
    for i, row in enumerate(rows):
        bit = 1 << i
        while row:
            low = row & -row
            out[low.bit_length() - 1] |= bit
            row ^= low
    return out


def rows_closure(rows: Rows) -> List[int]:
    """Transitive closure (bit-parallel Warshall: O(n²) word operations)."""
    closure = list(rows)
    for k, row_k in enumerate(closure):
        if not row_k:
            continue
        bit = 1 << k
        for i, row_i in enumerate(closure):
            if row_i & bit:
                closure[i] = row_i | closure[k]
        # closure[k] may have grown through itself; rereads above use the
        # freshest value, and the outer loop guarantees completeness once
        # every intermediate node has been processed.
    return closure


def rows_has_cycle(closure: Rows) -> bool:
    """Does the *closed* relation contain a cycle (a diagonal bit)?"""
    return any((row >> i) & 1 for i, row in enumerate(closure))


def rows_find_cycle(rows: Rows, closure: Optional[Rows] = None) -> Optional[List[int]]:
    """One cycle as ids ``[n0, n1, ..., n0]``, or None.

    Deterministic: starts from the smallest id lying on a cycle and
    returns a BFS-shortest path back to it (ties broken by ascending id).
    """
    if closure is None:
        closure = rows_closure(rows)
    start = next(
        (i for i, row in enumerate(closure) if (row >> i) & 1), None
    )
    if start is None:
        return None
    parent: Dict[int, Optional[int]] = {start: None}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for succ in iter_bits(rows[node]):
            if succ == start:
                path = [node]
                while parent[node] is not None:
                    node = parent[node]  # type: ignore[assignment]
                    path.append(node)
                path.reverse()
                path.append(start)
                return path
            if succ not in parent:
                parent[succ] = node
                queue.append(succ)
    return None  # pragma: no cover - start lies on a cycle by construction


def add_edge_closure(closure: List[int], src: int, dst: int) -> None:
    """Add edge ``src -> dst`` to a *closed* reachability matrix, in place.

    O(n) word operations: everything reaching ``src`` (and ``src``
    itself) now also reaches ``dst`` and everything ``dst`` reaches.
    """
    through = closure[dst] | (1 << dst)
    if through & ~closure[src] == 0:
        return  # already closed: every reacher of src inherited it earlier
    bit = 1 << src
    for i, row in enumerate(closure):
        if i == src or row & bit:
            closure[i] = row | through


# ---------------------------------------------------------------------------
# Interning
# ---------------------------------------------------------------------------

class EventIndex:
    """Interning table: a fixed universe of events with dense integer ids.

    The universe is sorted at construction so ids — and therefore every
    enumeration order derived from the kernel — are deterministic.
    """

    __slots__ = (
        "events",
        "ids",
        "n",
        "all_mask",
        "thread_masks",
        "location_masks",
        "internal_masks",
        "same_location_masks",
        "reads_mask",
        "writes_mask",
        "init_mask",
        "_mask_cache",
    )

    def __init__(self, events: Iterable, presorted: bool = False) -> None:
        """Intern *events*.  ``presorted`` skips the sort+dedup when the
        caller guarantees the iterable is already sorted and duplicate-free
        (the enumeration layer builds its universes in event order)."""
        universe = tuple(events) if presorted else tuple(sorted(set(events)))
        self.events = universe
        self.ids = {event: i for i, event in enumerate(universe)}
        self.n = len(universe)
        self.all_mask = (1 << self.n) - 1

        thread_masks: Dict = {}
        location_masks: Dict = {}
        reads_mask = writes_mask = init_mask = 0
        for i, event in enumerate(universe):
            bit = 1 << i
            # Fast path for repro Events (the overwhelmingly common
            # node type): classify through the action directly.
            action = getattr(event, "action", None)
            if type(action) is MemoryRead:
                reads_mask |= bit
                location = action.location
            elif type(action) is MemoryWrite:
                writes_mask |= bit
                location = action.location
            elif action is not None:
                location = getattr(event, "location", None)
            else:  # duck-typed nodes (e.g. multi-event propagation copies)
                location = getattr(event, "location", None)
                is_read = getattr(event, "is_read", None)
                if callable(is_read) and is_read():
                    reads_mask |= bit
                is_write = getattr(event, "is_write", None)
                if callable(is_write) and is_write():
                    writes_mask |= bit
            thread = getattr(event, "thread", None)
            if thread is not None:
                thread_masks[thread] = thread_masks.get(thread, 0) | bit
                if thread == -1:
                    init_mask |= bit
            if location is not None:
                location_masks[location] = location_masks.get(location, 0) | bit
        self.thread_masks = thread_masks
        self.location_masks = location_masks
        self.reads_mask = reads_mask
        self.writes_mask = writes_mask
        self.init_mask = init_mask
        # Per-source masks: events on the same thread / at the same location.
        self.internal_masks = [
            thread_masks.get(getattr(event, "thread", None), 0) for event in universe
        ]
        self.same_location_masks = [
            location_masks.get(loc, 0) if (loc := getattr(event, "location", None)) is not None else 0
            for event in universe
        ]
        self._mask_cache: Dict = {}

    def __contains__(self, event) -> bool:
        return event in self.ids

    def __repr__(self) -> str:
        return f"EventIndex({self.n} events)"

    def __getstate__(self) -> dict:
        # The mask memo is keyed by frozensets of events from the parent
        # process; it is a pure cache, so never ship it across a process
        # boundary — workers rebuild their own as they go.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "_mask_cache"
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._mask_cache = {}

    def id_of(self, event) -> int:
        return self.ids[event]

    def mask_of(self, events: Iterable) -> int:
        """Bit mask of the given events (unknown events are skipped).

        Frozensets are memoized: the direction filters (``restrict_ww``
        and friends) pass the same cached event sets over and over.
        """
        if isinstance(events, frozenset):
            cached = self._mask_cache.get(events)
            if cached is not None:
                return cached
        ids = self.ids
        mask = 0
        for event in events:
            i = ids.get(event)
            if i is not None:
                mask |= 1 << i
        if isinstance(events, frozenset):
            self._mask_cache[events] = mask
        return mask

    def events_of(self, mask: int) -> List:
        universe = self.events
        return [universe[i] for i in iter_bits(mask)]

    def rows_of_pairs(self, pairs: Iterable[Tuple]) -> Optional[List[int]]:
        """Successor rows for a pair set, or None if any event is foreign."""
        ids = self.ids
        rows = [0] * self.n
        for src, dst in pairs:
            i = ids.get(src)
            j = ids.get(dst)
            if i is None or j is None:
                return None
            rows[i] |= 1 << j
        return rows

    def order_rows(self, ordered: Sequence) -> List[int]:
        """Rows of the strict total order ``ordered[0] < ordered[1] < ...``."""
        rows = [0] * self.n
        later = 0
        for event in reversed(ordered):
            rows[self.ids[event]] = later
            later |= 1 << self.ids[event]
        return rows

    def pairs_of_rows(self, rows: Rows) -> Iterator[Tuple]:
        universe = self.events
        for i, row in enumerate(rows):
            src = universe[i]
            for j in iter_bits(row):
                yield (src, universe[j])
