"""The paper's primary contribution: the generic axiomatic framework.

The central objects are

* :class:`repro.core.events.Event` — memory/register/branch/fence events;
* :class:`repro.core.relation.Relation` — the relation algebra used by the
  axioms (union, intersection, sequence, closures, direction restriction);
* :class:`repro.core.execution.Execution` — a candidate execution
  ``(E, po, rf, co)`` with its derived relations (fr, com, po-loc, ...);
* :class:`repro.core.model.Architecture` / :class:`repro.core.model.Model` —
  an architecture ``(ppo, fences, prop)`` and the four axioms of Fig. 5;
* :mod:`repro.core.architectures` — the SC, TSO, C++ R-A, Power, ARM and
  ARM-llh instances of the framework, plus the PLDI-2011 comparison variant.
"""

from repro.core.events import (
    Event,
    Action,
    MemoryRead,
    MemoryWrite,
    RegisterRead,
    RegisterWrite,
    BranchEvent,
    FenceEvent,
)
from repro.core.relation import Relation
from repro.core.execution import Execution
from repro.core.model import Architecture, Model, CheckResult, AxiomViolation
from repro.core.axioms import (
    AXIOM_SC_PER_LOCATION,
    AXIOM_NO_THIN_AIR,
    AXIOM_OBSERVATION,
    AXIOM_PROPAGATION,
)
from repro.core.architectures import (
    sc_architecture,
    tso_architecture,
    cpp_ra_architecture,
    power_architecture,
    arm_architecture,
    arm_llh_architecture,
    pldi2011_architecture,
    get_architecture,
    ARCHITECTURES,
)

__all__ = [
    "Event",
    "Action",
    "MemoryRead",
    "MemoryWrite",
    "RegisterRead",
    "RegisterWrite",
    "BranchEvent",
    "FenceEvent",
    "Relation",
    "Execution",
    "Architecture",
    "Model",
    "CheckResult",
    "AxiomViolation",
    "AXIOM_SC_PER_LOCATION",
    "AXIOM_NO_THIN_AIR",
    "AXIOM_OBSERVATION",
    "AXIOM_PROPAGATION",
    "sc_architecture",
    "tso_architecture",
    "cpp_ra_architecture",
    "power_architecture",
    "arm_architecture",
    "arm_llh_architecture",
    "pldi2011_architecture",
    "get_architecture",
    "ARCHITECTURES",
]
