"""The four axioms of the framework (Fig. 5).

Each axiom is a function from a candidate :class:`~repro.core.execution.Execution`
plus the architecture-supplied relations to an optional
:class:`AxiomViolation`.  ``None`` means the axiom holds.

The SC PER LOCATION axiom comes in two variants: the standard one and
the "llh" variant used for testing ARM machines that exhibit the
load-load hazard bug (read-read pairs removed from ``po-loc``).
Similarly PROPAGATION comes in the standard acyclicity form and the
weakened ``irreflexive(prop; co)`` form used for C++ R-A (Sec. 4.8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.relation import Relation

AXIOM_SC_PER_LOCATION = "SC PER LOCATION"
AXIOM_NO_THIN_AIR = "NO THIN AIR"
AXIOM_OBSERVATION = "OBSERVATION"
AXIOM_PROPAGATION = "PROPAGATION"

ALL_AXIOMS = (
    AXIOM_SC_PER_LOCATION,
    AXIOM_NO_THIN_AIR,
    AXIOM_OBSERVATION,
    AXIOM_PROPAGATION,
)


@dataclass(frozen=True)
class AxiomViolation:
    """A violated axiom together with a witnessing cycle (when available)."""

    axiom: str
    cycle: Optional[tuple] = None

    def describe(self) -> str:
        if not self.cycle:
            return self.axiom
        names = " -> ".join(e.eid for e in self.cycle)
        return f"{self.axiom}: {names}"


def _acyclic_violation(axiom: str, relation: Relation) -> Optional[AxiomViolation]:
    cycle = relation.find_cycle()
    if cycle is None:
        return None
    return AxiomViolation(axiom, tuple(cycle))


def check_sc_per_location(
    execution: Execution, variant: str = "standard"
) -> Optional[AxiomViolation]:
    """``acyclic(po-loc ∪ com)``.

    ``variant`` may be ``"standard"`` or ``"llh"`` (load-load hazard:
    read-read pairs are removed from ``po-loc``, Tab. VII).
    """
    po_loc = execution.po_loc
    if variant == "llh":
        po_loc = po_loc - execution.restrict_rr(po_loc)
    elif variant != "standard":
        raise ValueError(f"unknown SC PER LOCATION variant: {variant!r}")
    return _acyclic_violation(AXIOM_SC_PER_LOCATION, po_loc | execution.com)


def check_no_thin_air(execution: Execution, hb: Relation) -> Optional[AxiomViolation]:
    """``acyclic(hb)`` with ``hb = ppo ∪ fences ∪ rfe``."""
    return _acyclic_violation(AXIOM_NO_THIN_AIR, hb)


def check_observation(
    execution: Execution, prop: Relation, hb: Relation
) -> Optional[AxiomViolation]:
    """``irreflexive(fre; prop; hb*)``."""
    hb_star = hb.reflexive_transitive_closure(execution.memory_events)
    composed = execution.fre.seq(prop).seq(hb_star)
    for src, dst in composed:
        if src == dst:
            return AxiomViolation(AXIOM_OBSERVATION, (src,))
    return None


def check_propagation(
    execution: Execution, prop: Relation, variant: str = "acyclic"
) -> Optional[AxiomViolation]:
    """``acyclic(co ∪ prop)`` — or, for C++ R-A, ``irreflexive(prop; co)``."""
    if variant == "acyclic":
        return _acyclic_violation(AXIOM_PROPAGATION, execution.co | prop)
    if variant == "irreflexive_prop_co":
        composed = prop.seq(execution.co)
        for src, dst in composed:
            if src == dst:
                return AxiomViolation(AXIOM_PROPAGATION, (src,))
        return None
    raise ValueError(f"unknown PROPAGATION variant: {variant!r}")
