"""Candidate executions ``(E, po, rf, co)`` and their derived relations.

An :class:`Execution` packages:

* the set of memory events (including the fictitious initial writes on
  thread ``-1``);
* the program order ``po`` (total per thread over memory events);
* the read-from map ``rf`` and the coherence order ``co``;
* the dependency relations ``addr``, ``data``, ``ctrl``, ``ctrl+cfence``
  produced by the instruction semantics (Sec. 5.2);
* per-fence relations (``sync``, ``lwsync``, ``dmb``...): the pairs of
  memory events in program order separated by a fence of that name.

From these it derives everything the axioms and the architecture
functions use: ``fr``, ``com``, ``po-loc``, internal/external variants,
``rdw``, ``detour`` and the direction-restricted views (WR, WW, RR, RW).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.events import Event, MemoryWrite
from repro.core.relation import Relation


class ExecutionError(ValueError):
    """Raised when an execution is structurally ill-formed."""


@dataclass(frozen=True)
class Execution:
    """A candidate execution of a multi-threaded program."""

    events: FrozenSet[Event]
    po: Relation
    rf: Relation
    co: Relation
    addr: Relation = field(default_factory=Relation)
    data: Relation = field(default_factory=Relation)
    ctrl: Relation = field(default_factory=Relation)
    ctrl_cfence: Relation = field(default_factory=Relation)
    fences_by_name: Mapping[str, Relation] = field(default_factory=dict)
    # `rmw` pairs a load-reserve/store-conditional couple; unused by the
    # base models but exposed for extensions.
    rmw: Relation = field(default_factory=Relation)

    # -- construction helpers ----------------------------------------------------

    @staticmethod
    def initial_writes(
        locations: Iterable[str],
        initial_values: Optional[Mapping[str, int]] = None,
    ) -> List[Event]:
        """The fictitious initial writes for the given locations.

        Initial values default to 0 (the litmus convention); verification
        programs may override them per location.
        """
        values = dict(initial_values or {})
        return [
            Event(
                thread=-1,
                poi=index,
                eid=f"init_{loc}",
                action=MemoryWrite(loc, values.get(loc, 0)),
            )
            for index, loc in enumerate(sorted(set(locations)))
        ]

    def validate(self) -> None:
        """Check structural well-formedness; raise ExecutionError otherwise.

        * rf maps each read to exactly one write to the same location with
          the same value;
        * co is a strict total order per location over the writes to that
          location (including the initial write);
        * po is a strict order that only relates events of the same thread.
        """
        reads = self.reads
        writes = self.writes

        sources: Dict[Event, Event] = {}
        for write, read in self.rf:
            if not write.is_write() or not read.is_read():
                raise ExecutionError(f"rf pair is not write->read: {write} -> {read}")
            if write.location != read.location:
                raise ExecutionError(f"rf pair mixes locations: {write} -> {read}")
            if write.value != read.value:
                raise ExecutionError(f"rf pair mixes values: {write} -> {read}")
            if read in sources:
                raise ExecutionError(f"read {read} has two rf sources")
            sources[read] = write
        for read in reads:
            if read not in sources:
                raise ExecutionError(f"read {read} has no rf source")

        for src, dst in self.co:
            if not src.is_write() or not dst.is_write():
                raise ExecutionError(f"co pair is not write->write: {src} -> {dst}")
            if src.location != dst.location:
                raise ExecutionError(f"co pair mixes locations: {src} -> {dst}")
        for location in self.locations:
            per_loc = [w for w in writes if w.location == location]
            co_loc = self.co.filter(lambda s, t: s.location == location)
            if not co_loc.is_total_over(per_loc):
                raise ExecutionError(f"co is not total over writes to {location}")

        for src, dst in self.po:
            if src.thread != dst.thread:
                raise ExecutionError(f"po relates distinct threads: {src} -> {dst}")
        if not self.po.is_acyclic():
            raise ExecutionError("po has a cycle")

    # -- event sets --------------------------------------------------------------

    @cached_property
    def memory_events(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_memory_access())

    @cached_property
    def reads(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_read())

    @cached_property
    def writes(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.events if e.is_write())

    @cached_property
    def init_writes(self) -> FrozenSet[Event]:
        return frozenset(e for e in self.writes if e.is_init())

    @cached_property
    def locations(self) -> FrozenSet[str]:
        return frozenset(
            e.location for e in self.memory_events if e.location is not None
        )

    @cached_property
    def threads(self) -> Tuple[int, ...]:
        return tuple(sorted({e.thread for e in self.events if not e.is_init()}))

    def events_of_thread(self, thread: int) -> List[Event]:
        return sorted(e for e in self.events if e.thread == thread)

    # -- fundamental derived relations -------------------------------------------

    @cached_property
    def po_loc(self) -> Relation:
        """Program order restricted to pairs accessing the same location."""
        return self.po.same_location()

    @cached_property
    def fr(self) -> Relation:
        """From-read: read r -> write w1 when r reads from w0 co-before w1.

        Computed as ``rf⁻¹; co`` so kernel-backed rf/co stay in the
        bitmask kernel (see :mod:`repro.core.bitrel`).
        """
        return self.rf.inverse().seq(self.co)

    @cached_property
    def com(self) -> Relation:
        """Communications: co ∪ rf ∪ fr."""
        return self.co | self.rf | self.fr

    # internal / external splits

    @cached_property
    def rfe(self) -> Relation:
        return self.rf.external()

    @cached_property
    def rfi(self) -> Relation:
        return self.rf.internal()

    @cached_property
    def coe(self) -> Relation:
        return self.co.external()

    @cached_property
    def coi(self) -> Relation:
        return self.co.internal()

    @cached_property
    def fre(self) -> Relation:
        return self.fr.external()

    @cached_property
    def fri(self) -> Relation:
        return self.fr.internal()

    # ppo building blocks (Fig. 25 / Fig. 27-28)

    @cached_property
    def rdw(self) -> Relation:
        """Read-different-writes: po-loc ∩ (fre; rfe)."""
        return self.po_loc & self.fre.seq(self.rfe)

    @cached_property
    def detour(self) -> Relation:
        """Detour: po-loc ∩ (coe; rfe)."""
        return self.po_loc & self.coe.seq(self.rfe)

    @cached_property
    def dp(self) -> Relation:
        """Dependencies dp = addr ∪ data."""
        return self.addr | self.data

    # -- direction restrictions ---------------------------------------------------

    def restrict_ww(self, relation: Relation) -> Relation:
        return relation.restrict(self.writes, self.writes)

    def restrict_wr(self, relation: Relation) -> Relation:
        return relation.restrict(self.writes, self.reads)

    def restrict_rr(self, relation: Relation) -> Relation:
        return relation.restrict(self.reads, self.reads)

    def restrict_rw(self, relation: Relation) -> Relation:
        return relation.restrict(self.reads, self.writes)

    def restrict_rm(self, relation: Relation) -> Relation:
        return relation.restrict(self.reads, self.memory_events)

    def restrict_wm(self, relation: Relation) -> Relation:
        return relation.restrict(self.writes, self.memory_events)

    def restrict_mw(self, relation: Relation) -> Relation:
        return relation.restrict(self.memory_events, self.writes)

    def restrict_mr(self, relation: Relation) -> Relation:
        return relation.restrict(self.memory_events, self.reads)

    # -- fences --------------------------------------------------------------------

    def fence(self, *names: str) -> Relation:
        """Union of the named per-fence relations (missing names are empty)."""
        result = Relation()
        for name in names:
            result = result | self.fences_by_name.get(name, Relation())
        return result

    @property
    def fence_names(self) -> FrozenSet[str]:
        return frozenset(self.fences_by_name)

    # -- convenience ---------------------------------------------------------------

    def final_memory_state(self) -> Dict[str, int]:
        """Location -> value of the co-maximal write (the final state)."""
        result: Dict[str, int] = {}
        co_closure = self.co.transitive_closure()
        for location in self.locations:
            per_loc = [w for w in self.writes if w.location == location]
            maximal = [
                w for w in per_loc
                if not any((w, other) in co_closure for other in per_loc if other != w)
            ]
            if len(maximal) != 1:
                raise ExecutionError(f"no unique co-maximal write for {location}")
            value = maximal[0].value
            result[location] = value if value is not None else 0
        return result

    def read_values(self) -> Dict[Event, int]:
        """Read event -> value it observed."""
        return {r: r.value for r in self.reads if r.value is not None}

    def describe(self) -> str:
        """Human-readable multi-line description (used by examples and docs)."""
        lines = ["Execution:"]
        for thread in self.threads:
            lines.append(f"  T{thread}:")
            for event in self.events_of_thread(thread):
                lines.append(f"    {event.eid}: {event.action}")
        for name, rel in (
            ("rf", self.rf),
            ("co", self.co),
            ("fr", self.fr),
        ):
            shown = ", ".join(f"{s.eid}->{t.eid}" for s, t in rel.to_sorted_list())
            lines.append(f"  {name}: {shown if shown else '(empty)'}")
        return "\n".join(lines)
