"""Relation algebra over events (the notation of Sec. 4.1).

A :class:`Relation` wraps a frozen set of ``(Event, Event)`` pairs and
provides the operators used throughout the paper and the cat language:

====================  =======================================
paper / cat notation  Relation method or operator
====================  =======================================
``r1 ∪ r2`` / ``|``   ``r1 | r2``
``r1 ∩ r2`` / ``&``   ``r1 & r2``
``r1 \\ r2``          ``r1 - r2``
``r1; r2``            ``r1 @ r2``  (or ``r1.seq(r2)``)
``r+``                ``r.transitive_closure()`` (``r.plus()``)
``r*``                ``r.reflexive_transitive_closure(events)`` (``r.star()``)
``r^-1``              ``r.inverse()``
``acyclic(r)``        ``r.is_acyclic()``
``irreflexive(r)``    ``r.is_irreflexive()``
``WR(r)`` etc.        ``r.restrict(writes, reads)`` / helpers in Execution
====================  =======================================
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.util import digraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.events import Event

Pair = Tuple["Event", "Event"]


#: Sentinel distinguishing "not cached" from a cached ``None`` (find_cycle).
_UNSET = object()


class Relation:
    """An immutable binary relation over events.

    Derived quantities that are expensive to recompute — the transitive
    closure, acyclicity, a witness cycle — are memoized per instance.
    The pair set is frozen at construction, so the caches can never go
    stale; repeated model checks over the same execution (the herd
    simulator checks every axiom of every model against the same po/com
    relations) reuse the work instead of re-walking the graph.
    """

    __slots__ = ("_pairs", "_cache")

    def __init__(self, pairs: Iterable[Pair] = ()):
        self._pairs: FrozenSet[Pair] = frozenset(pairs)
        self._cache: dict = {}

    # -- constructors ------------------------------------------------------------

    @classmethod
    def empty(cls) -> "Relation":
        return _EMPTY

    @classmethod
    def identity(cls, events: Iterable["Event"]) -> "Relation":
        return cls((e, e) for e in events)

    @classmethod
    def from_order(cls, ordered: Iterable["Event"]) -> "Relation":
        """Total order relation of a sequence: every earlier→later pair."""
        items = list(ordered)
        return cls(
            (items[i], items[j])
            for i in range(len(items))
            for j in range(i + 1, len(items))
        )

    @classmethod
    def cartesian(cls, sources: Iterable["Event"], targets: Iterable["Event"]) -> "Relation":
        targets = list(targets)
        return cls((s, t) for s in sources for t in targets if s != t)

    # -- basic protocol ----------------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        return self._pairs

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __bool__(self) -> bool:
        return bool(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            return self._pairs == other._pairs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:
        return f"Relation({len(self._pairs)} pairs)"

    # -- set algebra -------------------------------------------------------------

    def __or__(self, other: "Relation") -> "Relation":
        return Relation(self._pairs | other._pairs)

    def __and__(self, other: "Relation") -> "Relation":
        return Relation(self._pairs & other._pairs)

    def __sub__(self, other: "Relation") -> "Relation":
        return Relation(self._pairs - other._pairs)

    def union(self, *others: "Relation") -> "Relation":
        pairs: Set[Pair] = set(self._pairs)
        for other in others:
            pairs |= other._pairs
        return Relation(pairs)

    def intersection(self, other: "Relation") -> "Relation":
        return self & other

    def difference(self, other: "Relation") -> "Relation":
        return self - other

    # -- relational composition --------------------------------------------------

    def seq(self, other: "Relation") -> "Relation":
        """Relational sequence ``self; other``."""
        by_source: dict = {}
        for src, dst in other._pairs:
            by_source.setdefault(src, []).append(dst)
        result: Set[Pair] = set()
        for src, mid in self._pairs:
            for dst in by_source.get(mid, ()):
                result.add((src, dst))
        return Relation(result)

    def __matmul__(self, other: "Relation") -> "Relation":
        return self.seq(other)

    def inverse(self) -> "Relation":
        return Relation((dst, src) for src, dst in self._pairs)

    def transitive_closure(self) -> "Relation":
        cached = self._cache.get("tc")
        if cached is None:
            cached = Relation(digraph.transitive_closure(self._pairs))
            self._cache["tc"] = cached
        return cached

    def plus(self) -> "Relation":
        """Alias for :meth:`transitive_closure` (the paper's ``r+``)."""
        return self.transitive_closure()

    def reflexive_transitive_closure(self, events: Iterable["Event"] = ()) -> "Relation":
        events = frozenset(events)  # materialize once: also the cache key
        key = ("rtc", events)
        cached = self._cache.get(key)
        if cached is None:
            cached = Relation(digraph.reflexive_transitive_closure(self._pairs, events))
            self._cache[key] = cached
        return cached

    def star(self, events: Iterable["Event"] = ()) -> "Relation":
        """Alias for :meth:`reflexive_transitive_closure` (the paper's ``r*``)."""
        return self.reflexive_transitive_closure(events)

    def optional(self, events: Iterable["Event"] = ()) -> "Relation":
        """Reflexive closure ``r?`` (identity over *events* plus r)."""
        return self | Relation.identity(events)

    # -- restriction -------------------------------------------------------------

    def restrict(
        self,
        sources: Optional[AbstractSet["Event"]] = None,
        targets: Optional[AbstractSet["Event"]] = None,
    ) -> "Relation":
        """Keep pairs whose source/target lie in the given event sets."""
        result = []
        for src, dst in self._pairs:
            if sources is not None and src not in sources:
                continue
            if targets is not None and dst not in targets:
                continue
            result.append((src, dst))
        return Relation(result)

    def filter(self, predicate: Callable[["Event", "Event"], bool]) -> "Relation":
        return Relation((s, t) for s, t in self._pairs if predicate(s, t))

    def internal(self) -> "Relation":
        """Pairs whose events belong to the same thread."""
        return self.filter(lambda s, t: s.thread == t.thread)

    def external(self) -> "Relation":
        """Pairs whose events belong to distinct threads."""
        return self.filter(lambda s, t: s.thread != t.thread)

    def same_location(self) -> "Relation":
        return self.filter(
            lambda s, t: s.location is not None and s.location == t.location
        )

    # -- predicates --------------------------------------------------------------

    def is_irreflexive(self) -> bool:
        return all(src != dst for src, dst in self._pairs)

    def is_acyclic(self) -> bool:
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[List["Event"]]:
        cached = self._cache.get("cycle", _UNSET)
        if cached is _UNSET:
            cached = digraph.find_cycle(self._pairs)
            self._cache["cycle"] = cached
        return list(cached) if cached is not None else None

    def is_transitive(self) -> bool:
        return self.transitive_closure() == self

    def is_total_over(self, events: Iterable["Event"]) -> bool:
        """True iff the relation totally orders *events* (a strict total order)."""
        events = list(events)
        if not self.is_acyclic():
            return False
        for i, left in enumerate(events):
            for right in events[i + 1:]:
                closure = self.transitive_closure()
                if (left, right) not in closure and (right, left) not in closure:
                    return False
        return True

    # -- projections -------------------------------------------------------------

    def domain(self) -> FrozenSet["Event"]:
        return frozenset(src for src, _ in self._pairs)

    def range(self) -> FrozenSet["Event"]:
        return frozenset(dst for _, dst in self._pairs)

    def events(self) -> FrozenSet["Event"]:
        """Union of domain and range (the paper's ``udr(r)``)."""
        result: Set["Event"] = set()
        for src, dst in self._pairs:
            result.add(src)
            result.add(dst)
        return frozenset(result)

    def successors(self, event: "Event") -> FrozenSet["Event"]:
        return frozenset(dst for src, dst in self._pairs if src == event)

    def predecessors(self, event: "Event") -> FrozenSet["Event"]:
        return frozenset(src for src, dst in self._pairs if dst == event)

    def to_sorted_list(self) -> List[Pair]:
        """Deterministic listing of the pairs (for display and tests)."""
        return sorted(self._pairs, key=lambda p: (p[0], p[1]))


_EMPTY = Relation()
