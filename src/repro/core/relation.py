"""Relation algebra over events (the notation of Sec. 4.1).

A :class:`Relation` wraps a binary relation over events and provides the
operators used throughout the paper and the cat language:

====================  =======================================
paper / cat notation  Relation method or operator
====================  =======================================
``r1 ∪ r2`` / ``|``   ``r1 | r2``
``r1 ∩ r2`` / ``&``   ``r1 & r2``
``r1 \\ r2``          ``r1 - r2``
``r1; r2``            ``r1 @ r2``  (or ``r1.seq(r2)``)
``r+``                ``r.transitive_closure()`` (``r.plus()``)
``r*``                ``r.reflexive_transitive_closure(events)`` (``r.star()``)
``r^-1``              ``r.inverse()``
``acyclic(r)``        ``r.is_acyclic()``
``irreflexive(r)``    ``r.is_irreflexive()``
``WR(r)`` etc.        ``r.restrict(writes, reads)`` / helpers in Execution
====================  =======================================

Two representations live behind the one public API:

* **pairs mode** — a frozenset of ``(Event, Event)`` pairs, used for
  ad-hoc relations over arbitrary events;
* **kernel mode** — an :class:`~repro.core.bitrel.EventIndex` plus one
  successor bitmask per source event (see :mod:`repro.core.bitrel`).
  The enumeration engine interns each candidate family's event universe
  once and every derived relation (po, rf, co, ppo, prop, hb, ...) stays
  in the kernel, where union/intersection/sequence/closure/acyclicity
  are word-parallel bitwise operations.

Operators combine two kernel relations over the *same* index in the
kernel; a pairs-mode operand whose events all belong to the index is
re-interned on the fly; anything else falls back to pair sets.  The
``pairs`` view of a kernel relation is materialized lazily.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.core import bitrel
from repro.core.bitrel import EventIndex, iter_bits
from repro.util import digraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.events import Event

Pair = Tuple["Event", "Event"]


#: Sentinel distinguishing "not cached" from a cached ``None`` (find_cycle).
_UNSET = object()


class Relation:
    """An immutable binary relation over events.

    Derived quantities that are expensive to recompute — the transitive
    closure, acyclicity, a witness cycle — are memoized per instance.
    The relation is frozen at construction, so the caches can never go
    stale; repeated model checks over the same execution (the herd
    simulator checks every axiom of every model against the same po/com
    relations) reuse the work instead of re-walking the graph.
    """

    __slots__ = ("_pairs", "_cache", "_index", "_rows")

    def __init__(self, pairs: Iterable[Pair] = ()):
        self._pairs: Optional[FrozenSet[Pair]] = frozenset(pairs)
        self._cache: dict = {}
        self._index: Optional[EventIndex] = None
        self._rows: Optional[Tuple[int, ...]] = None

    # -- constructors ------------------------------------------------------------

    def __getstate__(self) -> tuple:
        # The memo cache (closures, witness cycles) is recomputable and
        # can dwarf the relation itself: drop it when a relation crosses
        # a process boundary (e.g. inside a BMC counterexample shipped
        # back from a campaign worker).
        return (self._pairs, self._index, self._rows)

    def __setstate__(self, state: tuple) -> None:
        self._pairs, self._index, self._rows = state
        self._cache = {}

    @classmethod
    def empty(cls) -> "Relation":
        return _EMPTY

    @classmethod
    def from_rows(cls, index: EventIndex, rows: Iterable[int]) -> "Relation":
        """A kernel-mode relation over *index* with the given successor rows."""
        self = cls.__new__(cls)
        self._pairs = None
        self._cache = {}
        self._index = index
        self._rows = rows if type(rows) is tuple else tuple(rows)
        return self

    @classmethod
    def identity(cls, events: Iterable["Event"]) -> "Relation":
        return cls((e, e) for e in events)

    @classmethod
    def from_order(cls, ordered: Iterable["Event"]) -> "Relation":
        """Total order relation of a sequence: every earlier→later pair."""
        items = list(ordered)
        return cls(
            (items[i], items[j])
            for i in range(len(items))
            for j in range(i + 1, len(items))
        )

    @classmethod
    def cartesian(cls, sources: Iterable["Event"], targets: Iterable["Event"]) -> "Relation":
        targets = list(targets)
        return cls((s, t) for s in sources for t in targets if s != t)

    # -- basic protocol ----------------------------------------------------------

    @property
    def pairs(self) -> FrozenSet[Pair]:
        if self._pairs is None:
            assert self._index is not None and self._rows is not None
            self._pairs = frozenset(self._index.pairs_of_rows(self._rows))
        return self._pairs

    def _rows_in(self, index: EventIndex) -> Optional[Sequence[int]]:
        """This relation's rows re-indexed in *index*, or None if foreign."""
        if self._index is index:
            return self._rows
        return index.rows_of_pairs(self.pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self.pairs)

    def __len__(self) -> int:
        if self._pairs is None:
            return sum(row.bit_count() for row in self._rows)  # type: ignore[union-attr]
        return len(self._pairs)

    def __bool__(self) -> bool:
        if self._pairs is None:
            return any(self._rows)  # type: ignore[arg-type]
        return bool(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        if self._pairs is None:
            ids = self._index.ids  # type: ignore[union-attr]
            src = ids.get(pair[0])
            dst = ids.get(pair[1])
            if src is None or dst is None:
                return False
            return bool(self._rows[src] >> dst & 1)  # type: ignore[index]
        return pair in self._pairs

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Relation):
            if (
                self._index is not None
                and self._index is other._index
            ):
                return self._rows == other._rows
            return self.pairs == other.pairs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.pairs)

    def __repr__(self) -> str:
        return f"Relation({len(self)} pairs)"

    # -- set algebra -------------------------------------------------------------

    def __or__(self, other: "Relation") -> "Relation":
        index = self._index if self._index is not None else other._index
        if index is not None:
            left = self._rows_in(index)
            right = other._rows_in(index) if left is not None else None
            if right is not None:
                return Relation.from_rows(
                    index, tuple(a | b for a, b in zip(left, right))
                )
        return Relation(self.pairs | other.pairs)

    def __and__(self, other: "Relation") -> "Relation":
        index = self._index if self._index is not None else other._index
        if index is not None:
            left = self._rows_in(index)
            right = other._rows_in(index) if left is not None else None
            if right is not None:
                return Relation.from_rows(
                    index, tuple(a & b for a, b in zip(left, right))
                )
        return Relation(self.pairs & other.pairs)

    def __sub__(self, other: "Relation") -> "Relation":
        index = self._index if self._index is not None else other._index
        if index is not None:
            left = self._rows_in(index)
            right = other._rows_in(index) if left is not None else None
            if right is not None:
                return Relation.from_rows(
                    index, tuple(a & ~b for a, b in zip(left, right))
                )
        return Relation(self.pairs - other.pairs)

    def union(self, *others: "Relation") -> "Relation":
        result = self
        for other in others:
            result = result | other
        return result

    def intersection(self, other: "Relation") -> "Relation":
        return self & other

    def difference(self, other: "Relation") -> "Relation":
        return self - other

    # -- relational composition --------------------------------------------------

    def seq(self, other: "Relation") -> "Relation":
        """Relational sequence ``self; other``."""
        index = self._index if self._index is not None else other._index
        if index is not None:
            left = self._rows_in(index)
            if left is not None:
                right = other._rows_in(index)
                if right is not None:
                    return Relation.from_rows(index, bitrel.rows_seq(left, right))
        by_source: dict = {}
        for src, dst in other.pairs:
            by_source.setdefault(src, []).append(dst)
        result: Set[Pair] = set()
        for src, mid in self.pairs:
            for dst in by_source.get(mid, ()):
                result.add((src, dst))
        return Relation(result)

    def __matmul__(self, other: "Relation") -> "Relation":
        return self.seq(other)

    def inverse(self) -> "Relation":
        if self._index is not None:
            return Relation.from_rows(self._index, bitrel.rows_inverse(self._rows))
        return Relation((dst, src) for src, dst in self.pairs)

    def transitive_closure(self) -> "Relation":
        cached = self._cache.get("tc")
        if cached is None:
            if self._index is not None:
                cached = Relation.from_rows(
                    self._index, bitrel.rows_closure(self._rows)
                )
            else:
                cached = Relation(digraph.transitive_closure(self._pairs))
            self._cache["tc"] = cached
        return cached

    def plus(self) -> "Relation":
        """Alias for :meth:`transitive_closure` (the paper's ``r+``)."""
        return self.transitive_closure()

    def reflexive_transitive_closure(self, events: Iterable["Event"] = ()) -> "Relation":
        if self._index is not None:
            index = self._index
            extra = events if isinstance(events, frozenset) else frozenset(events)
            mask = index.mask_of(extra)
            key = ("rtc", mask)
            cached = self._cache.get(key)
            if cached is None:
                closure = bitrel.rows_closure(self._rows)
                nodes = mask
                for i, row in enumerate(self._rows):  # type: ignore[arg-type]
                    if row:
                        nodes |= (1 << i) | row
                cached = Relation.from_rows(
                    index,
                    (
                        row | (1 << i) if nodes >> i & 1 else row
                        for i, row in enumerate(closure)
                    ),
                )
                self._cache[key] = cached
            return cached
        events = frozenset(events)  # materialize once: also the cache key
        key = ("rtc", events)
        cached = self._cache.get(key)
        if cached is None:
            cached = Relation(digraph.reflexive_transitive_closure(self._pairs, events))
            self._cache[key] = cached
        return cached

    def star(self, events: Iterable["Event"] = ()) -> "Relation":
        """Alias for :meth:`reflexive_transitive_closure` (the paper's ``r*``)."""
        return self.reflexive_transitive_closure(events)

    def optional(self, events: Iterable["Event"] = ()) -> "Relation":
        """Reflexive closure ``r?`` (identity over *events* plus r)."""
        if self._index is not None:
            mask = self._index.mask_of(
                events if isinstance(events, frozenset) else frozenset(events)
            )
            return Relation.from_rows(
                self._index,
                (
                    row | (1 << i) if mask >> i & 1 else row
                    for i, row in enumerate(self._rows)  # type: ignore[arg-type]
                ),
            )
        return self | Relation.identity(events)

    # -- restriction -------------------------------------------------------------

    def restrict(
        self,
        sources: Optional[AbstractSet["Event"]] = None,
        targets: Optional[AbstractSet["Event"]] = None,
    ) -> "Relation":
        """Keep pairs whose source/target lie in the given event sets."""
        if self._index is not None:
            index = self._index
            source_mask = index.all_mask if sources is None else index.mask_of(sources)
            target_mask = index.all_mask if targets is None else index.mask_of(targets)
            return Relation.from_rows(
                index,
                (
                    (row & target_mask) if source_mask >> i & 1 else 0
                    for i, row in enumerate(self._rows)  # type: ignore[arg-type]
                ),
            )
        adjacency = self._adjacency()
        result: List[Pair] = []
        for src, dsts in adjacency.items():
            if sources is not None and src not in sources:
                continue
            if targets is not None:
                dsts = dsts & targets
            result.extend((src, dst) for dst in dsts)
        return Relation(result)

    def filter(self, predicate: Callable[["Event", "Event"], bool]) -> "Relation":
        return Relation((s, t) for s, t in self.pairs if predicate(s, t))

    def internal(self) -> "Relation":
        """Pairs whose events belong to the same thread."""
        if self._index is not None:
            masks = self._index.internal_masks
            return Relation.from_rows(
                self._index,
                (row & masks[i] for i, row in enumerate(self._rows)),  # type: ignore[arg-type]
            )
        return self.filter(lambda s, t: s.thread == t.thread)

    def external(self) -> "Relation":
        """Pairs whose events belong to distinct threads."""
        if self._index is not None:
            masks = self._index.internal_masks
            return Relation.from_rows(
                self._index,
                (row & ~masks[i] for i, row in enumerate(self._rows)),  # type: ignore[arg-type]
            )
        return self.filter(lambda s, t: s.thread != t.thread)

    def same_location(self) -> "Relation":
        if self._index is not None:
            masks = self._index.same_location_masks
            return Relation.from_rows(
                self._index,
                (row & masks[i] for i, row in enumerate(self._rows)),  # type: ignore[arg-type]
            )
        return self.filter(
            lambda s, t: s.location is not None and s.location == t.location
        )

    # -- predicates --------------------------------------------------------------

    def is_irreflexive(self) -> bool:
        if self._index is not None:
            return not any(
                row >> i & 1 for i, row in enumerate(self._rows)  # type: ignore[arg-type]
            )
        return all(src != dst for src, dst in self._pairs)

    def is_acyclic(self) -> bool:
        if self._index is not None and "cycle" not in self._cache:
            closure = self.transitive_closure()
            return not bitrel.rows_has_cycle(closure._rows)  # type: ignore[arg-type]
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[List["Event"]]:
        cached = self._cache.get("cycle", _UNSET)
        if cached is _UNSET:
            if self._index is not None:
                closure = self.transitive_closure()
                ids = bitrel.rows_find_cycle(self._rows, closure._rows)
                cached = (
                    None
                    if ids is None
                    else [self._index.events[i] for i in ids]
                )
            else:
                cached = digraph.find_cycle(self._pairs)
            self._cache["cycle"] = cached
        return list(cached) if cached is not None else None

    def is_transitive(self) -> bool:
        return self.transitive_closure() == self

    def is_total_over(self, events: Iterable["Event"]) -> bool:
        """True iff the relation totally orders *events* (a strict total order)."""
        events = list(events)
        if not self.is_acyclic():
            return False
        closure = self.transitive_closure()
        for i, left in enumerate(events):
            for right in events[i + 1:]:
                if (left, right) not in closure and (right, left) not in closure:
                    return False
        return True

    # -- projections -------------------------------------------------------------

    def _adjacency(self) -> dict:
        """source -> frozenset of targets (pairs mode; memoized)."""
        adjacency = self._cache.get("adj")
        if adjacency is None:
            grouped: dict = {}
            for src, dst in self.pairs:
                grouped.setdefault(src, []).append(dst)
            adjacency = {src: frozenset(dsts) for src, dsts in grouped.items()}
            self._cache["adj"] = adjacency
        return adjacency

    def _reverse_adjacency(self) -> dict:
        """target -> frozenset of sources (pairs mode; memoized)."""
        adjacency = self._cache.get("radj")
        if adjacency is None:
            grouped: dict = {}
            for src, dst in self.pairs:
                grouped.setdefault(dst, []).append(src)
            adjacency = {dst: frozenset(srcs) for dst, srcs in grouped.items()}
            self._cache["radj"] = adjacency
        return adjacency

    def domain(self) -> FrozenSet["Event"]:
        if self._index is not None:
            mask = 0
            for i, row in enumerate(self._rows):  # type: ignore[arg-type]
                if row:
                    mask |= 1 << i
            return frozenset(self._index.events_of(mask))
        return frozenset(self._adjacency())

    def range(self) -> FrozenSet["Event"]:
        if self._index is not None:
            mask = 0
            for row in self._rows:  # type: ignore[union-attr]
                mask |= row
            return frozenset(self._index.events_of(mask))
        return frozenset(self._reverse_adjacency())

    def events(self) -> FrozenSet["Event"]:
        """Union of domain and range (the paper's ``udr(r)``)."""
        return self.domain() | self.range()

    def successors(self, event: "Event") -> FrozenSet["Event"]:
        if self._index is not None:
            i = self._index.ids.get(event)
            if i is None:
                return frozenset()
            return frozenset(self._index.events_of(self._rows[i]))  # type: ignore[index]
        return self._adjacency().get(event, frozenset())

    def predecessors(self, event: "Event") -> FrozenSet["Event"]:
        if self._index is not None:
            i = self._index.ids.get(event)
            if i is None:
                return frozenset()
            bit = 1 << i
            mask = 0
            for j, row in enumerate(self._rows):  # type: ignore[arg-type]
                if row & bit:
                    mask |= 1 << j
            return frozenset(self._index.events_of(mask))
        return self._reverse_adjacency().get(event, frozenset())

    def to_sorted_list(self) -> List[Pair]:
        """Deterministic listing of the pairs (for display and tests)."""
        return sorted(self.pairs, key=lambda p: (p[0], p[1]))


_EMPTY = Relation()
