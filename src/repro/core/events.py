"""Events and actions (Sec. 4.1 and Sec. 5 of the paper).

An :class:`Event` is a unique occurrence of an action during an execution:
it carries an identifier, the thread that holds it, its program-order
index within that thread, and an :class:`Action`.

Actions follow Sec. 5: memory reads/writes, register reads/writes,
branching events and fence events.  Memory events are the only events
that participate in the axioms of the model; register events, branch
events and ``iico`` edges are used to compute the dependency relations
(addr, data, ctrl, ctrl+cfence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


@dataclass(frozen=True)
class Action:
    """Base class for all actions."""

    def is_memory_access(self) -> bool:
        return isinstance(self, (MemoryRead, MemoryWrite))

    def is_read(self) -> bool:
        return isinstance(self, MemoryRead)

    def is_write(self) -> bool:
        return isinstance(self, MemoryWrite)

    def is_register_access(self) -> bool:
        return isinstance(self, (RegisterRead, RegisterWrite))

    def is_branch(self) -> bool:
        return isinstance(self, BranchEvent)

    def is_fence(self) -> bool:
        return isinstance(self, FenceEvent)


@dataclass(frozen=True)
class MemoryRead(Action):
    """Read of ``value`` from shared memory location ``location``."""

    location: str
    value: int

    def __str__(self) -> str:
        return f"R{self.location}={self.value}"


@dataclass(frozen=True)
class MemoryWrite(Action):
    """Write of ``value`` to shared memory location ``location``."""

    location: str
    value: int

    def __str__(self) -> str:
        return f"W{self.location}={self.value}"


@dataclass(frozen=True)
class RegisterRead(Action):
    """Read of ``value`` from thread-private register ``register``."""

    register: str
    value: int

    def __str__(self) -> str:
        return f"Rreg:{self.register}={self.value}"


@dataclass(frozen=True)
class RegisterWrite(Action):
    """Write of ``value`` to thread-private register ``register``."""

    register: str
    value: int

    def __str__(self) -> str:
        return f"Wreg:{self.register}={self.value}"


@dataclass(frozen=True)
class BranchEvent(Action):
    """A branching decision (emitted whether or not the branch is taken)."""

    taken: bool = True

    def __str__(self) -> str:
        return "branch"


@dataclass(frozen=True)
class FenceEvent(Action):
    """A fence instruction, named after the assembly mnemonic.

    ``name`` is one of ``sync``, ``lwsync``, ``eieio``, ``isync`` (Power),
    ``dmb``, ``dsb``, ``dmb.st``, ``dsb.st``, ``isb`` (ARM) or ``mfence``
    (x86/TSO).
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Event:
    """One event of a candidate execution.

    Events are ordered (and hashed) by ``(thread, poi, eid)`` so that
    relation dumps and enumeration orders are deterministic.

    Attributes
    ----------
    eid:
        Globally unique identifier (also used as the label in diagrams,
        e.g. ``a``, ``b``...).
    thread:
        Index of the thread holding the instruction; the fictitious
        initial writes live on thread ``-1``.
    poi:
        Program-order index of the instruction within its thread.
    action:
        The :class:`Action` performed.
    instruction_index:
        Index of the source instruction (several events may share it;
        they are then related by ``iico``).
    """

    thread: int
    poi: int
    eid: str
    action: Action = field(compare=False)
    instruction_index: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        # Events are dict keys in every interning table and relation; the
        # tuple hash is precomputed once instead of per lookup.  The value
        # matches the dataclass-generated hash over the compare fields.
        object.__setattr__(self, "_hash", hash((self.thread, self.poi, self.eid)))

    def __getstate__(self) -> dict:
        # The precomputed hash involves a str and str hashing is salted
        # per process: a hash pickled by one process is wrong in another.
        # Drop it here and recompute on unpickle, so events (inside
        # relations, executions, counterexamples) can cross the campaign
        # runtime's process boundary safely.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        object.__setattr__(self, "_hash", hash((self.thread, self.poi, self.eid)))

    # -- convenience predicates -------------------------------------------------

    def is_memory_access(self) -> bool:
        return self.action.is_memory_access()

    def is_read(self) -> bool:
        return self.action.is_read()

    def is_write(self) -> bool:
        return self.action.is_write()

    def is_register_read(self) -> bool:
        return isinstance(self.action, RegisterRead)

    def is_register_write(self) -> bool:
        return isinstance(self.action, RegisterWrite)

    def is_branch(self) -> bool:
        return self.action.is_branch()

    def is_fence(self, name: Optional[str] = None) -> bool:
        if not self.action.is_fence():
            return False
        if name is None:
            return True
        return self.action.name == name  # type: ignore[union-attr]

    def is_init(self) -> bool:
        """True for the fictitious initial writes (thread -1)."""
        return self.thread == -1

    # -- attribute helpers -------------------------------------------------------

    @property
    def location(self) -> Optional[str]:
        """Memory location accessed, or None for non-memory events."""
        action = self.action
        if isinstance(action, (MemoryRead, MemoryWrite)):
            return action.location
        return None

    @property
    def register(self) -> Optional[str]:
        action = self.action
        if isinstance(action, (RegisterRead, RegisterWrite)):
            return action.register
        return None

    @property
    def value(self) -> Optional[int]:
        action = self.action
        if isinstance(action, (MemoryRead, MemoryWrite, RegisterRead, RegisterWrite)):
            return action.value
        return None

    def __str__(self) -> str:
        where = "init" if self.is_init() else f"T{self.thread}"
        return f"{self.eid}:{where}:{self.action}"

    def __repr__(self) -> str:
        return f"Event({self!s})"


def _cached_hash(self: Event) -> int:
    return self._hash  # type: ignore[attr-defined]


# Installed after class creation: @dataclass(frozen=True) would otherwise
# replace an in-class __hash__ with the generated tuple hash.
Event.__hash__ = _cached_hash  # type: ignore[assignment]


def proc(event: Event) -> int:
    """The thread holding the event (the paper's ``proc(e)``)."""
    return event.thread


def addr(event: Event) -> Optional[str]:
    """The memory location of the event (the paper's ``addr(e)``)."""
    return event.location


_EVENT_NAMES = "abcdefghijklmnopqrstuvwxyz"


def event_name(index: int) -> str:
    """Generate diagram-style event names: a, b, ..., z, aa, ab, ..."""
    name = ""
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, 26)
        name = _EVENT_NAMES[rem] + name
    return name
