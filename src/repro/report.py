"""The uniform ``Report`` protocol every result type conforms to.

The toolbox produces many result shapes — simulation summaries, repair
reports, hardware-campaign records, mole censuses, family sweeps, BMC
results — and a long-lived service wants to serialize all of them the
same way.  Every result type therefore implements:

* ``describe()`` — a human-readable multi-line summary;
* ``to_dict()`` — a JSON-plain dictionary (strings, numbers, booleans,
  ``None``, lists and string-keyed dictionaries only), so
  ``json.loads(r.to_json()) == r.to_dict()`` round-trips exactly;
* ``to_json()`` — the canonical JSON rendering of ``to_dict()``
  (sorted keys, optional indentation);

and, where an Allow/Forbid question is being answered, a ``verdict``
attribute.  :class:`Report` is the :class:`typing.Protocol` of that
surface; :class:`JsonReportMixin` supplies ``to_json`` from ``to_dict``
so result dataclasses only write the dictionary half.

``to_dict`` deliberately serializes *summaries*, not live objects:
litmus tests appear by name (and, for repaired tests, by their pretty
rendering), candidate executions as counts or presence flags.  The
dictionaries are for transport and archival, not for reconstructing
simulator state.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Protocol, runtime_checkable

__all__ = ["Report", "JsonReportMixin", "render_json", "plain"]


@runtime_checkable
class Report(Protocol):
    """What every result type of the toolbox exposes."""

    def describe(self) -> str:
        ...

    def to_dict(self) -> Dict[str, Any]:
        ...

    def to_json(self, indent: Optional[int] = None) -> str:
        ...


def plain(value: Any) -> Any:
    """Recursively coerce a value into JSON-plain data.

    Tuples become lists, sets and frozensets become sorted lists,
    mapping keys become strings; anything not already JSON-native is
    rendered with ``str``.  The shipped ``to_dict`` implementations
    build JSON-plain dictionaries by hand (the test-suite uses this
    helper to prove it); new report types with deeper structures can
    funnel their fields through it instead.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(key): plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [plain(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted((plain(item) for item in value), key=repr)
    return str(value)


def render_json(report: Report, indent: Optional[int] = None) -> str:
    """The canonical JSON rendering of a report (sorted keys)."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


class JsonReportMixin:
    """Supplies ``to_json`` to any class defining ``to_dict``."""

    def to_json(self, indent: Optional[int] = None) -> str:
        return render_json(self, indent=indent)  # type: ignore[arg-type]


def outcome_key(outcome) -> str:
    """Render one litmus outcome (a tuple of (name, value) pairs) as a
    stable string key, e.g. ``"0:EAX=0; 1:EAX=1"``."""
    return "; ".join(f"{name}={value}" for name, value in outcome)
