"""A multi-event axiomatic model in the style of Mador-Haim et al. (CAV 2012).

The distinguishing feature of that family of models is the event
explosion: the propagation of a write ``w`` is represented by one event
``prop(w, T)`` per thread ``T`` rather than by a single write event.
The constraints the model places on executions are (experimentally) the
same as the single-event model of this paper, but every relational check
runs over the enlarged event set.

This module materialises exactly that cost:

* :func:`lift_relation` replaces every write by its per-thread
  propagation copies (reads keep a single copy), multiplying the size of
  the relations by the thread count;
* :class:`MultiEventModel` checks the four axioms over the lifted
  relations (acyclicity and irreflexivity over per-thread copies are
  equivalent to the single-event checks — a cycle lives entirely inside
  one thread layer — so the verdicts agree with the single-event model
  by construction while the work grows with the number of copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core import axioms
from repro.core.architectures import power_architecture
from repro.core.axioms import AxiomViolation
from repro.core.bitrel import EventIndex, iter_bits
from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.model import Architecture, CheckResult
from repro.core.relation import Relation
from repro.herd.engine import surviving_candidates
from repro.litmus.ast import LitmusTest


@dataclass(frozen=True, order=True)
class PropagationCopy:
    """The copy of an event as seen by one thread (a ``prop(w, T)`` event)."""

    event: Event
    thread: int


def propagation_copies(execution: Execution) -> Dict[Event, List[PropagationCopy]]:
    """One propagation copy per (write, thread); reads keep a single copy."""
    threads = execution.threads if execution.threads else (0,)
    copies: Dict[Event, List[PropagationCopy]] = {}
    for event in execution.memory_events:
        if event.is_write():
            copies[event] = [PropagationCopy(event, thread) for thread in threads]
        else:
            copies[event] = [PropagationCopy(event, event.thread)]
    return copies


def lift_relation(
    relation: Relation,
    copies: Dict[Event, List[PropagationCopy]],
    index: Optional[EventIndex] = None,
) -> Relation:
    """Lift a relation over events to the per-thread propagation copies.

    Each pair ``(x, y)`` becomes ``(x_T, y_T)`` for every thread ``T``
    (events with a single copy contribute their copy to every layer), so
    a cycle exists in the lifted relation iff one exists in the original.

    When an :class:`EventIndex` over the copies is supplied, the lifted
    relation is built directly in the bitmask kernel — the model still
    pays for the enlarged event set (the point of the Tab. IX cost
    comparison), but its relational algebra runs on the same kernel as
    the single-event model.
    """
    if index is not None:
        rows = [0] * index.n
        ids = index.ids
        for source, target in relation:
            source_copies = copies.get(source, ())
            target_copies = copies.get(target, ())
            single = len(source_copies) == 1 or len(target_copies) == 1
            for source_copy in source_copies:  # pragma: no branch
                row = 0
                for target_copy in target_copies:
                    if single or source_copy.thread == target_copy.thread:
                        row |= 1 << ids[target_copy]
                rows[ids[source_copy]] |= row
        return Relation.from_rows(index, rows)
    pairs = []
    for source, target in relation:
        for source_copy in copies.get(source, ()):  # pragma: no branch
            for target_copy in copies.get(target, ()):
                if (
                    source_copy.thread == target_copy.thread
                    or len(copies.get(source, ())) == 1
                    or len(copies.get(target, ())) == 1
                ):
                    pairs.append((source_copy, target_copy))
    return Relation(pairs)


class MultiEventModel:
    """The four axioms checked over per-thread propagation copies."""

    def __init__(self, architecture: Optional[Architecture] = None):
        self.architecture = architecture if architecture is not None else power_architecture()
        #: events-universe -> (copies, copy index).  Candidates of one
        #: family share their event set, so the per-thread copies and
        #: their interning table are built once per family, not per
        #: candidate.  (Keyed by the frozen event set itself; bounded by
        #: the number of distinct families a model instance sees.)
        self._copy_cache: Dict[object, Tuple[dict, EventIndex, Optional[tuple]]] = {}

    @property
    def name(self) -> str:
        return f"multi-event({self.architecture.name})"

    def _copies_of(self, execution: Execution) -> Tuple[dict, EventIndex, Optional[tuple]]:
        # Key by the interning table object when there is one: candidates
        # of one combination share it, and the id-level lift tables only
        # apply to relations over that exact index.  (EventIndex has
        # identity semantics, and being the key keeps it alive.)
        origin = execution.po._index
        key: object = origin if origin is not None else execution.events
        cached = self._copy_cache.get(key)
        if cached is None:
            copies = propagation_copies(execution)
            copy_index = EventIndex(
                (
                    copy
                    for event in sorted(copies)
                    for copy in copies[event]
                ),
                # Copies order as (event, thread) and each per-event list
                # ascends by thread, so this flattening is presorted.
                presorted=True,
            )
            # Id-level lift tables: when the execution's relations live in
            # the bitmask kernel, lifting works on integer ids alone —
            # per original id, whether it is single-copy, the mask of all
            # its copies, and its copy id per thread layer.
            lift_table = None
            if origin is not None and all(
                event in origin.ids for event in copies
            ):
                single = [False] * origin.n
                all_copies = [0] * origin.n
                by_thread: List[Dict[int, int]] = [dict() for _ in range(origin.n)]
                for event, event_copies in copies.items():
                    i = origin.ids[event]
                    single[i] = len(event_copies) == 1
                    for copy in event_copies:
                        copy_id = copy_index.ids[copy]
                        all_copies[i] |= 1 << copy_id
                        by_thread[i][copy.thread] = copy_id
                lift_table = (origin, single, all_copies, by_thread)
            cached = (copies, copy_index, lift_table)
            if len(self._copy_cache) > 64:  # families come and go; stay bounded
                self._copy_cache.clear()
            self._copy_cache[key] = cached
        return cached

    @staticmethod
    def _lift(
        relation: Relation,
        copies: dict,
        copy_index: EventIndex,
        lift_table: Optional[tuple],
    ) -> Relation:
        """Lift through the id tables when possible, else via the events."""
        if lift_table is not None:
            origin, single, all_copies, by_thread = lift_table
            rows = relation._rows_in(origin)
            if rows is not None:
                lifted = [0] * copy_index.n
                for i, row in enumerate(rows):
                    if not row:
                        continue
                    source_layers = by_thread[i]
                    for j in iter_bits(row):
                        if single[i] or single[j]:
                            mask = all_copies[j]
                            for copy_id in source_layers.values():
                                lifted[copy_id] |= mask
                        else:
                            target_layers = by_thread[j]
                            for thread, copy_id in source_layers.items():
                                target = target_layers.get(thread)
                                if target is not None:
                                    lifted[copy_id] |= 1 << target
                return Relation.from_rows(copy_index, lifted)
        return lift_relation(relation, copies, copy_index)

    def check(
        self,
        execution: Execution,
        stop_at_first: bool = False,
        assume_sc_per_location: bool = False,
    ) -> CheckResult:
        """Check the lifted axioms.

        ``assume_sc_per_location`` skips the lifted SC PER LOCATION
        cycle check: a cycle exists in the lifted relation iff one
        exists in the original, so for candidates the pruning engine
        already proved uniproc-consistent the check cannot fail.
        """
        arch = self.architecture
        copies, copy_index, lift_table = self._copies_of(execution)
        violations: List[AxiomViolation] = []

        def lifted_cycle_check(label: str, relation: Relation) -> Optional[AxiomViolation]:
            lifted = self._lift(relation, copies, copy_index, lift_table)
            cycle = lifted.find_cycle()
            if cycle is None:
                return None
            return AxiomViolation(label, tuple(copy.event for copy in cycle))

        if not assume_sc_per_location:
            violation = lifted_cycle_check(
                axioms.AXIOM_SC_PER_LOCATION, execution.po_loc | execution.com
            )
            if violation is not None:
                violations.append(violation)
                if stop_at_first:
                    return CheckResult(False, tuple(violations))

        ppo = arch.ppo(execution)
        fences = arch.fences(execution)
        hb = ppo | fences | execution.rfe

        violation = lifted_cycle_check(axioms.AXIOM_NO_THIN_AIR, hb)
        if violation is not None:
            violations.append(violation)
            if stop_at_first:
                return CheckResult(False, tuple(violations))

        prop = arch.prop(execution, ppo, fences)

        # OBSERVATION: irreflexive(fre; prop; hb*), composed over the copies.
        lifted_fre = self._lift(execution.fre, copies, copy_index, lift_table)
        lifted_prop = self._lift(prop, copies, copy_index, lift_table)
        lifted_hb_star = self._lift(hb, copies, copy_index, lift_table).reflexive_transitive_closure(
            frozenset(copy_index.events)
        )
        composed = lifted_fre.seq(lifted_prop).seq(lifted_hb_star)
        if not composed.is_irreflexive():
            source = next(s for s, t in composed if s == t)
            violations.append(AxiomViolation(axioms.AXIOM_OBSERVATION, (source.event,)))
            if stop_at_first:
                return CheckResult(False, tuple(violations))

        violation = lifted_cycle_check(axioms.AXIOM_PROPAGATION, execution.co | prop)
        if violation is not None:
            violations.append(violation)

        return CheckResult(not violations, tuple(violations))

    def allows(self, execution: Execution) -> bool:
        return self.check(execution, stop_at_first=True).allowed

    def __repr__(self) -> str:
        return f"MultiEventModel({self.architecture.name})"


class MultiEventSimulator:
    """Litmus simulation through the multi-event model (Tab. IX's middle row)."""

    def __init__(self, architecture: Optional[Architecture] = None):
        self.model = MultiEventModel(architecture)

    @property
    def name(self) -> str:
        return self.model.name

    def verdict(self, test: LitmusTest) -> str:
        assert test.condition is not None, "litmus tests carry a final condition"
        # Uniproc-violating candidates are forbidden by the lifted
        # SC PER LOCATION check, so only the pruning engine's survivors
        # can contribute an Allow verdict — and for those the lifted
        # uniproc check is a proven no-op.
        for candidate, outcome in surviving_candidates(test):
            result = self.model.check(
                candidate.execution,
                stop_at_first=True,
                assume_sc_per_location=True,
            )
            if not result.allowed:
                continue
            observed = dict(outcome)
            matches = all(
                observed.get(
                    f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
                )
                == atom.value
                for atom in test.condition.atoms
            )
            if matches:
                return "Allow"
        return "Forbid"
