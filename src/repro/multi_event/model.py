"""A multi-event axiomatic model in the style of Mador-Haim et al. (CAV 2012).

The distinguishing feature of that family of models is the event
explosion: the propagation of a write ``w`` is represented by one event
``prop(w, T)`` per thread ``T`` rather than by a single write event.
The constraints the model places on executions are (experimentally) the
same as the single-event model of this paper, but every relational check
runs over the enlarged event set.

This module materialises exactly that cost:

* :func:`lift_relation` replaces every write by its per-thread
  propagation copies (reads keep a single copy), multiplying the size of
  the relations by the thread count;
* :class:`MultiEventModel` checks the four axioms over the lifted
  relations (acyclicity and irreflexivity over per-thread copies are
  equivalent to the single-event checks — a cycle lives entirely inside
  one thread layer — so the verdicts agree with the single-event model
  by construction while the work grows with the number of copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core import axioms
from repro.core.architectures import power_architecture
from repro.core.axioms import AxiomViolation
from repro.core.events import Event
from repro.core.execution import Execution
from repro.core.model import Architecture, CheckResult
from repro.core.relation import Relation
from repro.herd.enumerate import candidate_executions
from repro.litmus.ast import LitmusTest


@dataclass(frozen=True, order=True)
class PropagationCopy:
    """The copy of an event as seen by one thread (a ``prop(w, T)`` event)."""

    event: Event
    thread: int


def propagation_copies(execution: Execution) -> Dict[Event, List[PropagationCopy]]:
    """One propagation copy per (write, thread); reads keep a single copy."""
    threads = execution.threads if execution.threads else (0,)
    copies: Dict[Event, List[PropagationCopy]] = {}
    for event in execution.memory_events:
        if event.is_write():
            copies[event] = [PropagationCopy(event, thread) for thread in threads]
        else:
            copies[event] = [PropagationCopy(event, event.thread)]
    return copies


def lift_relation(
    relation: Relation, copies: Dict[Event, List[PropagationCopy]]
) -> Relation:
    """Lift a relation over events to the per-thread propagation copies.

    Each pair ``(x, y)`` becomes ``(x_T, y_T)`` for every thread ``T``
    (events with a single copy contribute their copy to every layer), so
    a cycle exists in the lifted relation iff one exists in the original.
    """
    pairs = []
    for source, target in relation:
        for source_copy in copies.get(source, ()):  # pragma: no branch
            for target_copy in copies.get(target, ()):
                if (
                    source_copy.thread == target_copy.thread
                    or len(copies.get(source, ())) == 1
                    or len(copies.get(target, ())) == 1
                ):
                    pairs.append((source_copy, target_copy))
    return Relation(pairs)


class MultiEventModel:
    """The four axioms checked over per-thread propagation copies."""

    def __init__(self, architecture: Optional[Architecture] = None):
        self.architecture = architecture if architecture is not None else power_architecture()

    @property
    def name(self) -> str:
        return f"multi-event({self.architecture.name})"

    def check(self, execution: Execution, stop_at_first: bool = False) -> CheckResult:
        arch = self.architecture
        copies = propagation_copies(execution)
        violations: List[AxiomViolation] = []

        def lifted_cycle_check(label: str, relation: Relation) -> Optional[AxiomViolation]:
            lifted = lift_relation(relation, copies)
            cycle = lifted.find_cycle()
            if cycle is None:
                return None
            return AxiomViolation(label, tuple(copy.event for copy in cycle))

        violation = lifted_cycle_check(
            axioms.AXIOM_SC_PER_LOCATION, execution.po_loc | execution.com
        )
        if violation is not None:
            violations.append(violation)
            if stop_at_first:
                return CheckResult(False, tuple(violations))

        ppo = arch.ppo(execution)
        fences = arch.fences(execution)
        hb = ppo | fences | execution.rfe

        violation = lifted_cycle_check(axioms.AXIOM_NO_THIN_AIR, hb)
        if violation is not None:
            violations.append(violation)
            if stop_at_first:
                return CheckResult(False, tuple(violations))

        prop = arch.prop(execution, ppo, fences)

        # OBSERVATION: irreflexive(fre; prop; hb*), composed over the copies.
        lifted_fre = lift_relation(execution.fre, copies)
        lifted_prop = lift_relation(prop, copies)
        lifted_hb_star = lift_relation(hb, copies).reflexive_transitive_closure(
            [copy for event_copies in copies.values() for copy in event_copies]
        )
        composed = lifted_fre.seq(lifted_prop).seq(lifted_hb_star)
        for source, target in composed:
            if source == target:
                violations.append(AxiomViolation(axioms.AXIOM_OBSERVATION, (source.event,)))
                if stop_at_first:
                    return CheckResult(False, tuple(violations))
                break

        violation = lifted_cycle_check(axioms.AXIOM_PROPAGATION, execution.co | prop)
        if violation is not None:
            violations.append(violation)

        return CheckResult(not violations, tuple(violations))

    def allows(self, execution: Execution) -> bool:
        return self.check(execution, stop_at_first=True).allowed

    def __repr__(self) -> str:
        return f"MultiEventModel({self.architecture.name})"


class MultiEventSimulator:
    """Litmus simulation through the multi-event model (Tab. IX's middle row)."""

    def __init__(self, architecture: Optional[Architecture] = None):
        self.model = MultiEventModel(architecture)

    @property
    def name(self) -> str:
        return self.model.name

    def verdict(self, test: LitmusTest) -> str:
        assert test.condition is not None, "litmus tests carry a final condition"
        for candidate in candidate_executions(test):
            if not self.model.allows(candidate.execution):
                continue
            outcome = dict(candidate.outcome(test))
            matches = all(
                outcome.get(
                    f"{atom.thread}:{atom.name}" if atom.kind == "reg" else atom.name
                )
                == atom.value
                for atom in test.condition.atoms
            )
            if matches:
                return "Allow"
        return "Forbid"
