"""Multi-event axiomatic simulation (the CAV 2012 style of model).

Mador-Haim et al.'s Power model represents the propagation of one store
to the system with *one event per thread*, mimicking the transitions of
the PLDI 2011 operational machine; this paper's model uses a single
event per store and captures propagation through the ``prop`` relation
instead.  Sec. 8.3 attributes herd's speed advantage to this reduction
in the number of events.

:class:`repro.multi_event.MultiEventModel` reproduces the multi-event
cost profile: every write is split into one propagation copy per thread
and the axioms are checked over the lifted (per-thread-copy) relations.
The verdicts coincide with the single-event model on the families used
here (as the paper reports, the two models agree experimentally except
for a handful of corner cases); what the Tab. IX benchmark measures is
the cost of dragging the extra events through the relational checks.
"""

from repro.multi_event.model import MultiEventModel, MultiEventSimulator

__all__ = ["MultiEventModel", "MultiEventSimulator"]
