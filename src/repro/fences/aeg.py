"""Abstract event graphs (AEGs) for fence synthesis.

Following Alglave, Kroening, Nimal & Poetzl ("Don't sit on the fence"),
fence synthesis does not reason on concrete executions: it works on a
*static* abstraction of the program.  The abstract event graph has one
node per memory access in the program text and two families of edges:

* **program-order edges** between accesses of one thread, annotated with
  every ordering mechanism already present between them (fences,
  address/data/control dependencies);
* **competing edges** between accesses of different threads to the same
  location, at least one of which is a write — the static shadow of the
  rf/fr/co communications a concrete execution could exhibit.

AEGs are built from :class:`repro.litmus.ast.LitmusTest` instruction
streams (via a per-thread register taint analysis that recovers the
dependency idioms emitted by the diy generator) and from
:class:`repro.verification.program.Program` concurrent programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.litmus.ast import LitmusTest
from repro.litmus.instructions import (
    Add,
    Branch,
    Compare,
    CompareImmediate,
    Fence,
    Label,
    Load,
    MoveImmediate,
    Store,
    Xor,
)
from repro.verification import program as ir

READ = "R"
WRITE = "W"


@dataclass(frozen=True)
class AbstractEvent:
    """One static memory access.

    ``index`` numbers the accesses of a thread in program order;
    ``instr_index`` points back into the thread's instruction list (or
    statement list for IR programs) so that the repair stage knows where
    to splice fences.
    """

    thread: int
    index: int
    direction: str
    location: str
    instr_index: int
    register: Optional[str] = None
    #: the access already computes its address through an index register
    #: (an existing address dependency); no further one can be attached.
    uses_index_register: bool = False

    def __repr__(self) -> str:
        return f"{self.direction}{self.thread}.{self.index}[{self.location}]"


@dataclass(frozen=True)
class PoEdge:
    """A program-order pair of one thread, with its existing protections."""

    src: AbstractEvent
    dst: AbstractEvent
    fences: Tuple[str, ...] = ()
    addr_dep: bool = False
    data_dep: bool = False
    ctrl_dep: bool = False
    ctrl_cfence: bool = False

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.src.thread, self.src.index, self.dst.index)

    @property
    def directions(self) -> Tuple[str, str]:
        return (self.src.direction, self.dst.direction)

    def protection_signature(self) -> Tuple:
        """A hashable summary of the mechanisms already on the pair."""
        return (
            tuple(sorted(set(self.fences))),
            self.addr_dep,
            self.data_dep,
            self.ctrl_dep,
            self.ctrl_cfence,
        )


@dataclass
class AbstractEventGraph:
    """The static event graph of one program."""

    name: str
    arch: str
    threads: List[List[AbstractEvent]]
    po_edges: List[PoEdge]
    cmp_edges: List[Tuple[AbstractEvent, AbstractEvent]]
    _po_index: Dict[Tuple[int, int, int], PoEdge] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self._po_index = {edge.key: edge for edge in self.po_edges}

    def po_edge(self, src: AbstractEvent, dst: AbstractEvent) -> Optional[PoEdge]:
        return self._po_index.get((src.thread, src.index, dst.index))

    def events(self) -> List[AbstractEvent]:
        return [event for thread in self.threads for event in thread]

    def num_accesses(self) -> int:
        return sum(len(thread) for thread in self.threads)

    def graph_edges(self) -> List[Tuple[AbstractEvent, AbstractEvent]]:
        """All directed edges, for the cycle search."""
        edges = [(edge.src, edge.dst) for edge in self.po_edges]
        edges.extend(self.cmp_edges)
        return edges


def _po_edges_of_scan(scan) -> List[PoEdge]:
    """All program-order pairs of one scanned thread, with protections."""
    edges: List[PoEdge] = []
    for i in range(len(scan.events)):
        for j in range(i + 1, len(scan.events)):
            fences: List[str] = []
            for gap in range(i + 1, j + 1):
                if gap < len(scan.gaps):
                    fences.extend(scan.gaps[gap])
            edges.append(
                PoEdge(
                    src=scan.events[i],
                    dst=scan.events[j],
                    fences=tuple(fences),
                    addr_dep=i in scan.addr_srcs[j],
                    data_dep=i in scan.data_srcs[j],
                    ctrl_dep=i in scan.ctrl_srcs[j],
                    ctrl_cfence=i in scan.cfence_srcs[j],
                )
            )
    return edges


class _ThreadScan:
    """Register taint analysis over one thread's instruction stream."""

    def __init__(self, thread_index: int, address_of: Dict[str, str]):
        self.thread_index = thread_index
        self.address_of = dict(address_of)
        self.events: List[AbstractEvent] = []
        #: per access: frozensets of source *access indices* (reads)
        self.addr_srcs: List[FrozenSet[int]] = []
        self.data_srcs: List[FrozenSet[int]] = []
        self.ctrl_srcs: List[FrozenSet[int]] = []
        self.cfence_srcs: List[FrozenSet[int]] = []
        #: gap i holds the fences between access i and access i+1
        self.gaps: List[List[str]] = [[]]
        self._taint: Dict[str, Set[int]] = {}
        self._pending_compare: Set[int] = set()
        self._ctrl: Set[int] = set()
        self._ctrl_cfenced: Set[int] = set()

    def _reg_taint(self, *registers: Optional[str]) -> Set[int]:
        taint: Set[int] = set()
        for register in registers:
            if register is not None:
                taint |= self._taint.get(register, set())
        return taint

    def _location(self, addr_reg: str) -> str:
        return self.address_of.get(addr_reg, addr_reg)

    def _push_access(
        self,
        direction: str,
        location: str,
        instr_index: int,
        register: Optional[str],
        addr: Set[int],
        data: Set[int],
        uses_index_register: bool = False,
    ) -> AbstractEvent:
        event = AbstractEvent(
            thread=self.thread_index,
            index=len(self.events),
            direction=direction,
            location=location,
            instr_index=instr_index,
            register=register,
            uses_index_register=uses_index_register,
        )
        self.events.append(event)
        self.addr_srcs.append(frozenset(addr))
        self.data_srcs.append(frozenset(data))
        self.ctrl_srcs.append(frozenset(self._ctrl))
        self.cfence_srcs.append(frozenset(self._ctrl_cfenced))
        self.gaps.append([])
        return event

    def scan(self, instructions: Sequence) -> None:
        for position, instruction in enumerate(instructions):
            if isinstance(instruction, Load):
                addr = self._reg_taint(instruction.addr_reg, instruction.index_reg)
                event = self._push_access(
                    READ,
                    self._location(instruction.addr_reg),
                    position,
                    instruction.dst,
                    addr,
                    set(),
                    uses_index_register=instruction.index_reg is not None,
                )
                self._taint[instruction.dst] = {event.index}
            elif isinstance(instruction, Store):
                addr = self._reg_taint(instruction.addr_reg, instruction.index_reg)
                data = self._reg_taint(instruction.src)
                self._push_access(
                    WRITE,
                    self._location(instruction.addr_reg),
                    position,
                    None,
                    addr,
                    data,
                    uses_index_register=instruction.index_reg is not None,
                )
            elif isinstance(instruction, Fence):
                self.gaps[-1].append(instruction.name)
                if instruction.is_control_fence() and self._ctrl:
                    self._ctrl_cfenced |= self._ctrl
            elif isinstance(instruction, MoveImmediate):
                self._taint[instruction.dst] = set()
                if isinstance(instruction.value, str):
                    self.address_of[instruction.dst] = instruction.value
            elif isinstance(instruction, (Xor, Add)):
                self._taint[instruction.dst] = self._reg_taint(
                    instruction.left, instruction.right
                )
            elif isinstance(instruction, Compare):
                self._pending_compare = self._reg_taint(
                    instruction.left, instruction.right
                )
            elif isinstance(instruction, CompareImmediate):
                self._pending_compare = self._reg_taint(instruction.reg)
            elif isinstance(instruction, Branch):
                self._ctrl |= self._pending_compare
            elif isinstance(instruction, Label):
                pass

    def po_edges(self) -> List[PoEdge]:
        return _po_edges_of_scan(self)


def _competing_edges(
    threads: Sequence[Sequence[AbstractEvent]],
) -> List[Tuple[AbstractEvent, AbstractEvent]]:
    """Directed competing edges: the static shadow of rf, fr and co.

    For a write/read pair both directions exist (rf one way, fr the
    other); for two writes both coherence orders are possible.  Two reads
    never compete.
    """
    events = [event for thread in threads for event in thread]
    edges: List[Tuple[AbstractEvent, AbstractEvent]] = []
    for a in events:
        for b in events:
            if a.thread >= b.thread:
                continue
            if a.location != b.location:
                continue
            if a.direction == READ and b.direction == READ:
                continue
            edges.append((a, b))
            edges.append((b, a))
    return edges


def aeg_from_litmus(test: LitmusTest) -> AbstractEventGraph:
    """Build the abstract event graph of a litmus test."""
    threads: List[List[AbstractEvent]] = []
    po_edges: List[PoEdge] = []
    for thread_index, instructions in enumerate(test.threads):
        address_of = {
            register: value
            for (owner, register), value in test.init_registers.items()
            if owner == thread_index and isinstance(value, str)
        }
        scan = _ThreadScan(thread_index, address_of)
        scan.scan(instructions)
        threads.append(scan.events)
        po_edges.extend(scan.po_edges())
    return AbstractEventGraph(
        name=test.name,
        arch=test.arch,
        threads=threads,
        po_edges=po_edges,
        cmp_edges=_competing_edges(threads),
    )


# -- verification IR programs ------------------------------------------------------


class _StatementScan:
    """Taint analysis over the verification IR (loads, stores, fences).

    Branch bodies are walked in place (both arms of an ``if``, one
    unrolling of a loop): the AEG over-approximates the set of accesses,
    which is the sound direction for fence synthesis.
    """

    def __init__(self, thread_index: int):
        self.thread_index = thread_index
        self.events: List[AbstractEvent] = []
        self.addr_srcs: List[FrozenSet[int]] = []
        self.data_srcs: List[FrozenSet[int]] = []
        self.ctrl_srcs: List[FrozenSet[int]] = []
        self.cfence_srcs: List[FrozenSet[int]] = []
        self.gaps: List[List[str]] = [[]]
        self._taint: Dict[str, Set[int]] = {}
        self._ctrl: Set[int] = set()
        self._ctrl_cfenced: Set[int] = set()
        self._position = 0

    def _expr_taint(self, expr: ir.Expr) -> Set[int]:
        taint: Set[int] = set()
        for name in ir.expression_variables(expr):
            taint |= self._taint.get(name, set())
        return taint

    def _push_access(
        self, direction: str, location: str, addr: Set[int], data: Set[int],
        register: Optional[str] = None, uses_index_register: bool = False,
    ) -> AbstractEvent:
        event = AbstractEvent(
            thread=self.thread_index,
            index=len(self.events),
            direction=direction,
            location=location,
            instr_index=self._position,
            register=register,
            uses_index_register=uses_index_register,
        )
        self.events.append(event)
        self.addr_srcs.append(frozenset(addr))
        self.data_srcs.append(frozenset(data))
        self.ctrl_srcs.append(frozenset(self._ctrl))
        self.cfence_srcs.append(frozenset(self._ctrl_cfenced))
        self.gaps.append([])
        return event

    def scan(self, statements: Sequence[ir.Statement]) -> None:
        for statement in statements:
            self._scan_one(statement)
            self._position += 1

    def _scan_one(self, statement: ir.Statement) -> None:
        if isinstance(statement, ir.LoadStmt):
            addr: Set[int] = set()
            if statement.addr_dep_on is not None:
                addr = self._taint.get(statement.addr_dep_on, set())
            event = self._push_access(READ, statement.shared, addr, set(),
                                      register=statement.target,
                                      uses_index_register=statement.addr_dep_on is not None)
            self._taint[statement.target] = {event.index}
        elif isinstance(statement, ir.StoreStmt):
            self._push_access(
                WRITE, statement.shared, set(), self._expr_taint(statement.expr)
            )
        elif isinstance(statement, ir.FenceStmt):
            self.gaps[-1].append(statement.name)
            if statement.name in ("isync", "isb") and self._ctrl:
                self._ctrl_cfenced |= self._ctrl
        elif isinstance(statement, ir.Assign):
            self._taint[statement.target] = self._expr_taint(statement.expr)
        elif isinstance(statement, ir.IfStmt):
            saved_ctrl = set(self._ctrl)
            self._ctrl |= self._expr_taint(statement.condition)
            for branch in (statement.then_branch, statement.else_branch):
                for inner in branch:
                    self._scan_one(inner)
            self._ctrl = saved_ctrl
        elif isinstance(statement, ir.WhileStmt):
            saved_ctrl = set(self._ctrl)
            self._ctrl |= self._expr_taint(statement.condition)
            for inner in statement.body:
                self._scan_one(inner)
            self._ctrl = saved_ctrl
        elif isinstance(statement, ir.AssertStmt):
            pass

    def po_edges(self) -> List[PoEdge]:
        return _po_edges_of_scan(self)


def aeg_from_program(program: ir.Program, arch: str = "power") -> AbstractEventGraph:
    """Build the abstract event graph of a concurrent IR program."""
    threads: List[List[AbstractEvent]] = []
    po_edges: List[PoEdge] = []
    for thread_index, statements in enumerate(program.threads):
        scan = _StatementScan(thread_index)
        scan.scan(statements)
        threads.append(scan.events)
        po_edges.extend(scan.po_edges())
    return AbstractEventGraph(
        name=program.name,
        arch=arch,
        threads=threads,
        po_edges=po_edges,
        cmp_edges=_competing_edges(threads),
    )
