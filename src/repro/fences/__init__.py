"""Automatic fence synthesis and repair (after "Don't sit on the fence").

Given a litmus test (or a concurrent IR program) whose annotated non-SC
outcome is observable under a target model, this package finds the
cheapest set of fences and dependencies that makes the outcome
unobservable, and proves it by re-running the herd simulator:

* :mod:`repro.fences.aeg` — abstract event graphs from litmus tests and
  :mod:`repro.verification.program` programs;
* :mod:`repro.fences.cycles` — critical cycles (Shasha & Snir);
* :mod:`repro.fences.placement` — delay classification, per-architecture
  fence cost tables and the placement strategy interface (greedy
  min-cut by default);
* :mod:`repro.fences.ilp` — the exact 0/1 ILP placement
  (``strategy="ilp"``), solved by pure-Python branch-and-bound over an
  LP-relaxation bound;
* :mod:`repro.fences.repair` — splicing fences / false dependencies back
  into the instruction stream;
* :mod:`repro.fences.validate` — the validated escalation loop
  (:func:`repair_test`);
* :mod:`repro.fences.campaign` — batch repair of whole families with
  memoized per-cycle verdicts and optional multiprocessing.

Quick start::

    from repro.fences import repair_test
    from repro.litmus.registry import get_test

    report = repair_test(get_test("mp"), "power")
    print(report.describe())   # repaired with lwsync,addr ...
    print(report.repaired.pretty())
"""

from repro.fences.aeg import (
    AbstractEvent,
    AbstractEventGraph,
    PoEdge,
    aeg_from_litmus,
    aeg_from_program,
)
from repro.fences.campaign import CampaignResult, repair_family, repair_one
from repro.fences.cycles import CriticalCycle, critical_cycles
from repro.fences.ilp import plan_ilp_cover, solve_cover
from repro.fences.placement import (
    PLACEMENT_STRATEGIES,
    Mechanism,
    Placement,
    plan_placements,
)
from repro.fences.repair import RepairError, apply_placements
from repro.fences.validate import RepairReport, repair_test, validate_repair

__all__ = [
    "AbstractEvent",
    "AbstractEventGraph",
    "PoEdge",
    "aeg_from_litmus",
    "aeg_from_program",
    "CriticalCycle",
    "critical_cycles",
    "Mechanism",
    "Placement",
    "PLACEMENT_STRATEGIES",
    "plan_placements",
    "plan_ilp_cover",
    "solve_cover",
    "RepairError",
    "apply_placements",
    "RepairReport",
    "repair_test",
    "validate_repair",
    "CampaignResult",
    "repair_family",
    "repair_one",
]
