"""ILP-optimal fence placement (the exact form of the greedy cover).

"Don't sit on the fence" formulates fence placement as an integer linear
program; this module is that formulation over the same delay pairs the
greedy strategy covers:

* one 0/1 variable per (program point, mechanism) pair — a fence
  mnemonic of the per-ISA cost table at an insertion gap, or a false
  address dependency on a single pair that can carry one;
* one covering constraint per critical-cycle delay pair: a pair is
  covered iff some selected mechanism orders it (same judgement as the
  greedy planner: the mechanism's span crosses the pair and
  :func:`~repro.fences.placement.fence_orders_pair` holds, or the
  dependency targets exactly that pair);
* objective: minimize total mechanism cost.

The solver is a pure-Python branch-and-bound — no external LP/MIP
dependency.  Nodes branch on the uncovered constraint with the fewest
candidate variables and are pruned against an LP-relaxation lower bound
obtained by weak duality: assign every uncovered pair the cheapest
*cost share* ``cost(v) / |covers(v) ∩ uncovered|`` over its candidates,
which is a feasible solution of the LP dual and hence bounds the LP
(and so the ILP) optimum from below.  Candidates are explored cheapest
first with deterministic (thread, gap, name) tie-breaks, so among
equal-cost optima the solver settles on the same low-gap, cheap-first
choices the greedy planner makes — keeping the two strategies byte-
comparable on instances where greedy already is optimal.

Solved instances are memoized per canonical *instance signature* —
the geometry of constraints and candidate variables, insensitive to
test names, locations and absolute access indices — mirroring the
campaign driver's cycle-signature cache: families repeat a handful of
shapes, so most tests hit the memo and skip the search entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import telemetry as _telemetry
from repro.fences.placement import (
    FENCE_COSTS,
    PLACEMENT_STRATEGIES,
    DelayMap,
    Mechanism,
    Placement,
    _dep,
    dep_applicable,
    fence_chain,
    fence_orders_pair,
)

#: Solved-instance memo: canonical signature -> (optimal cost, selection).
_MEMO: Dict[Tuple, Tuple[float, Tuple[int, ...]]] = {}
_MEMO_MAX = 4096
#: The memo's counters on the unified CacheStats interface (PR 6); the
#: pre-telemetry ``memo_stats``/``clear_memo`` probes remain as thin
#: wrappers over it.
_STATS = _telemetry.CacheStats("ilp_memo", entries=lambda: len(_MEMO))


def memo_stats() -> Dict[str, int]:
    """Backcompat probe: the solver-memo counters as a plain dict.

    The same numbers (plus hit rate) live on the unified interface as
    ``cache_stats().as_dict()``."""
    return {"hits": _STATS.hits, "misses": _STATS.misses, "entries": len(_MEMO)}


def cache_stats() -> _telemetry.CacheStats:
    """The solve memo's :class:`repro.telemetry.CacheStats`."""
    return _STATS


def clear_memo() -> None:
    """Drop all memoized instances and reset the counters (tests)."""
    _MEMO.clear()
    _STATS.reset()


@dataclass(frozen=True)
class CoverVariable:
    """One 0/1 decision: install ``mechanism`` at a program point.

    ``covers`` lists the constraint indices (positions in the sorted
    delay-pair list) the mechanism orders.  Fence variables live at a
    ``(thread, gap)`` insertion point; dependency variables serve the
    single pair recorded in ``pair_key``.
    """

    thread: int
    gap: int
    mechanism: Mechanism
    covers: Tuple[int, ...]
    pair_key: Optional[Tuple[int, int, int]] = None

    @property
    def cost(self) -> float:
        return self.mechanism.cost


def build_cover_problem(
    delays: DelayMap, arch: str
) -> Tuple[List[Tuple[int, int, int]], List[CoverVariable]]:
    """The ILP instance of a delay map: constraint keys and variables.

    Constraints are the sorted delay-pair keys; variables are every
    (gap, fence) pair of the ISA that orders at least one pair crossing
    the gap, plus one dependency variable per pair that can carry one.
    Pairs no variable covers are dropped by the solver, exactly as the
    greedy planner gives up on pairs no fence of the ISA orders.
    """
    keys = sorted(delays)
    index_of = {key: i for i, key in enumerate(keys)}
    variables: List[CoverVariable] = []
    gaps = sorted({(t, g) for (t, i, j) in keys for g in range(i, j)})
    for thread, gap in gaps:
        for mechanism in FENCE_COSTS.get(arch, FENCE_COSTS["power"]):
            covered = tuple(
                index_of[key]
                for key in keys
                if key[0] == thread
                and key[1] <= gap < key[2]
                and fence_orders_pair(mechanism.name, delays[key].directions)
            )
            if covered:
                variables.append(CoverVariable(thread, gap, mechanism, covered))
    for key in keys:
        if dep_applicable(delays[key]):
            variables.append(
                CoverVariable(
                    thread=key[0],
                    gap=key[1],
                    mechanism=_dep(),
                    covers=(index_of[key],),
                    pair_key=key,
                )
            )
    return keys, variables


def lp_lower_bound(
    uncovered: FrozenSet[int],
    variables: Sequence[CoverVariable],
    candidates: Sequence[Sequence[int]],
) -> float:
    """Dual-feasible lower bound on covering ``uncovered``.

    ``y[e] = min over variables v covering e of cost(v) / |covers(v) ∩
    uncovered|`` satisfies every dual constraint (the shares of one
    variable sum to at most its cost), so ``sum y`` bounds the LP
    relaxation — and the ILP — from below by weak duality.
    """
    total = 0.0
    for ci in uncovered:
        best = float("inf")
        for vi in candidates[ci]:
            var = variables[vi]
            live = sum(1 for c in var.covers if c in uncovered)
            share = var.cost / live
            if share < best:
                best = share
        total += best
    return total


def solve_cover(
    variables: Sequence[CoverVariable], num_constraints: int
) -> Tuple[float, Tuple[int, ...]]:
    """Minimum-cost covering selection, by branch-and-bound.

    Returns ``(optimal cost, selected variable indices)``.  Constraints
    no variable covers are ignored (mirroring the greedy planner's
    give-up on unorderable pairs).  Branching picks the uncovered
    constraint with the fewest candidates; each candidate is tried
    cheapest first, and subtrees whose cost plus
    :func:`lp_lower_bound` cannot beat the incumbent are pruned.
    """
    candidates: List[List[int]] = [[] for _ in range(num_constraints)]
    for vi, var in enumerate(variables):
        for ci in var.covers:
            candidates[ci].append(vi)
    for row in candidates:
        row.sort(
            key=lambda vi: (
                variables[vi].cost,
                variables[vi].thread,
                variables[vi].gap,
                variables[vi].mechanism.name,
            )
        )
    coverable = frozenset(ci for ci in range(num_constraints) if candidates[ci])

    best_cost = float("inf")
    best_selection: Tuple[int, ...] = ()
    # Solver-effort statistics, published once per solve (telemetry).
    nodes = 0
    lp_prunes = 0
    incumbents = 0

    def recurse(uncovered: FrozenSet[int], cost: float, chosen: Tuple[int, ...]):
        nonlocal best_cost, best_selection, nodes, lp_prunes, incumbents
        nodes += 1
        if not uncovered:
            if cost < best_cost:
                best_cost, best_selection = cost, chosen
                incumbents += 1
            return
        if cost + lp_lower_bound(uncovered, variables, candidates) >= best_cost:
            lp_prunes += 1
            return
        branch = min(uncovered, key=lambda ci: (len(candidates[ci]), ci))
        for vi in candidates[branch]:
            var = variables[vi]
            recurse(
                uncovered.difference(var.covers),
                cost + var.cost,
                chosen + (vi,),
            )

    recurse(coverable, 0.0, ())
    registry = _telemetry._ACTIVE
    if registry is not None:
        registry.count("ilp.solves")
        registry.count("ilp.bnb_nodes", nodes)
        registry.count("ilp.lp_bound_prunes", lp_prunes)
        registry.count("ilp.incumbent_updates", incumbents)
        registry.count("ilp.constraints", num_constraints)
        registry.count("ilp.variables", len(variables))
    return best_cost, best_selection


def _instance_signature(
    delays: DelayMap,
    keys: Sequence[Tuple[int, int, int]],
    variables: Sequence[CoverVariable],
    arch: str,
) -> Tuple:
    """Canonical geometry of an instance, for the solve memo.

    Two tests whose delay pairs have the same directions and the same
    candidate structure (mechanism kinds, costs and coverage patterns)
    share a signature — thread ids, gap positions and locations are
    deliberately excluded, so renamed diy siblings hit the memo.
    Selections are stored as positions in the (deterministic) variable
    list, which transfers between signature-equal instances.
    """
    return (
        arch,
        tuple(delays[key].directions for key in keys),
        tuple(
            (var.mechanism.kind, var.mechanism.name, var.cost, var.covers)
            for var in variables
        ),
    )


def plan_ilp_cover(delays: DelayMap, arch: str) -> List[Placement]:
    """ILP-optimal active placements for a delay map.

    The exact counterpart of
    :func:`repro.fences.placement.plan_greedy_cover`: same inputs, same
    :class:`~repro.fences.placement.Placement` outputs (with the same
    escalation chains, so the validation driver treats both strategies
    identically) — but the selected mechanism set has provably minimal
    static cost.
    """
    if not delays:
        return []
    keys, variables = build_cover_problem(delays, arch)
    signature = _instance_signature(delays, keys, variables, arch)
    memoized = _MEMO.get(signature)
    if memoized is not None:
        _STATS.hit()
        _, selection = memoized
    else:
        _STATS.miss()
        _, selection = solve_cover(variables, len(keys))
        if len(_MEMO) >= _MEMO_MAX:
            _STATS.evict(len(_MEMO))
            _MEMO.clear()
        _MEMO[signature] = (
            sum(variables[vi].cost for vi in selection),
            selection,
        )

    placements: List[Placement] = []
    for vi in selection:
        var = variables[vi]
        pair_keys = tuple(keys[ci] for ci in var.covers)
        directions = [delays[key].directions for key in pair_keys]
        if var.mechanism.kind == "dep":
            chain = (var.mechanism, *fence_chain(arch, directions))
        else:
            chain = (
                var.mechanism,
                *fence_chain(arch, directions, stronger_than=var.cost),
            )
        placements.append(
            Placement(
                thread=var.thread,
                gap=var.gap,
                pair_keys=pair_keys,
                chain=chain,
            )
        )
    return placements


PLACEMENT_STRATEGIES["ilp"] = plan_ilp_cover
