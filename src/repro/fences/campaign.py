"""Batch fence repair over whole litmus families.

The diy families (Tab. V) contain hundreds of tests per architecture but
only a handful of distinct cycle *shapes*: once ``sb``-shaped tests have
taught the search that write-read pairs need a full fence, every other
test with the same critical-cycle signature can skip straight to the
answer.  The campaign driver therefore memoizes, per (model, cycle
signature), the mechanisms the escalation loop settled on, and seeds
subsequent repairs with them — each seeded repair still runs one
confirming validation, so a stale cache entry costs a little time, never
correctness.

Repairs of distinct tests are independent, so the driver fans out over
the shared campaign runtime (:mod:`repro.campaign`): chunks of tests
are sharded over a process pool, worker processes return their local
cache entries, and the parent merges them in submission order.  Workers
keep per-process warm state — a simulator resolved once per model name
and a per-test simulation-context cache — across every chunk they
serve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign import runner as campaign_runner
from repro.fences.aeg import aeg_from_litmus
from repro.fences.cycles import critical_cycles
from repro.fences.validate import RepairReport, repair_test
from repro.herd.simulator import ModelLike, resolve_model
from repro.litmus.ast import LitmusTest
from repro.report import JsonReportMixin

#: (model name, strategy, cycle-signature-set) -> mechanism seed.  The
#: strategy is part of the key: greedy and ILP covers of the same cycle
#: shape may legitimately settle on different mechanisms, and a seed
#: must never leak across strategies.
CycleCache = Dict[Tuple[str, str, Tuple], Tuple[Tuple[Tuple, str], ...]]


@dataclass
class CampaignResult(JsonReportMixin):
    """Summary of repairing one family of tests.

    ``errors`` holds the quarantined jobs of a supervised campaign
    (:class:`~repro.campaign.supervisor.FailedItem` records): tests the
    fault-tolerant runtime gave up on after retries and bisection.
    ``reports`` then covers exactly the surviving tests, in family
    order.
    """

    model_name: str
    reports: List[RepairReport]
    cache_hits: int = 0
    errors: Tuple = ()

    @property
    def num_tests(self) -> int:
        return len(self.reports)

    @property
    def num_needing_repair(self) -> int:
        return sum(1 for report in self.reports if report.needed_repair)

    @property
    def num_repaired(self) -> int:
        return sum(
            1 for report in self.reports if report.needed_repair and report.success
        )

    @property
    def num_failed(self) -> int:
        return sum(1 for report in self.reports if not report.success)

    @property
    def total_cost(self) -> float:
        return sum(report.cost for report in self.reports)

    @property
    def total_validations(self) -> int:
        return sum(report.validations for report in self.reports)

    def describe(self) -> str:
        quarantined = f", {len(self.errors)} quarantined" if self.errors else ""
        return (
            f"{self.num_tests} tests under {self.model_name}: "
            f"{self.num_needing_repair} needed fences, {self.num_repaired} repaired "
            f"(total cost {self.total_cost:g}, {self.total_validations} validations, "
            f"{self.cache_hits} cache hits{quarantined})"
        )

    def to_dict(self) -> dict:
        return {
            "type": "repair-campaign",
            "model": self.model_name,
            "num_tests": self.num_tests,
            "num_needing_repair": self.num_needing_repair,
            "num_repaired": self.num_repaired,
            "num_failed": self.num_failed,
            "total_cost": self.total_cost,
            "total_validations": self.total_validations,
            "cache_hits": self.cache_hits,
            "errors": [error.to_dict() for error in self.errors],
            "reports": [report.to_dict() for report in self.reports],
        }


def cycle_signature(test: LitmusTest) -> Tuple:
    """The memo key of a test: the canonical signatures of its cycles."""
    aeg = aeg_from_litmus(test)
    return tuple(sorted(cycle.signature() for cycle in critical_cycles(aeg)))


def repair_one(
    test: LitmusTest,
    model: ModelLike,
    cache: Optional[CycleCache] = None,
    context_cache=None,
    strategy: str = "greedy",
) -> RepairReport:
    """Repair one test, consulting and updating the memo cache.

    The static analysis (AEG + critical cycles) and the memo lookup are
    lazy: tests the model already forbids never pay for either, and
    tests that need repair run the analysis exactly once (shared between
    the memo key and :func:`repair_test`).  ``context_cache`` is passed
    through to :func:`repair_test` so validation verdicts reuse
    memoized simulation contexts.
    """
    if cache is None:
        return repair_test(
            test, model, context_cache=context_cache, strategy=strategy
        )

    model_name = model if isinstance(model, str) else getattr(model, "name", "")
    state: dict = {}

    def analysis():
        if "aeg" not in state:
            aeg = aeg_from_litmus(test)
            state["aeg"] = aeg
            state["cycles"] = critical_cycles(aeg)
        return state["aeg"], state["cycles"]

    def signature() -> Tuple[str, str, Tuple]:
        _, cycles = analysis()
        return (
            str(model_name),
            strategy,
            tuple(sorted(cycle.signature() for cycle in cycles)),
        )

    report = repair_test(
        test,
        model,
        initial_mechanisms=lambda: cache.get(signature()),
        analysis=analysis,
        context_cache=context_cache,
        strategy=strategy,
    )
    if report.success and report.needed_repair and report.mechanism_seed:
        cache[signature()] = report.mechanism_seed
    return report


def repair_family(
    tests: Sequence[LitmusTest],
    model: ModelLike,
    processes=None,
    cache: Optional[CycleCache] = None,
    chunk_size: int = 8,
    context_cache=None,
    pool=None,
    strategy: str = "greedy",
    policy=None,
    errors: Optional[List] = None,
) -> CampaignResult:
    """Repair every test of a family, optionally in parallel.

    ``processes`` (an int, or ``"auto"`` for one worker per core) fans
    the family out over the shared campaign runner — the model must
    then be given by *name*, so workers can re-hydrate it; otherwise
    the repairs run serially in-process with the model resolved once
    for the whole campaign.  The memo ``cache`` may be shared across
    calls to amortise work over several families; worker-local cache
    entries are merged back in submission order, exactly as the serial
    loop would have accumulated them chunk by chunk.

    ``context_cache`` (serial path) reuses per-test simulation contexts
    across validation verdicts; sharded workers always keep their own
    per-process context caches, which persist across chunks — and
    across whole batches when an open :class:`repro.campaign.CampaignPool`
    is passed as ``pool``.

    ``strategy`` (``"greedy"`` or ``"ilp"``) selects the placement
    planner for every repair of the campaign; ILP repairs shard and
    memoize exactly like greedy ones (the memo key carries the
    strategy, so mixed-strategy campaigns may share one ``cache``).

    ``policy`` (a :class:`~repro.campaign.SupervisorPolicy`, or the
    pool's own default) makes the sharded campaign fault-tolerant:
    quarantined tests are dropped from ``reports`` and recorded as
    :class:`~repro.campaign.FailedItem` entries on ``result.errors``
    (also appended to ``errors`` when the caller passes a list).
    """
    tests = list(tests)
    if cache is None:
        cache = {}
    model_name = model if isinstance(model, str) else getattr(model, "name", str(model))
    failed: List = [] if errors is None else errors
    first_failure = len(failed)

    sharded = (
        pool is not None or campaign_runner.worker_count(processes) > 1
    ) and isinstance(model, str)
    if sharded:
        from repro.campaign.jobs import repair_chunk

        reports: List[RepairReport] = campaign_runner.run_sharded(
            repair_chunk,
            tests,
            payload=(model, dict(cache), strategy),
            processes=processes,
            chunk_size=chunk_size,
            merge=cache.update,
            pool=pool,
            policy=policy,
            errors=failed,
        )
    else:
        resolved = resolve_model(model)
        reports = [
            repair_one(
                test, resolved, cache, context_cache=context_cache,
                strategy=strategy,
            )
            for test in tests
        ]

    cache_hits = sum(1 for report in reports if report.from_cache)
    return CampaignResult(
        model_name=str(model_name),
        reports=reports,
        cache_hits=cache_hits,
        errors=tuple(failed[first_failure:]),
    )
