"""Batch fence repair over whole litmus families.

The diy families (Tab. V) contain hundreds of tests per architecture but
only a handful of distinct cycle *shapes*: once ``sb``-shaped tests have
taught the search that write-read pairs need a full fence, every other
test with the same critical-cycle signature can skip straight to the
answer.  The campaign driver therefore memoizes, per (model, cycle
signature), the mechanisms the escalation loop settled on, and seeds
subsequent repairs with them — each seeded repair still runs one
confirming validation, so a stale cache entry costs a little time, never
correctness.

Repairs of distinct tests are independent, so the driver can fan out
over a :mod:`multiprocessing` pool; worker processes return their local
cache entries, which the parent merges for the next batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fences.aeg import aeg_from_litmus
from repro.fences.cycles import critical_cycles
from repro.fences.validate import RepairReport, repair_test
from repro.herd.simulator import ModelLike
from repro.litmus.ast import LitmusTest

#: model name -> cycle-signature-set -> mechanism seed
CycleCache = Dict[Tuple[str, Tuple], Tuple[Tuple[Tuple, str], ...]]


@dataclass
class CampaignResult:
    """Summary of repairing one family of tests."""

    model_name: str
    reports: List[RepairReport]
    cache_hits: int = 0

    @property
    def num_tests(self) -> int:
        return len(self.reports)

    @property
    def num_needing_repair(self) -> int:
        return sum(1 for report in self.reports if report.needed_repair)

    @property
    def num_repaired(self) -> int:
        return sum(
            1 for report in self.reports if report.needed_repair and report.success
        )

    @property
    def num_failed(self) -> int:
        return sum(1 for report in self.reports if not report.success)

    @property
    def total_cost(self) -> float:
        return sum(report.cost for report in self.reports)

    @property
    def total_validations(self) -> int:
        return sum(report.validations for report in self.reports)

    def describe(self) -> str:
        return (
            f"{self.num_tests} tests under {self.model_name}: "
            f"{self.num_needing_repair} needed fences, {self.num_repaired} repaired "
            f"(total cost {self.total_cost:g}, {self.total_validations} validations, "
            f"{self.cache_hits} cache hits)"
        )


def cycle_signature(test: LitmusTest) -> Tuple:
    """The memo key of a test: the canonical signatures of its cycles."""
    aeg = aeg_from_litmus(test)
    return tuple(sorted(cycle.signature() for cycle in critical_cycles(aeg)))


def repair_one(
    test: LitmusTest,
    model: ModelLike,
    cache: Optional[CycleCache] = None,
) -> RepairReport:
    """Repair one test, consulting and updating the memo cache.

    The static analysis (AEG + critical cycles) and the memo lookup are
    lazy: tests the model already forbids never pay for either, and
    tests that need repair run the analysis exactly once (shared between
    the memo key and :func:`repair_test`).
    """
    if cache is None:
        return repair_test(test, model)

    model_name = model if isinstance(model, str) else getattr(model, "name", "")
    state: dict = {}

    def analysis():
        if "aeg" not in state:
            aeg = aeg_from_litmus(test)
            state["aeg"] = aeg
            state["cycles"] = critical_cycles(aeg)
        return state["aeg"], state["cycles"]

    def signature() -> Tuple[str, Tuple]:
        _, cycles = analysis()
        return (
            str(model_name),
            tuple(sorted(cycle.signature() for cycle in cycles)),
        )

    report = repair_test(
        test,
        model,
        initial_mechanisms=lambda: cache.get(signature()),
        analysis=analysis,
    )
    if report.success and report.needed_repair and report.mechanism_seed:
        cache[signature()] = report.mechanism_seed
    return report


def _repair_chunk(
    payload: Tuple[List[LitmusTest], str, CycleCache],
) -> Tuple[List[RepairReport], CycleCache]:
    """Worker: repair a chunk of tests with a process-local cache."""
    tests, model_name, cache = payload
    local: CycleCache = dict(cache)
    reports = [repair_one(test, model_name, local) for test in tests]
    return reports, local


def repair_family(
    tests: Sequence[LitmusTest],
    model: ModelLike,
    processes: Optional[int] = None,
    cache: Optional[CycleCache] = None,
    chunk_size: int = 8,
) -> CampaignResult:
    """Repair every test of a family, optionally in parallel.

    ``processes`` > 1 fans the family out over a multiprocessing pool
    (the model must then be given by *name*, so the workers can rebuild
    it); otherwise the repairs run serially in-process.  The memo
    ``cache`` may be shared across calls to amortise work over several
    families.
    """
    if cache is None:
        cache = {}
    model_name = model if isinstance(model, str) else getattr(model, "name", str(model))

    if processes is not None and processes > 1 and isinstance(model, str):
        import multiprocessing

        chunks = [
            list(tests[index : index + chunk_size])
            for index in range(0, len(tests), chunk_size)
        ]
        payloads = [(chunk, model, dict(cache)) for chunk in chunks]
        reports: List[RepairReport] = []
        with multiprocessing.Pool(processes) as pool:
            for chunk_reports, local_cache in pool.imap(_repair_chunk, payloads):
                reports.extend(chunk_reports)
                cache.update(local_cache)
    else:
        reports = [repair_one(test, model, cache) for test in tests]

    cache_hits = sum(1 for report in reports if report.from_cache)
    return CampaignResult(
        model_name=str(model_name), reports=reports, cache_hits=cache_hits
    )
