"""Splicing synthesized mechanisms back into litmus tests.

:func:`apply_placements` is a pure function: it rebuilds the repaired
:class:`~repro.litmus.ast.LitmusTest` from the *original* test and the
current mechanism of every placement, so the escalation loop can revisit
its choices without undo logic.

Two splice kinds exist:

* ``fence`` — a :class:`~repro.litmus.instructions.Fence` instruction is
  inserted immediately before the instruction of the access that ends
  the placement's gap;
* ``dep`` — a false address dependency (the classic ``xor r,src,src``
  idiom) is threaded from the source read into the target access, which
  must have a free index register.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

from repro.fences.aeg import AbstractEvent, AbstractEventGraph
from repro.fences.placement import Placement
from repro.litmus.ast import LitmusTest
from repro.litmus.instructions import Add, Fence, Instruction, Load, Store, Xor


class RepairError(ValueError):
    """Raised when a placement cannot be spliced into the program."""


def _fresh_register(
    instructions: Sequence[Instruction], hint: int, issued: set
) -> str:
    """A register name unused by the thread (``rd1``, ``rd2``, ...).

    ``issued`` holds names already handed out during this repair (they
    are not yet part of the instruction list).
    """
    used = set(issued)
    for instruction in instructions:
        for attribute in ("dst", "src", "addr_reg", "index_reg", "left", "right", "reg"):
            value = getattr(instruction, attribute, None)
            if isinstance(value, str):
                used.add(value)
    index = hint
    while f"rd{index}" in used:
        index += 1
    issued.add(f"rd{index}")
    return f"rd{index}"


def _with_index_register(instruction: Instruction, register: str) -> Instruction:
    if isinstance(instruction, (Load, Store)):
        if instruction.index_reg is not None:
            raise RepairError(
                f"access {instruction.mnemonic()!r} already carries an index register"
            )
        return replace(instruction, index_reg=register)
    raise RepairError(f"cannot attach an address dependency to {instruction!r}")


def apply_placements(
    test: LitmusTest,
    aeg: AbstractEventGraph,
    placements: Sequence[Placement],
    name_suffix: str = "+fixed",
    strategy: str = "greedy",
) -> LitmusTest:
    """Return a new litmus test with every active placement spliced in.

    Placements whose mechanism is ``existing`` insert nothing.  The
    result shares no mutable state with the input test.  ``strategy``
    only annotates the doc string of the repaired test (non-default
    strategies are called out), so provenance survives into reports.
    """
    threads: List[List[Instruction]] = [list(thread) for thread in test.threads]
    # Collect insertions per thread as (instr_position, priority, items)
    # and apply them back to front so indices stay valid.
    inserts: Dict[int, List[Tuple[int, int, List[Instruction]]]] = {}
    # Dependencies are grouped per target instruction: several sources
    # feeding one access are combined into a single index register (an
    # access has only one), so no placement is silently dropped.
    dep_sources: Dict[Tuple[int, int], List[str]] = {}

    for order, placement in enumerate(placements):
        mechanism = placement.mechanism
        if mechanism.kind == "existing":
            continue
        accesses = aeg.threads[placement.thread]
        if mechanism.kind == "fence":
            target = accesses[placement.gap + 1]
            inserts.setdefault(placement.thread, []).append(
                (target.instr_index, order, [Fence(mechanism.name)])
            )
        elif mechanism.kind == "dep":
            key = placement.pair_keys[0]
            src = accesses[key[1]]
            dst = accesses[key[2]]
            if src.register is None:
                raise RepairError(f"dependency source {src!r} has no register")
            dep_sources.setdefault(
                (placement.thread, dst.instr_index), []
            ).append(src.register)
        else:
            raise RepairError(f"unknown mechanism kind {mechanism.kind!r}")

    issued: set = set()
    for (thread, position), sources in sorted(dep_sources.items()):
        # xor rz,src,src per source; add-chain multiple zeros together.
        new_instructions: List[Instruction] = []
        zeros: List[str] = []
        for source in sources:
            zero = _fresh_register(threads[thread], hint=1, issued=issued)
            zeros.append(zero)
            new_instructions.append(Xor(zero, source, source))
        combined = zeros[0]
        for extra in zeros[1:]:
            summed = _fresh_register(threads[thread], hint=1, issued=issued)
            new_instructions.append(Add(summed, combined, extra))
            combined = summed
        threads[thread][position] = _with_index_register(
            threads[thread][position], combined
        )
        inserts.setdefault(thread, []).append((position, -1, new_instructions))

    for thread, items in inserts.items():
        for position, _, new_instructions in sorted(items, reverse=True):
            threads[thread][position:position] = new_instructions

    mechanisms = ",".join(
        str(p.mechanism) for p in placements if p.mechanism.kind != "existing"
    )
    doc = test.doc
    if mechanisms:
        tag = "repaired" if strategy == "greedy" else f"repaired/{strategy}"
        doc = (doc + " " if doc else "") + f"[{tag}: {mechanisms}]"
    return LitmusTest(
        name=test.name + name_suffix,
        arch=test.arch,
        threads=threads,
        init_registers=dict(test.init_registers),
        init_memory=dict(test.init_memory),
        condition=test.condition,
        doc=doc,
    )
