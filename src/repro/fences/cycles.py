"""Critical cycles of an abstract event graph.

A cycle of the AEG is *critical* (Shasha & Snir; Sec. 9.1.2 of the
paper) when:

* it visits each thread at most once, through one contiguous
  program-order segment;
* its program-order edges connect accesses to *different* locations
  (the delay pairs of the cycle);
* its competing edges connect accesses of different threads to the
  *same* location, at least one of them a write.

Such a cycle is the static shadow of a potential non-SC execution: the
execution is forbidden on every architecture exactly when every delay
pair of the cycle is ordered by some mechanism (fence or dependency).
Whether a given program-order edge actually *is* a delay depends on the
target model — that classification lives in
:mod:`repro.fences.placement`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.fences.aeg import AbstractEvent, AbstractEventGraph, PoEdge
from repro.util.digraph import elementary_cycles

READ = "R"
WRITE = "W"


@dataclass(frozen=True)
class CriticalCycle:
    """One critical cycle: its events and its program-order pairs."""

    events: Tuple[AbstractEvent, ...]
    po_edges: Tuple[PoEdge, ...]

    def __len__(self) -> int:
        return len(self.events)

    def threads(self) -> Tuple[int, ...]:
        return tuple(sorted({event.thread for event in self.events}))

    def signature(self) -> Tuple:
        """A canonical, location/thread-renaming-insensitive description.

        Used by the campaign driver to memoize repair verdicts: two tests
        whose critical cycles have the same signature need the same
        fences.  The signature walks the cycle edge by edge, recording
        edge type, access directions and existing protections, and is
        normalised over rotations.
        """
        n = len(self.events)
        po_index = {(e.src.thread, e.src.index, e.dst.index): e for e in self.po_edges}
        descriptors: List[Tuple] = []
        for i in range(n):
            a, b = self.events[i], self.events[(i + 1) % n]
            if a.thread == b.thread:
                edge = po_index[(a.thread, a.index, b.index)]
                descriptors.append(
                    ("po", a.direction, b.direction, edge.protection_signature())
                )
            else:
                descriptors.append(("cmp", a.direction, b.direction))
        rotations = [
            tuple(descriptors[i:] + descriptors[:i]) for i in range(len(descriptors))
        ]
        return min(rotations)

    def describe(self) -> str:
        parts = []
        n = len(self.events)
        for i in range(n):
            a, b = self.events[i], self.events[(i + 1) % n]
            kind = "po" if a.thread == b.thread else "cmp"
            parts.append(f"{a!r} -{kind}-> ")
        return "".join(parts) + repr(self.events[0])


def _contiguous_thread_segments(events: Sequence[AbstractEvent]) -> bool:
    """Does the cycle enter each thread exactly once (cyclically)?"""
    n = len(events)
    boundaries = sum(
        1 for i in range(n) if events[i].thread != events[(i + 1) % n].thread
    )
    return boundaries == len({event.thread for event in events})


def critical_cycles(
    aeg: AbstractEventGraph, max_length: Optional[int] = None
) -> List[CriticalCycle]:
    """Enumerate the critical cycles of an AEG.

    ``max_length`` bounds the cycle length in events; the default allows
    two accesses per thread, the shape of every classic litmus family.
    """
    if max_length is None:
        max_length = max(4, 2 * len(aeg.threads))
    cycles: List[CriticalCycle] = []
    for nodes in elementary_cycles(aeg.graph_edges(), max_length=max_length):
        cycle = _classify(aeg, nodes)
        if cycle is not None:
            cycles.append(cycle)
    return cycles


def _classify(
    aeg: AbstractEventGraph, nodes: List[AbstractEvent]
) -> Optional[CriticalCycle]:
    n = len(nodes)
    if n < 2:
        return None
    if not _contiguous_thread_segments(nodes):
        return None
    po_edges: List[PoEdge] = []
    for i in range(n):
        a, b = nodes[i], nodes[(i + 1) % n]
        if a.thread == b.thread:
            edge = aeg.po_edge(a, b)
            if edge is None or a.location == b.location:
                return None
            po_edges.append(edge)
        else:
            if a.location != b.location:
                return None
            if a.direction == READ and b.direction == READ:
                return None
    if not po_edges:
        return None
    return CriticalCycle(events=tuple(nodes), po_edges=tuple(po_edges))
