"""End-to-end validation of a fence repair, and the synthesis driver.

The static placement of :mod:`repro.fences.placement` is a candidate,
not a proof: dependencies are not cumulative (``wrc+addrs`` stays
allowed on Power) and lightweight fences do not restore SC for every
shape (``iriw+lwsyncs`` stays allowed).  :func:`repair_test` therefore
closes the loop with the paper's own simulator: apply the placements,
re-run :func:`repro.herd.simulate` under the target model, and escalate
the cheapest placement up its mechanism chain until the previously
allowed outcome becomes unobservable (or every chain is exhausted).

The reports carry everything the campaign driver and the test-suite
need: verdicts before and after, the mechanisms chosen, their summed
cost and how many validation runs the search took.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.fences.aeg import AbstractEventGraph, aeg_from_litmus
from repro.fences.cycles import critical_cycles
from repro.fences.placement import Placement, plan_placements, total_cost
from repro.fences.repair import RepairError, apply_placements
from repro.herd.simulator import ModelLike, Simulator
from repro.litmus.ast import LitmusTest
from repro.report import JsonReportMixin


@dataclass
class RepairReport(JsonReportMixin):
    """Outcome of synthesizing fences for one litmus test."""

    test_name: str
    model_name: str
    before_verdict: str
    after_verdict: str
    success: bool
    repaired: Optional[LitmusTest]
    strategy: str = "greedy"
    placements: Tuple[Placement, ...] = ()
    cost: float = 0.0
    validations: int = 0
    num_cycles: int = 0
    from_cache: bool = False
    #: pair-descriptor -> mechanism pairs, for the campaign memo cache.
    mechanism_seed: Tuple[Tuple[Tuple, str], ...] = ()

    @property
    def mechanisms(self) -> Tuple[str, ...]:
        """The inserted mechanisms, in placement order (existing ones excluded)."""
        return tuple(
            placement.mechanism.name
            for placement in self.placements
            if placement.mechanism.kind != "existing"
        )

    @property
    def needed_repair(self) -> bool:
        return self.before_verdict == "Allow"

    def describe(self) -> str:
        if not self.needed_repair:
            return (
                f"{self.test_name} under {self.model_name}: already Forbid, "
                f"nothing to do"
            )
        status = "repaired" if self.success else "NOT repaired"
        mechanisms = ", ".join(self.mechanisms) or "nothing"
        return (
            f"{self.test_name} under {self.model_name}: {status} with "
            f"{mechanisms} (cost {self.cost:g}, {self.validations} validation"
            f"{'s' if self.validations != 1 else ''})"
        )

    @property
    def verdict(self) -> str:
        """The verdict after repair (``"Forbid"`` on success)."""
        return self.after_verdict

    def to_dict(self) -> dict:
        return {
            "type": "repair",
            "test": self.test_name,
            "model": self.model_name,
            "verdict": self.after_verdict,
            "before_verdict": self.before_verdict,
            "after_verdict": self.after_verdict,
            "success": self.success,
            "needed_repair": self.needed_repair,
            "strategy": self.strategy,
            "mechanisms": list(self.mechanisms),
            "cost": self.cost,
            "validations": self.validations,
            "num_cycles": self.num_cycles,
            "from_cache": self.from_cache,
            "repaired": self.repaired.pretty() if self.repaired is not None else None,
        }


def validate_repair(
    original: LitmusTest,
    repaired: LitmusTest,
    model: ModelLike,
    context_cache=None,
) -> Tuple[str, str]:
    """Verdicts (before, after) of the target outcome under the model.

    Uses the simulator's verdict fast path (pruning enumeration, early
    exit on the target outcome): the escalation loop only ever needs
    Allow/Forbid, never the full outcome summary.  ``context_cache``
    optionally supplies a :class:`repro.campaign.ContextCache`, so
    re-validations of tests already seen skip the front half of the
    pipeline.
    """
    simulator = Simulator(model)
    return (
        _verdict(simulator, original, context_cache),
        _verdict(simulator, repaired, context_cache),
    )


def _verdict(simulator: Simulator, test: LitmusTest, context_cache) -> str:
    if context_cache is None:
        return simulator.verdict(test)
    return simulator.verdict(test, context=context_cache.get(test))


def _escalation_candidates(placements: Sequence[Placement]) -> List[Placement]:
    return [placement for placement in placements if placement.can_escalate()]


def repair_test(
    test: LitmusTest,
    model: ModelLike,
    max_validations: int = 64,
    initial_mechanisms=None,
    analysis=None,
    context_cache=None,
    strategy: str = "greedy",
) -> RepairReport:
    """Synthesize the cheapest validated fence placement for one test.

    ``initial_mechanisms`` optionally seeds the search with mechanisms a
    previous repair of the same cycle shape settled on (see
    :mod:`repro.fences.campaign`): each entry maps a pair descriptor
    ``(src_dir, dst_dir, protection_signature)`` to a mechanism name, and
    matching placements fast-forward their chain to it before the first
    validation.  ``analysis`` optionally supplies an
    ``(aeg, critical_cycles)`` pair so batch drivers that already ran
    the static analysis (for the memo key) do not run it twice.  Both
    may be zero-argument callables, invoked only when the test actually
    needs repair — tests that are already Forbid pay nothing.

    ``context_cache`` optionally supplies a
    :class:`repro.campaign.ContextCache`: every validation verdict then
    reuses memoized simulation contexts, which pays off whenever the
    same test (or the same spliced candidate, e.g. on a warm campaign
    re-run) is validated more than once.  Pass ``model`` as an already
    resolved :class:`~repro.core.model.Model` when repairing in a loop —
    the campaign drivers resolve it once and pass it down.

    ``strategy`` selects the placement planner: the default greedy
    weighted set cover, or ``"ilp"`` for the exact integer program of
    :mod:`repro.fences.ilp`.  Escalation, splicing and validation are
    strategy-independent — only the initial cover differs.
    """
    simulator = Simulator(model)
    model_name = simulator.model_name

    before = _verdict(simulator, test, context_cache)
    if before == "Forbid":
        return RepairReport(
            test_name=test.name,
            model_name=model_name,
            before_verdict=before,
            after_verdict=before,
            success=True,
            repaired=None,
            strategy=strategy,
            validations=1,
        )

    if callable(analysis):
        analysis = analysis()
    if analysis is not None:
        aeg, cycles = analysis[0], list(analysis[1])
    else:
        aeg = aeg_from_litmus(test)
        cycles = critical_cycles(aeg)
    if callable(initial_mechanisms):
        initial_mechanisms = initial_mechanisms()
    placements = plan_placements(aeg, cycles, model_name, strategy=strategy)
    seeded = _seed_from_cache(aeg, placements, initial_mechanisms)

    validations = 1  # the "before" run
    repaired: Optional[LitmusTest] = None
    after = before
    success = False
    while validations < max_validations:
        try:
            repaired = apply_placements(test, aeg, placements, strategy=strategy)
        except RepairError:
            # A mechanism cannot be spliced (e.g. a dependency into an
            # access whose index register is taken): escalate past it
            # rather than crash; with nothing left to escalate, fail.
            deps = [
                p
                for p in placements
                if p.mechanism.kind == "dep" and p.can_escalate()
            ]
            if not deps:
                break
            min(deps, key=lambda p: (p.cost, p.thread, p.gap)).escalate()
            continue
        after = _verdict(simulator, repaired, context_cache)
        validations += 1
        if after == "Forbid":
            success = True
            break
        candidates = _escalation_candidates(placements)
        if not candidates:
            break
        # Escalate the placement with the cheapest current mechanism
        # (earliest position on ties): the cheapest choice is the most
        # likely to have been statically over-optimistic.
        weakest = min(candidates, key=lambda p: (p.cost, p.thread, p.gap))
        weakest.escalate()

    return RepairReport(
        test_name=test.name,
        model_name=model_name,
        before_verdict=before,
        after_verdict=after,
        success=success,
        repaired=repaired,
        strategy=strategy,
        placements=tuple(placements),
        cost=total_cost(placements),
        validations=validations,
        num_cycles=len(cycles),
        from_cache=seeded,
        mechanism_seed=tuple(placement_mechanisms(aeg, placements)) if success else (),
    )


def _pair_descriptor(aeg: AbstractEventGraph, placement: Placement) -> Optional[Tuple]:
    if len(placement.pair_keys) != 1:
        return None
    thread, i, j = placement.pair_keys[0]
    edge = aeg.po_edge(aeg.threads[thread][i], aeg.threads[thread][j])
    if edge is None:
        return None
    return (edge.src.direction, edge.dst.direction, edge.protection_signature())


def _seed_from_cache(
    aeg: AbstractEventGraph,
    placements: Sequence[Placement],
    initial_mechanisms: Optional[Sequence[Tuple[Tuple, str]]],
) -> bool:
    if not initial_mechanisms:
        return False
    lookup = dict(initial_mechanisms)
    seeded = False
    for placement in placements:
        descriptor = _pair_descriptor(aeg, placement)
        if descriptor is None or descriptor not in lookup:
            continue
        wanted = lookup[descriptor]
        for level, mechanism in enumerate(placement.chain):
            if mechanism.name == wanted and level >= placement.level:
                placement.level = level
                seeded = True
                break
    return seeded


def placement_mechanisms(
    aeg: AbstractEventGraph, placements: Sequence[Placement]
) -> List[Tuple[Tuple, str]]:
    """Serialize final mechanism choices for the campaign memo cache."""
    result: List[Tuple[Tuple, str]] = []
    for placement in placements:
        descriptor = _pair_descriptor(aeg, placement)
        if descriptor is not None:
            result.append((descriptor, placement.mechanism.name))
    return result
