"""Fence placement: which mechanism goes between which accesses.

Given the critical cycles of an AEG and a target model, this module

1. classifies each program-order pair of each cycle as *protected* or as
   a *delay* (relaxable under the model, given the fences and
   dependencies already present);
2. selects insertion points through a pluggable *strategy*: the default
   ``"greedy"`` weighted set cover (the practical core of the min-cut of
   "Don't sit on the fence") or the exact ``"ilp"`` 0/1 integer program
   of :mod:`repro.fences.ilp` — a fence inserted between two adjacent
   accesses of a thread cuts every delay pair whose span crosses it, and
   one insertion can serve several cycles at once;
3. equips every placement with an *escalation chain* — the per-pair
   mechanism candidates in ascending cost order (dependency, lightweight
   fence, full fence on Power; dependency, store fence, dmb on ARM;
   mfence on x86).  The validation driver walks the chain upward when
   the herd simulator shows the cheap choice is not cumulative enough
   (e.g. iriw needs sync even though lwsync statically orders read-read
   pairs).

Costs follow the architecture manuals' folklore: dependencies are almost
free, lightweight fences cheap, full fences expensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.fences.aeg import AbstractEventGraph, PoEdge
from repro.fences.cycles import CriticalCycle

READ = "R"
WRITE = "W"

ALL_PAIRS = (("W", "W"), ("W", "R"), ("R", "W"), ("R", "R"))


@dataclass(frozen=True)
class Mechanism:
    """One ordering mechanism a placement can use.

    ``kind`` is ``"fence"`` (insert a fence instruction), ``"dep"``
    (insert a false address dependency) or ``"existing"`` (keep the
    protection already present in the program — zero cost, nothing to
    insert).
    """

    kind: str
    name: str
    cost: float

    def __str__(self) -> str:
        return self.name


def _fence(name: str, cost: float) -> Mechanism:
    return Mechanism("fence", name, cost)


def _dep(cost: float = 1.0) -> Mechanism:
    return Mechanism("dep", "addr", cost)


KEEP = Mechanism("existing", "existing", 0.0)

#: Which direction pairs each fence mnemonic orders, per ISA.
FENCE_ORDERS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "sync": ALL_PAIRS,
    "lwsync": (("W", "W"), ("R", "W"), ("R", "R")),
    "eieio": (("W", "W"),),
    "dmb": ALL_PAIRS,
    "dsb": ALL_PAIRS,
    "dmb.st": (("W", "W"),),
    "dsb.st": (("W", "W"),),
    "mfence": ALL_PAIRS,
}

#: Fence vocabulary available for insertion, by litmus ISA, ascending cost.
FENCE_COSTS: Dict[str, Tuple[Mechanism, ...]] = {
    "power": (_fence("lwsync", 2.0), _fence("sync", 4.0)),
    "arm": (_fence("dmb.st", 2.0), _fence("dmb", 4.0)),
    "x86": (_fence("mfence", 2.0),),
}

#: Direction pairs the model may reorder when nothing protects them.
RELAXED_PAIRS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "sc": (),
    "tso": (("W", "R"),),
    "x86": (("W", "R"),),
    # C++ R-A preserves all of sequenced-before (ppo = po): its allowed
    # behaviours come from the weakened PROPAGATION axiom, which no
    # fence of the pseudo-ISA can strengthen — nothing to relax here.
    "cpp-ra": (),
    "power": ALL_PAIRS,
    "pldi2011": ALL_PAIRS,
    "power-static-ppo": ALL_PAIRS,
    "arm": ALL_PAIRS,
    "arm-llh": ALL_PAIRS,
    "power-arm": ALL_PAIRS,
    "arm-static-ppo": ALL_PAIRS,
}


#: The fence vocabulary a model actually reacts to.  Litmus tests are
#: written in a neutral pseudo-ISA, so a test registered as ``power``
#: can be repaired for TSO — but only mfence means anything there.
MODEL_ISA: Dict[str, str] = {
    "tso": "x86",
    "power": "power",
    "power-static-ppo": "power",
    "pldi2011": "power",
    "arm": "arm",
    "arm-llh": "arm",
    "arm-static-ppo": "arm",
    "power-arm": "arm",
}


def isa_of_model(model_name: str, fallback_arch: str) -> str:
    """The ISA whose fences the model interprets (fall back to the test's)."""
    return MODEL_ISA.get(model_name, fallback_arch)


def relaxation_profile(model_name: str, arch: str) -> Tuple[Tuple[str, str], ...]:
    """The relaxable direction pairs of a model (fall back to the ISA's)."""
    if model_name in RELAXED_PAIRS:
        return RELAXED_PAIRS[model_name]
    return RELAXED_PAIRS.get(arch, ALL_PAIRS)


def fence_orders_pair(fence: str, pair: Tuple[str, str]) -> bool:
    return pair in FENCE_ORDERS.get(fence, ())


#: Fence mnemonics each ISA's models interpret.
ISA_FENCES: Dict[str, Tuple[str, ...]] = {
    "power": ("sync", "lwsync", "eieio"),
    "arm": ("dmb", "dsb", "dmb.st", "dsb.st"),
    "x86": ("mfence",),
}


def is_protected(edge: PoEdge, model_name: str, arch: str) -> bool:
    """Is the pair already ordered by mechanisms present in the program?

    This is the *static* judgement: dependencies count as protection
    even though they are not cumulative — the validation driver catches
    (and escalates past) the cases where the static judgement is too
    optimistic.  Only fences of the model's own ISA count: a Power
    ``sync`` means nothing to the TSO model.
    """
    pair = edge.directions
    if pair not in relaxation_profile(model_name, arch):
        return True
    known = ISA_FENCES.get(isa_of_model(model_name, arch), ())
    for fence in edge.fences:
        if fence in known and fence_orders_pair(fence, pair):
            return True
    if edge.ctrl_cfence:
        return True
    if edge.addr_dep or edge.data_dep:
        return True
    if edge.ctrl_dep and edge.dst.direction == WRITE:
        return True
    return False


@dataclass
class Placement:
    """One insertion point plus its escalation chain.

    ``thread``/``gap`` locate the insertion: between access ``gap`` and
    access ``gap + 1`` of the thread (for dependencies the pair itself is
    recorded in ``pair_keys``).  ``chain[level]`` is the mechanism in
    force; level 0 of a latent placement is :data:`KEEP`.
    """

    thread: int
    gap: int
    pair_keys: Tuple[Tuple[int, int, int], ...]
    chain: Tuple[Mechanism, ...]
    level: int = 0

    @property
    def mechanism(self) -> Mechanism:
        return self.chain[self.level]

    @property
    def cost(self) -> float:
        return self.mechanism.cost

    def can_escalate(self) -> bool:
        return self.level + 1 < len(self.chain)

    def escalate(self) -> None:
        if not self.can_escalate():
            raise ValueError(f"placement already at strongest mechanism: {self}")
        self.level += 1

    def __str__(self) -> str:
        return f"T{self.thread}@{self.gap}:{self.mechanism.name}"


def total_cost(placements: Sequence[Placement]) -> float:
    return sum(placement.cost for placement in placements)


def fence_chain(
    arch: str, pairs: Sequence[Tuple[str, str]], stronger_than: float = -1.0
) -> List[Mechanism]:
    """Fences of the ISA ordering *all* given pairs, ascending cost."""
    chain = [
        mechanism
        for mechanism in FENCE_COSTS.get(arch, FENCE_COSTS["power"])
        if mechanism.cost > stronger_than
        and all(fence_orders_pair(mechanism.name, pair) for pair in pairs)
    ]
    return chain


def dep_applicable(edge: PoEdge) -> bool:
    """Can a false address dependency be spliced onto this pair?

    The source must be a read (its destination register carries the
    taint), the pair must not already carry one, and the destination's
    index register must be free to take it.
    """
    return (
        edge.src.direction == READ
        and edge.src.register is not None
        and not edge.addr_dep
        and not edge.dst.uses_index_register
    )


#: key -> PoEdge maps of the unprotected (delay) pairs of a problem.
DelayMap = Dict[Tuple[int, int, int], PoEdge]

#: A placement strategy maps (delay pairs, arch) to active placements.
PlacementStrategy = Callable[[DelayMap, str], List[Placement]]

#: Registered strategies.  ``"ilp"`` registers itself when
#: :mod:`repro.fences.ilp` is imported, which the package ``__init__``
#: always does — both names are present by the time any caller can
#: reach :func:`resolve_strategy`.
PLACEMENT_STRATEGIES: Dict[str, PlacementStrategy] = {}


def classify_pairs(
    aeg: AbstractEventGraph,
    cycles: Sequence[CriticalCycle],
    model_name: str,
    arch: str,
) -> Tuple[DelayMap, DelayMap]:
    """Split every cycle pair into (delays, statically protected)."""
    edges: Dict[Tuple[int, int, int], PoEdge] = {}
    for cycle in cycles:
        for edge in cycle.po_edges:
            edges.setdefault(edge.key, edge)
    delays = {
        key: edge
        for key, edge in edges.items()
        if not is_protected(edge, model_name, arch)
    }
    protected = {key: edge for key, edge in edges.items() if key not in delays}
    return delays, protected


def plan_greedy_cover(delays: DelayMap, arch: str) -> List[Placement]:
    """Greedy weighted set cover of the delay pairs.

    Candidate insertion gaps: gap g of thread t covers pair (i, j) iff
    i <= g < j.  Each round picks the (gap, chain) with the best
    cost-per-covered-pair ratio; the chain's cheapest mechanism must
    order every pair the gap covers at once.
    """
    placements: List[Placement] = []
    uncovered: Set[Tuple[int, int, int]] = set(delays)
    while uncovered:
        best: Optional[Tuple[float, int, int, List[Tuple[int, int, int]], List[Mechanism]]] = None
        gaps = {
            (thread, gap)
            for (thread, i, j) in uncovered
            for gap in range(i, j)
        }
        for thread, gap in sorted(gaps):
            covered = sorted(
                key
                for key in uncovered
                if key[0] == thread and key[1] <= gap < key[2]
            )
            pairs = [delays[key].directions for key in covered]
            chain = fence_chain(arch, pairs)
            if not chain:
                continue
            if len(covered) == 1 and dep_applicable(delays[covered[0]]):
                chain = [_dep()] + chain
            score = (chain[0].cost / len(covered), thread, gap)
            if best is None or score < (best[0], best[1], best[2]):
                best = (score[0], thread, gap, covered, chain)
        if best is None:
            # No fence of the ISA can order some pair; give up on those.
            break
        _, thread, gap, covered, chain = best
        placements.append(
            Placement(
                thread=thread,
                gap=gap,
                pair_keys=tuple(covered),
                chain=tuple(chain),
            )
        )
        uncovered -= set(covered)
    return placements


PLACEMENT_STRATEGIES["greedy"] = plan_greedy_cover


def latent_placements(protected: DelayMap, arch: str) -> List[Placement]:
    """Latent placements: statically protected pairs keep their mechanism
    but can be escalated to a real fence when validation demands it."""
    placements: List[Placement] = []
    for key in sorted(protected):
        edge = protected[key]
        chain = fence_chain(
            arch, [edge.directions], stronger_than=_strongest_present(edge)
        )
        if not chain:
            continue
        placements.append(
            Placement(
                thread=key[0],
                gap=key[2] - 1,
                pair_keys=(key,),
                chain=(KEEP, *chain),
            )
        )
    return placements


def resolve_strategy(strategy: str) -> PlacementStrategy:
    """Look up a registered placement strategy."""
    try:
        return PLACEMENT_STRATEGIES[strategy]
    except KeyError:
        known = ", ".join(sorted(PLACEMENT_STRATEGIES))
        raise ValueError(
            f"unknown placement strategy {strategy!r} (known: {known})"
        ) from None


def plan_placements(
    aeg: AbstractEventGraph,
    cycles: Sequence[CriticalCycle],
    model_name: str,
    arch: Optional[str] = None,
    strategy: str = "greedy",
) -> List[Placement]:
    """Cover all delay pairs with the chosen strategy, plus latents.

    Returns active placements (a mechanism will be inserted) for every
    unprotected delay pair of every critical cycle, and *latent*
    placements (level 0 = keep the existing protection) for the pairs
    whose static protection might still prove insufficient.  The list is
    sorted by (thread, gap) for determinism.
    """
    arch = arch or isa_of_model(model_name, aeg.arch)
    delays, protected = classify_pairs(aeg, cycles, model_name, arch)
    placements = resolve_strategy(strategy)(delays, arch)
    placements.extend(latent_placements(protected, arch))
    placements.sort(key=lambda p: (p.thread, p.gap))
    return placements


def _strongest_present(edge: PoEdge) -> float:
    """Cost of the strongest mechanism already on the pair (0 = deps only)."""
    best = 0.0
    for mechanism in FENCE_COSTS.get("power", ()) + FENCE_COSTS.get("arm", ()) + FENCE_COSTS.get("x86", ()):
        if mechanism.name in edge.fences and fence_orders_pair(
            mechanism.name, edge.directions
        ):
            best = max(best, mechanism.cost)
    return best
