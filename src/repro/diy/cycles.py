"""The edge vocabulary of diy cycles.

An :class:`Edge` connects two consecutive accesses of a cycle and is one of:

* a communication edge — ``Rf``, ``Fr`` or ``Co``, external (``e``,
  between two threads) or internal (``i``, within a thread);
* a program-order edge on one thread — plain ``Po``, ``Fenced`` (a fence
  sits between the two accesses) or ``Dp`` (an address, data, control or
  control+cfence dependency).

Program-order edges connect accesses to *different* locations (the
classic ``d`` flavour of diy); internal communication edges connect
accesses to the *same* location.  The directions (read/write) of the two
endpoints are part of the edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

#: Dependency kinds understood by the generator.
DEPENDENCY_KINDS = ("addr", "data", "ctrl", "ctrlisync", "ctrlisb")

READ = "R"
WRITE = "W"


@dataclass(frozen=True)
class Edge:
    """One edge of a diy cycle.

    Attributes
    ----------
    kind:
        ``"Rf"``, ``"Fr"``, ``"Co"``, ``"Po"``, ``"Fenced"`` or ``"Dp"``.
    src_dir / dst_dir:
        Directions of the source and target accesses (``"R"`` or ``"W"``).
    external:
        For communication edges: True when the two accesses are on
        distinct threads.  Always False for program-order edges.
    fence:
        The fence mnemonic of a ``Fenced`` edge.
    dep:
        The dependency kind of a ``Dp`` edge.
    """

    kind: str
    src_dir: str
    dst_dir: str
    external: bool = False
    fence: Optional[str] = None
    dep: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in ("Rf", "Fr", "Co", "Po", "Fenced", "Dp"):
            raise ValueError(f"unknown edge kind {self.kind!r}")
        if self.src_dir not in (READ, WRITE) or self.dst_dir not in (READ, WRITE):
            raise ValueError("edge directions must be 'R' or 'W'")
        if self.kind == "Fenced" and self.fence is None:
            raise ValueError("Fenced edges need a fence name")
        if self.kind == "Dp":
            if self.dep not in DEPENDENCY_KINDS:
                raise ValueError(f"unknown dependency kind {self.dep!r}")
            if self.src_dir != READ:
                raise ValueError("dependencies originate at reads")

    # -- classification -----------------------------------------------------------

    @property
    def is_communication(self) -> bool:
        return self.kind in ("Rf", "Fr", "Co")

    @property
    def is_program_order(self) -> bool:
        return not self.is_communication

    @property
    def changes_thread(self) -> bool:
        return self.is_communication and self.external

    @property
    def same_location(self) -> bool:
        """Do the two endpoints access the same memory location?"""
        return self.is_communication

    def label(self) -> str:
        """The short diy-style label of the edge (used to build test names)."""
        if self.kind in ("Rf", "Fr", "Co"):
            scope = "e" if self.external else "i"
            base = {"Rf": "Rf", "Fr": "Fr", "Co": "Ws"}[self.kind]
            return f"{base}{scope}"
        if self.kind == "Po":
            return f"Pod{self.src_dir}{self.dst_dir}"
        if self.kind == "Fenced":
            return f"Fenced.{self.fence}.d{self.src_dir}{self.dst_dir}"
        return f"Dp{self.dep}d{self.src_dir}{self.dst_dir}"

    def __str__(self) -> str:
        return self.label()


# ---------------------------------------------------------------------------
# Edge constructors (the public vocabulary)
# ---------------------------------------------------------------------------

def rfe() -> Edge:
    """External read-from: a write on one thread read by another thread."""
    return Edge("Rf", WRITE, READ, external=True)


def rfi() -> Edge:
    """Internal read-from: a write read by a po-later read of the same thread."""
    return Edge("Rf", WRITE, READ, external=False)


def fre() -> Edge:
    """External from-read: a read followed (in co) by another thread's write."""
    return Edge("Fr", READ, WRITE, external=True)


def fri() -> Edge:
    """Internal from-read."""
    return Edge("Fr", READ, WRITE, external=False)


def coe() -> Edge:
    """External coherence (write serialisation) edge."""
    return Edge("Co", WRITE, WRITE, external=True)


def coi() -> Edge:
    """Internal coherence edge (two writes to one location on one thread)."""
    return Edge("Co", WRITE, WRITE, external=False)


def po(src_dir: str, dst_dir: str) -> Edge:
    """Plain program order between accesses to different locations."""
    return Edge("Po", src_dir, dst_dir)


def fenced(fence: str, src_dir: str, dst_dir: str) -> Edge:
    """Program order with a fence in between."""
    return Edge("Fenced", src_dir, dst_dir, fence=fence)


def dep(kind: str, dst_dir: str) -> Edge:
    """A dependency edge from a read to a later access.

    ``kind`` is ``addr``, ``data``, ``ctrl``, ``ctrlisync`` or ``ctrlisb``;
    data dependencies may only target writes.
    """
    if kind == "data" and dst_dir != WRITE:
        raise ValueError("data dependencies target writes")
    return Edge("Dp", READ, dst_dir, dep=kind)


@dataclass(frozen=True)
class Cycle:
    """A well-formed cycle of edges.

    The cycle is normalised so that its last edge is an external
    communication edge (hence event 0 starts thread 0).
    """

    edges: Tuple[Edge, ...]

    def __post_init__(self) -> None:
        if len(self.edges) < 2:
            raise ValueError("a cycle needs at least two edges")
        if not any(edge.changes_thread for edge in self.edges):
            raise ValueError("a cycle needs at least one external communication edge")

    @classmethod
    def of(cls, edges: Sequence[Edge]) -> "Cycle":
        """Build a cycle, rotating it so the last edge changes thread."""
        edges = list(edges)
        # Rotate so that the wrap-around edge is external.
        for rotation in range(len(edges)):
            if edges[-1].changes_thread:
                break
            edges = edges[1:] + edges[:1]
        else:  # pragma: no cover - guarded by __post_init__
            raise ValueError("a cycle needs at least one external communication edge")
        return cls(tuple(edges))

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self):
        return iter(self.edges)

    def directions(self) -> List[str]:
        """The direction (R/W) of each event, checking edge consistency.

        Event ``i`` is the source of edge ``i`` and the target of edge
        ``i-1``; both must agree on its direction.
        """
        n = len(self.edges)
        directions: List[str] = []
        for index in range(n):
            incoming = self.edges[(index - 1) % n]
            outgoing = self.edges[index]
            if incoming.dst_dir != outgoing.src_dir:
                raise ValueError(
                    f"event {index}: incoming edge {incoming} targets a "
                    f"{incoming.dst_dir} but outgoing edge {outgoing} starts at a "
                    f"{outgoing.src_dir}"
                )
            directions.append(outgoing.src_dir)
        return directions

    def thread_of_events(self) -> List[int]:
        """The thread index of each event."""
        threads: List[int] = []
        current = 0
        for index, edge in enumerate(self.edges):
            threads.append(current)
            if edge.changes_thread:
                current += 1
        # The wrap-around edge is external (normalised), so event 0 correctly
        # starts a fresh thread.
        return threads

    def num_threads(self) -> int:
        return sum(1 for edge in self.edges if edge.changes_thread)

    def location_classes(self) -> List[int]:
        """Assign a location class to each event (union-find over same-loc edges)."""
        n = len(self.edges)
        parent = list(range(n))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        for index, edge in enumerate(self.edges):
            if edge.same_location:
                union(index, (index + 1) % n)

        # Name the classes in order of first appearance.
        class_names: dict = {}
        classes: List[int] = []
        for index in range(n):
            root = find(index)
            if root not in class_names:
                class_names[root] = len(class_names)
            classes.append(class_names[root])

        # Different-location edges must indeed connect different classes.
        for index, edge in enumerate(self.edges):
            if edge.is_program_order:
                if classes[index] == classes[(index + 1) % n]:
                    raise ValueError(
                        f"edge {edge} requires different locations but the cycle "
                        f"forces both endpoints to the same location"
                    )
        return classes

    def label(self) -> str:
        return " ".join(edge.label() for edge in self.edges)
