"""diy-style litmus test generation (Sec. 8.1).

The diy tool generates litmus tests from *cycles of relaxations*: each
edge of the cycle is either a communication edge (read-from, from-read,
coherence; external or internal) or a program-order edge on one thread
(plain po, fenced, or dependency-carrying).  A cycle that alternates
communications and per-thread segments is a *critical cycle*
(Sec. 9.1.2); the generated test asks whether the cycle can actually be
executed, i.e. whether the corresponding final state is observable.

* :mod:`repro.diy.cycles` — the edge vocabulary and cycle well-formedness;
* :mod:`repro.diy.generator` — cycle -> :class:`repro.litmus.ast.LitmusTest`;
* :mod:`repro.diy.naming` — the naming convention of Tab. III;
* :mod:`repro.diy.families` — systematic families of tests (used for the
  hardware campaign of Tab. V and the tool comparisons of Tab. IX-XI).
"""

from repro.diy.cycles import Edge, Cycle, po, fenced, dep, rfe, fre, coe, rfi, fri, coi
from repro.diy.generator import generate_test
from repro.diy.naming import cycle_name
from repro.diy.families import (
    FamilySweep,
    extended_family,
    standard_family,
    sweep_family,
    two_thread_family,
)

__all__ = [
    "Edge",
    "Cycle",
    "po",
    "fenced",
    "dep",
    "rfe",
    "fre",
    "coe",
    "rfi",
    "fri",
    "coi",
    "generate_test",
    "cycle_name",
    "standard_family",
    "two_thread_family",
    "extended_family",
    "FamilySweep",
    "sweep_family",
]
