"""Systematic families of generated litmus tests.

These families back the large-scale experiments:

* the hardware-testing campaign of Tab. V (thousands of tests per
  architecture in the paper; the family size here is a parameter);
* the simulation-speed comparison of Tab. IX;
* the verification comparisons of Tab. X/XI.

A family is produced by enumerating critical cycles over a per-thread
mechanism vocabulary (plain po, fences, dependencies) and the external
communication edges, then generating one litmus test per cycle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.diy.cycles import Cycle, Edge, coe, dep, fenced, fre, po, rfe
from repro.diy.generator import generate_test
from repro.litmus.ast import LitmusTest
from repro.report import JsonReportMixin

#: Per-architecture fence vocabulary used for Fenced program-order edges.
FENCES_BY_ARCH: Dict[str, Tuple[str, ...]] = {
    "power": ("sync", "lwsync"),
    "arm": ("dmb",),
    "x86": ("mfence",),
}

#: Per-architecture dependency vocabulary.
DEPS_BY_ARCH: Dict[str, Tuple[str, ...]] = {
    "power": ("addr", "data", "ctrl", "ctrlisync"),
    "arm": ("addr", "data", "ctrl", "ctrlisb"),
    "x86": (),
}

_COMMUNICATIONS = {"Rfe": rfe, "Fre": fre, "Coe": coe}


def _segment_mechanisms(
    first_dir: str, last_dir: str, arch: str
) -> List[Edge]:
    """Program-order edges available between two accesses of given directions."""
    mechanisms: List[Edge] = [po(first_dir, last_dir)]
    for fence in FENCES_BY_ARCH.get(arch, ()):
        mechanisms.append(fenced(fence, first_dir, last_dir))
    if first_dir == "R":
        for kind in DEPS_BY_ARCH.get(arch, ()):
            if kind == "data" and last_dir != "W":
                continue
            if kind in ("ctrlisync", "ctrlisb") and last_dir != "R":
                # ctrl+cfence is interesting on read targets; plain ctrl
                # already covers the write targets.
                continue
            mechanisms.append(dep(kind, last_dir))
    return mechanisms


def _communication_choices(count: int) -> Iterator[Tuple[Edge, ...]]:
    """All tuples of `count` external communication edges."""
    constructors = list(_COMMUNICATIONS.values())
    for combination in itertools.product(constructors, repeat=count):
        yield tuple(make() for make in combination)


def critical_cycles(
    num_threads: int, arch: str
) -> Iterator[Cycle]:
    """All critical cycles with one two-access segment per thread.

    Each thread holds exactly two accesses linked by a program-order
    mechanism; consecutive threads are linked by an external
    communication edge.  (Single-access threads, as in wrc or iriw, are
    produced by :func:`extended_family`.)
    """
    for communications in _communication_choices(num_threads):
        # Directions of each thread's first/last access are imposed by the
        # communication edges around it.
        first_dirs = [communications[(i - 1) % num_threads].dst_dir for i in range(num_threads)]
        last_dirs = [communications[i].src_dir for i in range(num_threads)]
        per_thread_options = [
            _segment_mechanisms(first_dirs[i], last_dirs[i], arch)
            for i in range(num_threads)
        ]
        for segments in itertools.product(*per_thread_options):
            edges: List[Edge] = []
            for i in range(num_threads):
                edges.append(segments[i])
                edges.append(communications[i])
            try:
                yield Cycle.of(edges)
            except ValueError:
                continue


def two_thread_family(arch: str = "power", limit: Optional[int] = None) -> List[LitmusTest]:
    """All two-thread critical-cycle tests over the architecture's vocabulary."""
    return _generate(critical_cycles(2, arch), arch, limit)


def three_thread_family(arch: str = "power", limit: Optional[int] = None) -> List[LitmusTest]:
    """All three-thread critical-cycle tests (one segment per thread)."""
    return _generate(critical_cycles(3, arch), arch, limit)


def standard_family(
    arch: str = "power", max_threads: int = 3, limit: Optional[int] = None
) -> List[LitmusTest]:
    """The default campaign family: 2-thread plus (optionally) 3-thread cycles."""
    cycles: Iterator[Cycle] = critical_cycles(2, arch)
    if max_threads >= 3:
        cycles = itertools.chain(cycles, critical_cycles(3, arch))
    return _generate(cycles, arch, limit)


def extended_family(arch: str = "power", limit: Optional[int] = None) -> List[LitmusTest]:
    """Cycles mixing one-access and two-access threads (wrc/rwc/iriw shapes)."""
    tests: List[LitmusTest] = []
    seen: set = set()
    fences = FENCES_BY_ARCH.get(arch, ())
    deps = DEPS_BY_ARCH.get(arch, ())

    def reader_mechanisms() -> List[Edge]:
        options = [po("R", "R")]
        options += [fenced(f, "R", "R") for f in fences]
        options += [dep(k, "R") for k in deps if k != "data"]
        return options

    # wrc / iriw shapes: writer threads with a single write, reader threads
    # with two reads kept in order by some mechanism.
    for first in reader_mechanisms():
        for second in reader_mechanisms():
            wrc_edges = [rfe(), dep("addr", "W"), rfe(), second, fre()]
            iriw_edges = [rfe(), first, fre(), rfe(), second, fre()]
            for edges in (wrc_edges, iriw_edges):
                try:
                    cycle = Cycle.of(list(edges))
                except ValueError:
                    continue
                test = generate_test(cycle, arch=arch)
                if test.name in seen:
                    continue
                seen.add(test.name)
                tests.append(test)
                if limit is not None and len(tests) >= limit:
                    return tests
    return tests


@dataclass
class FamilySweep(JsonReportMixin):
    """Verdicts of one family under one model (a column of Tab. V/IX)."""

    model_name: str
    #: per test, in family order: ``(test name, "Allow" | "Forbid")``.
    verdicts: Tuple[Tuple[str, str], ...]
    #: quarantined tests of a supervised sweep
    #: (:class:`~repro.campaign.FailedItem` records); ``verdicts`` then
    #: covers exactly the survivors, in family order.
    errors: Tuple = ()

    @property
    def num_tests(self) -> int:
        return len(self.verdicts)

    @property
    def num_allowed(self) -> int:
        return sum(1 for _, verdict in self.verdicts if verdict == "Allow")

    @property
    def num_forbidden(self) -> int:
        return self.num_tests - self.num_allowed

    def verdict_of(self, name: str) -> str:
        for test_name, verdict in self.verdicts:
            if test_name == name:
                return verdict
        raise KeyError(f"no test named {name!r} in this sweep")

    def describe(self) -> str:
        quarantined = f", {len(self.errors)} quarantined" if self.errors else ""
        return (
            f"{self.num_tests} tests under {self.model_name}: "
            f"{self.num_allowed} Allow, {self.num_forbidden} Forbid{quarantined}"
        )

    def to_dict(self) -> dict:
        return {
            "type": "family-sweep",
            "model": self.model_name,
            "num_tests": self.num_tests,
            "num_allowed": self.num_allowed,
            "num_forbidden": self.num_forbidden,
            "errors": [error.to_dict() for error in self.errors],
            "verdicts": [[name, test_verdict] for name, test_verdict in self.verdicts],
        }


def sweep_family(
    tests: Sequence[LitmusTest],
    model,
    processes=None,
    engine: str = "auto",
    context_cache=None,
    chunk_size: int = 8,
    pool=None,
    policy=None,
    errors: Optional[List] = None,
) -> FamilySweep:
    """Allow/Forbid verdicts of every test of a family under one model.

    The batch driver behind the large-scale diy experiments: verdicts
    of distinct tests are independent, so ``processes`` (an int, or
    ``"auto"`` for one worker per core) shards them over the campaign
    runtime — the model must then be given by *name* so workers can
    re-hydrate it.  Serially, the model is resolved once for the whole
    sweep and ``context_cache`` lets repeated sweeps of the same family
    (e.g. under several models) skip the front half of the pipeline.

    ``policy`` (a :class:`~repro.campaign.SupervisorPolicy`, or the
    pool's own default) makes the sharded sweep fault-tolerant:
    quarantined tests are dropped from ``verdicts`` and recorded as
    :class:`~repro.campaign.FailedItem` entries on ``sweep.errors``
    (also appended to ``errors`` when the caller passes a list).
    """
    from repro.campaign import runner as campaign_runner

    tests = list(tests)
    failed: List = [] if errors is None else errors
    first_failure = len(failed)
    sharded = (
        pool is not None or campaign_runner.worker_count(processes) > 1
    ) and isinstance(model, str)
    if sharded and len(tests) > 1:
        from repro.campaign.jobs import VerdictJob, verdict_chunk
        from repro.herd.simulator import resolve_model

        verdicts = campaign_runner.run_sharded(
            verdict_chunk,
            [VerdictJob(test, model, engine) for test in tests],
            processes=processes,
            chunk_size=chunk_size,
            pool=pool,
            policy=policy,
            errors=failed,
        )
        # Canonical model name, exactly as the serial path reports it
        # (model names are matched case-insensitively).
        model_name = getattr(resolve_model(model), "name", str(model))
        return FamilySweep(
            model_name=model_name,
            verdicts=tuple(verdicts),
            errors=tuple(failed[first_failure:]),
        )

    from repro.herd.simulator import Simulator

    simulator = Simulator(model, engine=engine)
    verdicts = []
    for test in tests:
        context = context_cache.get(test) if context_cache is not None else None
        verdicts.append((test.name, simulator.verdict(test, context=context)))
    return FamilySweep(model_name=simulator.model_name, verdicts=tuple(verdicts))


def coherence_stress_family(
    arch: str = "power", threads: int = 2, writes_per_location: int = 6
) -> List[LitmusTest]:
    """Tests whose rf×co candidate grid explodes factorially.

    Each thread ``t`` writes ``1..m`` to its own location ``xt`` (a
    same-thread write burst: po-loc forces the coherence order, but the
    *grid* still holds all ``m!`` permutations per location) and then
    observes the next thread's location; the ``exists`` clause asks for
    the co-final value everywhere.  The grid is ``(m!)^threads`` per
    path combination with exactly one uniproc-consistent execution — the
    shape where the pruning engine's per-location order enumeration
    pays maximally and the optimal engine's constructive walk pays
    nothing.  Returned as a one-test family for sweep drivers.
    """
    from repro.litmus.ast import TestBuilder

    builder = TestBuilder(
        f"coh-stress-{threads}x{writes_per_location}",
        arch=arch,
        doc="per-thread write bursts: (m!)^T candidate grid, one survivor",
    )
    observers = []
    for thread in range(threads):
        thread_builder = builder.thread()
        for value in range(1, writes_per_location + 1):
            thread_builder.store(f"x{thread}", value)
        observers.append(thread_builder.load(f"x{(thread + 1) % threads}"))
    builder.exists(
        {
            (thread, register): writes_per_location
            for thread, register in enumerate(observers)
        }
    )
    return [builder.build()]


def shared_gap_family(arch: str = "power") -> List[LitmusTest]:
    """Hand-built multi-cycle tests whose critical cycles share a gap.

    These are the shapes where the greedy cover provably overpays: the
    reader thread carries overlapping delay pairs whose spans cross one
    common insertion gap, and the cheapest cover places a single strong
    fence there — but greedy, maximizing pairs-per-cost one round at a
    time, first grabs a cheap mechanism that leaves the expensive pair
    to be fenced separately.  The exact ILP strategy finds the shared
    fence (see ``tests/test_fence_ilp.py`` for the cost accounting).
    """
    from repro.litmus.ast import TestBuilder

    builder = TestBuilder(
        "sharedgap",
        arch=arch,
        doc="overlapping critical cycles share one fence gap",
    )
    t0 = builder.thread()
    r1 = t0.load("x")
    t0.store("y", 1)
    r2 = t0.load("z")
    t1 = builder.thread()
    t1.store("z", 1)
    t1.store("x", 1)
    t2 = builder.thread()
    t2.store("z", 2)
    t2.store("y", 2)
    builder.exists({(0, r1): 1, (0, r2): 0})
    return [builder.build()]


@dataclass
class CostComparison(JsonReportMixin):
    """Greedy-vs-ILP placement costs over one family (per strategy)."""

    model_name: str
    #: per test, in family order: ``(test name, greedy cost, ilp cost)``.
    rows: Tuple[Tuple[str, float, float], ...]
    greedy_seconds: float = 0.0
    ilp_seconds: float = 0.0

    @property
    def num_tests(self) -> int:
        return len(self.rows)

    @property
    def greedy_total(self) -> float:
        return sum(row[1] for row in self.rows)

    @property
    def ilp_total(self) -> float:
        return sum(row[2] for row in self.rows)

    @property
    def gap(self) -> float:
        """Total cost the greedy cover overpays versus the optimum."""
        return self.greedy_total - self.ilp_total

    @property
    def num_strictly_cheaper(self) -> int:
        return sum(1 for _, greedy, ilp in self.rows if ilp < greedy)

    def describe(self) -> str:
        return (
            f"{self.num_tests} tests under {self.model_name}: greedy cost "
            f"{self.greedy_total:g}, ilp cost {self.ilp_total:g} "
            f"(gap {self.gap:g}, ilp strictly cheaper on "
            f"{self.num_strictly_cheaper})"
        )

    def to_dict(self) -> dict:
        return {
            "type": "cost-comparison",
            "model": self.model_name,
            "num_tests": self.num_tests,
            "greedy_total": self.greedy_total,
            "ilp_total": self.ilp_total,
            "gap": self.gap,
            "num_strictly_cheaper": self.num_strictly_cheaper,
            "greedy_seconds": self.greedy_seconds,
            "ilp_seconds": self.ilp_seconds,
            "rows": [[name, greedy, ilp] for name, greedy, ilp in self.rows],
        }


def compare_placement_costs(
    tests: Sequence[LitmusTest],
    model,
    processes=None,
    chunk_size: int = 8,
    pool=None,
) -> CostComparison:
    """Repair a family under both placement strategies and tally costs.

    Runs :func:`repro.fences.campaign.repair_family` twice — greedy,
    then ILP — with separate memo caches, and pairs up the validated
    per-test costs.  Sharding semantics are exactly those of
    ``repair_family``; both passes use the same settings so the timings
    are comparable.
    """
    import time

    from repro.fences.campaign import repair_family

    tests = list(tests)
    results = {}
    timings = {}
    for strategy in ("greedy", "ilp"):
        start = time.perf_counter()
        results[strategy] = repair_family(
            tests,
            model,
            processes=processes,
            chunk_size=chunk_size,
            pool=pool,
            strategy=strategy,
        )
        timings[strategy] = time.perf_counter() - start
    rows = tuple(
        (greedy.test_name, greedy.cost, ilp.cost)
        for greedy, ilp in zip(results["greedy"].reports, results["ilp"].reports)
    )
    return CostComparison(
        model_name=results["greedy"].model_name,
        rows=rows,
        greedy_seconds=timings["greedy"],
        ilp_seconds=timings["ilp"],
    )


def _generate(
    cycles: Iterable[Cycle], arch: str, limit: Optional[int]
) -> List[LitmusTest]:
    tests: List[LitmusTest] = []
    seen: set = set()
    for cycle in cycles:
        test = generate_test(cycle, arch=arch)
        if test.name in seen:
            # Same name means same shape; keep the first occurrence only.
            continue
        seen.add(test.name)
        tests.append(test)
        if limit is not None and len(tests) >= limit:
            break
    return tests
