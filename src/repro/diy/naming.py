"""The litmus test naming convention (Sec. 4.1 and Tab. III).

A name is ``<base>+<annotations>``:

* the *base* is the classic name of the communication skeleton when
  there is one (``mp``, ``sb``, ``lb``, ``wrc``, ``rwc``, ``isa2``,
  ``2+2w``, ``w+rw+2w``, ``r``, ``s``, ``w+rwc``, ``iriw``), and the
  systematic name otherwise (the per-thread access directions, e.g.
  ``ww+rr``);
* the *annotations* describe, thread per thread, the mechanism keeping
  each thread's accesses in order: a fence name, a dependency name
  (``addr``, ``data``, ``ctrl``, ``ctrlisync``, ``ctrlisb``), ``po`` for
  nothing, or a hyphenated chain when a thread has several program-order
  edges (e.g. ``fri-rfi-ctrlisb``).  When every thread uses the same
  single mechanism the annotation is pluralised (``sb+syncs``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.diy.cycles import Cycle, Edge

#: classic base names keyed by the tuple of per-thread direction strings.
CLASSIC_BASES: Dict[Tuple[str, ...], str] = {
    ("WW", "RR"): "mp",
    ("WR", "WR"): "sb",
    ("RW", "RW"): "lb",
    ("WW", "WW"): "2+2w",
    ("WW", "WR"): "r",
    ("WW", "RW"): "s",
    ("W", "RW", "RR"): "wrc",
    ("WW", "RW", "RR"): "isa2",
    ("W", "RR", "WR"): "rwc",
    ("WW", "RR", "WR"): "w+rwc",
    ("W", "RW", "WW"): "w+rw+2w",
    ("W", "RR", "W", "RR"): "iriw",
}


def _per_thread_structure(cycle: Cycle) -> Tuple[List[str], List[List[Edge]]]:
    """Per-thread access directions and per-thread intra-thread edges."""
    directions = cycle.directions()
    threads = cycle.thread_of_events()
    num_threads = cycle.num_threads()

    dirs_per_thread: List[str] = ["" for _ in range(num_threads)]
    edges_per_thread: List[List[Edge]] = [[] for _ in range(num_threads)]
    for index, edge in enumerate(cycle.edges):
        thread = threads[index]
        dirs_per_thread[thread] += directions[index]
        if not edge.changes_thread:
            edges_per_thread[thread].append(edge)
    return dirs_per_thread, edges_per_thread


def _edge_annotation(edge: Edge) -> str:
    if edge.kind == "Po":
        return "po"
    if edge.kind == "Fenced":
        return edge.fence or "fence"
    if edge.kind == "Dp":
        return edge.dep or "dp"
    if edge.kind == "Rf":
        return "rfi"
    if edge.kind == "Fr":
        return "fri"
    return "wsi"


def cycle_name(cycle: Cycle) -> str:
    """The conventional name of the cycle's litmus test."""
    dirs_per_thread, edges_per_thread = _per_thread_structure(cycle)

    base = CLASSIC_BASES.get(tuple(dirs_per_thread))
    if base is None:
        base = "+".join(d.lower() for d in dirs_per_thread)

    annotations: List[str] = []
    for edges in edges_per_thread:
        if not edges:
            continue
        annotations.append("-".join(_edge_annotation(edge) for edge in edges))

    interesting = [a for a in annotations if a != "po"]
    if not interesting:
        return base
    if len(set(annotations)) == 1 and len(annotations) > 1 and "-" not in annotations[0]:
        return f"{base}+{annotations[0]}s"
    return base + "+" + "+".join(annotations)


def systematic_name(cycle: Cycle) -> str:
    """The systematic name (per-thread directions) regardless of classic names."""
    dirs_per_thread, _ = _per_thread_structure(cycle)
    return "+".join(d.lower() for d in dirs_per_thread)
