"""Generating a litmus test from a cycle of relaxations.

Given a well-formed :class:`~repro.diy.cycles.Cycle`, :func:`generate_test`
produces a :class:`~repro.litmus.ast.LitmusTest` whose final condition is
reachable exactly when the cycle can be executed:

1. events are placed on threads and locations following the cycle;
2. the writes to each location receive the values ``1, 2, ...`` in the
   coherence order the cycle requires; reads receive the value of their
   read-from source (or 0 when they read from the initial state);
3. each thread's program is emitted with the fences and dependency
   idioms requested by the program-order edges (xor-based false
   dependencies, compare/branch control dependencies, ...);
4. the final condition pins every read's value and, for locations with
   more than one write, the final (coherence-maximal) value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.diy.cycles import Cycle, Edge
from repro.diy.naming import cycle_name
from repro.litmus.ast import LitmusTest, TestBuilder, ThreadBuilder
from repro.util.digraph import topological_sort

#: Location names handed out to the cycle's location classes.
LOCATION_NAMES = ("x", "y", "z", "w", "v", "u", "t", "s")

#: Fence mnemonics whose Fenced edges are understood per architecture.
ARCH_OF_FENCE = {
    "sync": "power",
    "lwsync": "power",
    "eieio": "power",
    "isync": "power",
    "dmb": "arm",
    "dsb": "arm",
    "dmb.st": "arm",
    "dsb.st": "arm",
    "isb": "arm",
    "mfence": "x86",
}


@dataclass
class _EventPlan:
    """Placement of one cycle event before program emission."""

    index: int
    direction: str
    thread: int
    location: str
    value: int = 0
    register: Optional[str] = None  # destination register of a read


def _location_names(classes: Sequence[int]) -> List[str]:
    names: List[str] = []
    for cls in classes:
        if cls >= len(LOCATION_NAMES):
            names.append(f"loc{cls}")
        else:
            names.append(LOCATION_NAMES[cls])
    return names


def _assign_values(cycle: Cycle, plans: List[_EventPlan]) -> None:
    """Assign write values (coherence order) and read values in place."""
    n = len(plans)
    edges = list(cycle.edges)

    # Coherence constraints between writes of the same location.
    constraints: List[Tuple[int, int]] = []
    for index, edge in enumerate(edges):
        target = (index + 1) % n
        if edge.kind == "Co":
            constraints.append((index, target))
        elif edge.kind == "Fr":
            # The read at `index` reads either the initial write (no
            # constraint) or the write its incoming Rf edge comes from,
            # which must then be co-before the Fr target.
            incoming = edges[(index - 1) % n]
            if incoming.kind == "Rf":
                constraints.append(((index - 1) % n, target))

    by_location: Dict[str, List[int]] = {}
    for plan in plans:
        if plan.direction == "W":
            by_location.setdefault(plan.location, []).append(plan.index)

    for location, writes in by_location.items():
        local = [(src, dst) for src, dst in constraints if src in writes and dst in writes]
        order = topological_sort(local, nodes=writes)
        # Keep the order of appearance for unconstrained writes (topological
        # sort already favours a deterministic order).
        for value, event_index in enumerate(order, start=1):
            plans[event_index].value = value

    # Read values.
    for index, plan in enumerate(plans):
        if plan.direction != "R":
            continue
        incoming = edges[(index - 1) % n]
        if incoming.kind == "Rf":
            plan.value = plans[(index - 1) % n].value
        else:
            plan.value = 0  # reads from the initial state


def _infer_arch(cycle: Cycle, default: str = "power") -> str:
    for edge in cycle.edges:
        if edge.fence is not None:
            return ARCH_OF_FENCE.get(edge.fence, default)
        if edge.dep == "ctrlisb":
            return "arm"
        if edge.dep == "ctrlisync":
            return "power"
    return default


def _emit_access(
    thread: ThreadBuilder,
    plan: _EventPlan,
    incoming: Optional[Edge],
    previous_register: Optional[str],
) -> None:
    """Emit the instructions of one access, honouring the incoming edge."""
    dep_kind = incoming.dep if incoming is not None and incoming.kind == "Dp" else None
    fence = incoming.fence if incoming is not None and incoming.kind == "Fenced" else None
    cfence = {"ctrlisync": "isync", "ctrlisb": "isb"}.get(dep_kind or "", None)

    if fence is not None:
        thread.fence(fence)

    if plan.direction == "R":
        if dep_kind == "addr":
            plan.register = thread.load_addr_dep(plan.location, previous_register)
        elif dep_kind in ("ctrl", "ctrlisync", "ctrlisb"):
            plan.register = thread.load_ctrl_dep(
                plan.location, previous_register, cfence=cfence
            )
        else:
            plan.register = thread.load(plan.location)
        return

    if dep_kind == "addr":
        thread.store_addr_dep(plan.location, plan.value, previous_register)
    elif dep_kind == "data":
        thread.store_data_dep(plan.location, plan.value, previous_register)
    elif dep_kind in ("ctrl", "ctrlisync", "ctrlisb"):
        thread.store_ctrl_dep(plan.location, plan.value, previous_register, cfence=cfence)
    else:
        thread.store(plan.location, plan.value)


def generate_test(
    cycle_or_edges: Union[Cycle, Sequence[Edge]],
    name: Optional[str] = None,
    arch: Optional[str] = None,
) -> LitmusTest:
    """Generate the litmus test of a cycle of relaxations."""
    cycle = (
        cycle_or_edges
        if isinstance(cycle_or_edges, Cycle)
        else Cycle.of(list(cycle_or_edges))
    )

    directions = cycle.directions()
    threads = cycle.thread_of_events()
    locations = _location_names(cycle.location_classes())

    plans = [
        _EventPlan(index=i, direction=directions[i], thread=threads[i], location=locations[i])
        for i in range(len(cycle))
    ]
    _assign_values(cycle, plans)

    test_arch = arch if arch is not None else _infer_arch(cycle)
    test_name = name if name is not None else cycle_name(cycle)
    builder = TestBuilder(test_name, arch=test_arch, doc=cycle.label())

    thread_builders: Dict[int, ThreadBuilder] = {}
    for thread_index in range(cycle.num_threads()):
        thread_builders[thread_index] = builder.thread()

    edges = list(cycle.edges)
    previous_register_per_thread: Dict[int, Optional[str]] = {}

    for index, plan in enumerate(plans):
        incoming = edges[(index - 1) % len(plans)]
        same_thread = plans[(index - 1) % len(plans)].thread == plan.thread and index > 0
        incoming_for_emit = incoming if same_thread else None
        thread = thread_builders[plan.thread]
        _emit_access(
            thread,
            plan,
            incoming_for_emit,
            previous_register_per_thread.get(plan.thread),
        )
        if plan.direction == "R":
            previous_register_per_thread[plan.thread] = plan.register

    # Final condition: pin every read, and the final value of multi-write
    # locations (which pins the intended coherence order).
    atoms: Dict[Union[Tuple[int, str], str], int] = {}
    for plan in plans:
        if plan.direction == "R" and plan.register is not None:
            atoms[(plan.thread, plan.register)] = plan.value
    writes_per_location: Dict[str, List[_EventPlan]] = {}
    for plan in plans:
        if plan.direction == "W":
            writes_per_location.setdefault(plan.location, []).append(plan)
    for location, writes in writes_per_location.items():
        if len(writes) > 1:
            atoms[location] = max(write.value for write in writes)
    builder.exists(atoms)

    return builder.build()
