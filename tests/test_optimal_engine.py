"""Differential suite: the optimal exploration engine vs pruning vs naive.

The optimal engine (:mod:`repro.herd.optimal`) must be observationally
identical to both existing engines while *constructing* each consistent
execution exactly once:

* its leaves are exactly the pruning engine's surviving leaves — same
  events, same rf, same co, same outcomes — over the full registry and
  diy families, under both SC PER LOCATION variants;
* executions-explored == surviving-leaf count (the optimality claim:
  the walk never builds an execution it then discards);
* simulator summaries (counts, outcome sets, verdicts) agree across
  ``engine="optimal"``, ``"pruning"`` and ``"naive"`` for every model;
* the ``until="target"`` fast path, the campaign context cache, the
  session verbs and sharded sweeps all serve ``engine="optimal"``
  unchanged;
* under telemetry, the ``engine.optimal.*`` counters are published and
  internally consistent (revisits/dead ends bounded by extension steps,
  explored equal to the plan totals).
"""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.campaign.context import ContextCache, SimulationContext
from repro.diy.families import (
    coherence_stress_family,
    extended_family,
    sweep_family,
    two_thread_family,
)
from repro.herd import engine as pruning_engine
from repro.herd import optimal as optimal_engine
from repro.herd.simulator import ENGINES, Simulator
from repro.litmus.registry import entries, get_test

MODELS = ("sc", "tso", "power", "arm")

#: Small sample for the (expensive) three-way naive comparison.
SUMMARY_SAMPLE = (
    "mp", "mp+lwsync+addr", "sb", "sb+syncs", "lb", "lb+addrs", "r", "s",
    "2+2w", "wrc", "wrc+addrs", "rwc", "iriw", "iriw+syncs", "isa2",
    "coRR", "coWW", "coRW1", "coRW2", "w+rw+2w",
)


def _registry_tests():
    return [get_test(entry.name) for entry in entries()]


def _sample_tests():
    known = {entry.name for entry in entries()}
    return [get_test(name) for name in SUMMARY_SAMPLE if name in known]


def _family_tests():
    return (
        two_thread_family("power", limit=8)
        + extended_family("power", limit=4)
        + coherence_stress_family("power", threads=2, writes_per_location=3)
        + coherence_stress_family("power", threads=3, writes_per_location=2)
    )


def _leaf_key(leaf):
    candidate = leaf.candidate()
    return (
        candidate.execution.events,
        candidate.execution.rf.pairs,
        candidate.execution.co.pairs,
        leaf.outcome,
    )


@pytest.fixture(autouse=True)
def _no_leaked_registry():
    yield
    telemetry.disable()


# -- survivor-set identity ----------------------------------------------------------


@pytest.mark.parametrize("variant", ("standard", "llh"))
@pytest.mark.parametrize(
    "test", _registry_tests() + _family_tests(), ids=lambda t: t.name
)
def test_optimal_explores_exactly_the_pruning_survivors(test, variant):
    pruning_keys = {
        _leaf_key(leaf)
        for plan in pruning_engine.plans(test, variant)
        for leaf in plan.leaves()
    }
    optimal_keys = set()
    for plan in optimal_engine.plans(test, variant):
        walked = 0
        for leaf in plan.leaves():
            walked += 1
            optimal_keys.add(_leaf_key(leaf))
        # Optimality: every constructed execution is a survivor, and the
        # grid complement is accounted for combinatorially.
        assert plan.explored == plan.survivors_count == walked
        assert walked + plan.pruned == plan.total
    assert optimal_keys == pruning_keys


# -- summary identity across all three engines --------------------------------------


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize(
    "test", _sample_tests() + _family_tests()[:6], ids=lambda t: t.name
)
def test_summaries_agree_across_all_three_engines(test, model):
    optimal = Simulator(model, engine="optimal").run(test)
    pruning = Simulator(model, engine="pruning").run(test)
    naive = Simulator(model, engine="naive").run(test)
    for other in (pruning, naive):
        assert optimal.num_candidates == other.num_candidates
        assert optimal.num_allowed == other.num_allowed
        assert optimal.allowed_outcomes == other.allowed_outcomes
        assert optimal.all_outcomes == other.all_outcomes
        assert optimal.verdict == other.verdict
        assert optimal.condition_holds == other.condition_holds


@pytest.mark.parametrize("model", MODELS)
def test_full_registry_verdicts_agree_with_pruning(model):
    optimal = Simulator(model, engine="optimal")
    pruning = Simulator(model, engine="pruning")
    for test in _registry_tests():
        assert optimal.verdict(test) == pruning.verdict(test), test.name


# -- fast path, context cache, session and campaign integration ---------------------


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("test", _sample_tests()[:8], ids=lambda t: t.name)
def test_verdict_fast_path_and_context_agree(test, model):
    full = Simulator(model, engine="optimal").run(test).verdict
    assert Simulator(model, engine="optimal").verdict(test) == full
    context = SimulationContext(test)
    fast = Simulator(model, engine="optimal").run(
        test, until="target", context=context
    )
    assert fast.verdict == full
    # The cached plans are reused across models and queries.
    again = Simulator(model, engine="optimal").run(test, context=context)
    assert again.verdict == full


def test_context_caches_optimal_and_pruning_plans_separately():
    test = get_test("sb")
    context = SimulationContext(test)
    optimal_plans = list(context.plans("standard", engine="optimal"))
    pruning_plans = list(context.plans("standard", engine="pruning"))
    assert all(isinstance(p, optimal_engine.OptimalPlan) for p in optimal_plans)
    assert all(isinstance(p, pruning_engine.ComboPlan) for p in pruning_plans)
    # Same keys hit the same plan objects on re-query.
    assert list(context.plans("standard", engine="optimal")) == optimal_plans


def test_engine_registry_exposes_optimal():
    assert "optimal" in ENGINES
    with pytest.raises(ValueError):
        Simulator("sc", engine="optimally")


def test_optimal_falls_back_to_naive_for_oracle_queries():
    test = get_test("sb")
    result = Simulator("sc", engine="optimal").run(test, keep_candidates=True)
    reference = Simulator("sc", engine="naive").run(test, keep_candidates=True)
    assert len(result.allowed_candidates) == len(reference.allowed_candidates)
    assert result.num_candidates == reference.num_candidates


def test_session_and_sharded_sweep_serve_the_optimal_engine():
    from repro.session import Session

    tests = [get_test(name) for name in ("sb", "mp", "lb", "wrc")]
    with Session(model="power", engine="optimal") as session:
        verdicts = dict(session.sweep(tests).verdicts)
    baseline = {
        test.name: Simulator("power", engine="pruning").verdict(test)
        for test in tests
    }
    assert verdicts == baseline

    sharded = sweep_family(tests, "power", processes=2, engine="optimal")
    assert dict(sharded.verdicts) == baseline

    cache = ContextCache()
    serial = sweep_family(tests, "power", engine="optimal", context_cache=cache)
    assert dict(serial.verdicts) == baseline
    assert cache.misses == len(tests)


# -- optimality and telemetry counters ----------------------------------------------


def test_zero_waste_on_the_exploding_grid():
    """The benchmark claim in miniature: the grid is (m!)^threads but
    the optimal walk takes O(survivors) extension steps."""
    [test] = coherence_stress_family("power", threads=2, writes_per_location=5)
    grid = explored = steps = 0
    for plan in optimal_engine.plans(test, "standard"):
        survivors = sum(1 for _ in plan.leaves())
        assert plan.explored == survivors
        grid += plan.total
        explored += plan.explored
        steps += plan.extension_steps
    assert grid == sum(p.total for p in pruning_engine.plans(test, "standard"))
    assert explored < grid / 1000, "the grid must dwarf the explored set"
    assert steps < grid / 100, "extension steps must not scale with the grid"


def test_optimal_counters_under_telemetry():
    metrics = telemetry.enable()
    test = get_test("iriw")
    result = Simulator("power", engine="optimal").run(test)
    snapshot = metrics.snapshot()
    counters = snapshot.counters
    assert counters["herd.runs.optimal"] == 1
    assert counters["engine.optimal.walks"] >= 1
    explored = counters["engine.optimal.explored"]
    total_survivors = 0
    for plan in optimal_engine.plans(test, "standard"):
        total_survivors += sum(1 for _ in plan.leaves())
    assert explored == total_survivors
    assert counters["engine.optimal.extension_steps"] >= explored
    # Every revisit accompanies one read-placement extension step.
    revisits = counters.get("engine.optimal.revisits", 0)
    assert 0 <= revisits <= counters["engine.optimal.extension_steps"]
    assert counters.get("engine.optimal.dead_ends", 0) >= 0
    # The span records the engine that actually ran.
    spans = [span for span in snapshot.spans if span["name"] == "herd.run"]
    assert spans and spans[-1]["tags"]["engine"] == "optimal"
    assert result.verdict in ("Allow", "Forbid")


def test_revisits_are_counted_when_reads_defer_to_newer_writes():
    """A read with two same-value sources must produce exactly one
    revisit: the consistent execution where it reads the *second* write
    assigns its rf after the read was already placeable under the
    first — GenMC's revisit, surfaced by the counter."""
    from repro.litmus.ast import TestBuilder

    builder = TestBuilder("revisit-probe", arch="power")
    t0 = builder.thread()
    t0.store("x", 1)
    t0.store("x", 1)
    t1 = builder.thread()
    register = t1.load("x")
    builder.exists({(1, register): 1})
    test = builder.build()

    revisits = 0
    survivors = 0
    for plan in optimal_engine.plans(test, "standard"):
        survivors += sum(1 for _ in plan.leaves())
        revisits += plan.revisits
    # Three consistent executions (read init, read first write, read
    # second write); only the last defers past an available source.
    assert survivors == 3
    assert revisits == 1


# -- the auto-engine heuristic ------------------------------------------------------


def test_auto_routes_coherence_bursts_to_optimal():
    """``engine="auto"`` keeps the pruning engine on tiny grids and
    upgrades to optimal once a same-location write burst crosses the
    committed benchmark crossover — observable per-run through the
    ``herd.runs.*`` counters."""
    from repro.herd.simulator import AUTO_OPTIMAL_WRITE_BURST, write_burst

    small = get_test("sb")
    [stress] = coherence_stress_family("power", threads=2, writes_per_location=5)
    assert write_burst(small) < AUTO_OPTIMAL_WRITE_BURST
    assert write_burst(stress) >= AUTO_OPTIMAL_WRITE_BURST

    metrics = telemetry.enable()
    simulator = Simulator("power", engine="auto")
    verdict_small = simulator.verdict(small)
    verdict_stress = simulator.verdict(stress)
    counters = metrics.snapshot().counters
    telemetry.disable()
    assert counters["herd.runs.pruning"] == 1
    assert counters["herd.runs.optimal"] == 1

    # Parity: the routing choice never changes the answer.
    for engine in ("pruning", "optimal"):
        assert Simulator("power", engine=engine).verdict(small) == verdict_small
        assert Simulator("power", engine=engine).verdict(stress) == verdict_stress
    assert Simulator("power", engine="naive").verdict(small) == verdict_small


def test_write_burst_is_conservative_on_unresolvable_addresses():
    from repro.litmus.ast import LitmusTest
    from repro.litmus.instructions import MoveImmediate, Store
    from repro.herd.simulator import write_burst

    computed = LitmusTest(
        name="computed-address",
        arch="power",
        threads=[
            [
                MoveImmediate(dst="r1", value=1),
                Store(src="r1", addr_reg="r9", index_reg=None),
                Store(src="r1", addr_reg="r9", index_reg=None),
                Store(src="r1", addr_reg="r9", index_reg=None),
                Store(src="r1", addr_reg="r9", index_reg=None),
            ]
        ],
        init_registers={},
    )
    assert write_burst(computed) == 0
