"""Tests for the axioms, the architectures and the model checker."""

import pytest

from repro.core import axioms
from repro.core.architectures import (
    ARCHITECTURES,
    arm_architecture,
    arm_llh_architecture,
    cpp_ra_architecture,
    get_architecture,
    power_architecture,
    sc_architecture,
    tso_architecture,
)
from repro.core.events import Event, MemoryRead, MemoryWrite
from repro.core.execution import Execution
from repro.core.model import Architecture, Model
from repro.core.reference import is_sc_reference, is_tso_reference
from repro.core.relation import Relation
from repro.herd import candidate_executions, simulate
from repro.litmus.registry import get_test


def _sb_execution():
    """The store-buffering execution where both reads see the initial state."""
    init_x, init_y = Execution.initial_writes(["x", "y"])
    a = Event(thread=0, poi=0, eid="a", action=MemoryWrite("x", 1))
    b = Event(thread=0, poi=1, eid="b", action=MemoryRead("y", 0))
    c = Event(thread=1, poi=0, eid="c", action=MemoryWrite("y", 1))
    d = Event(thread=1, poi=1, eid="d", action=MemoryRead("x", 0))
    return Execution(
        events=frozenset({init_x, init_y, a, b, c, d}),
        po=Relation([(a, b), (c, d)]),
        rf=Relation([(init_y, b), (init_x, d)]),
        co=Relation([(init_x, a), (init_y, c)]),
    )


def _coww_execution():
    init_x = Execution.initial_writes(["x"])[0]
    a = Event(thread=0, poi=0, eid="a", action=MemoryWrite("x", 1))
    b = Event(thread=0, poi=1, eid="b", action=MemoryWrite("x", 2))
    return Execution(
        events=frozenset({init_x, a, b}),
        po=Relation([(a, b)]),
        rf=Relation(),
        co=Relation([(init_x, b), (b, a), (init_x, a)]),  # co contradicts po
    )


def test_sc_forbids_store_buffering_but_tso_allows_it():
    execution = _sb_execution()
    assert not Model(sc_architecture()).allows(execution)
    assert Model(tso_architecture()).allows(execution)
    assert Model(power_architecture()).allows(execution)


def test_sc_per_location_axiom_flags_coww():
    violation = axioms.check_sc_per_location(_coww_execution())
    assert violation is not None
    assert violation.axiom == axioms.AXIOM_SC_PER_LOCATION
    result = Model(power_architecture()).check(_coww_execution())
    assert not result.allowed
    assert axioms.AXIOM_SC_PER_LOCATION in result.violated_axioms()


def test_llh_variant_of_sc_per_location_keeps_non_rr_checks():
    execution = _coww_execution()
    assert axioms.check_sc_per_location(execution, variant="llh") is not None
    with pytest.raises(ValueError):
        axioms.check_sc_per_location(execution, variant="bogus")


def test_propagation_variant_validation():
    execution = _sb_execution()
    with pytest.raises(ValueError):
        axioms.check_propagation(execution, Relation(), variant="bogus")


def test_architecture_registry_contains_all_names():
    for name in (
        "sc",
        "tso",
        "cpp-ra",
        "power",
        "power-arm",
        "arm",
        "arm-llh",
        "pldi2011",
        "power-static-ppo",
        "arm-static-ppo",
    ):
        assert name in ARCHITECTURES
        assert get_architecture(name).name == name
    with pytest.raises(KeyError):
        get_architecture("itanium")


def test_architecture_relations_report_all_keys():
    execution = _sb_execution()
    relations = power_architecture().relations(execution)
    assert set(relations) == {"ppo", "fences", "prop", "hb", "ffence"}


def test_check_collects_all_violations_when_not_stopping_early():
    test = get_test("lb+addrs")
    model = Model(sc_architecture())
    # The lb outcome violates several axioms under SC; make sure they are all
    # reported when stop_at_first is False.
    for candidate in candidate_executions(test):
        outcome = dict(candidate.outcome(test))
        if all(value == 1 for value in outcome.values()):
            result = model.check(candidate.execution, stop_at_first=False)
            assert not result.allowed
            assert len(result.violations) >= 1
            break
    else:
        pytest.fail("target outcome candidate not found")


def test_reference_characterisations_match_instances_on_registry_tests():
    """Lemma 4.1, checked empirically on the named tests."""
    sc_model = Model(sc_architecture())
    tso_model = Model(tso_architecture())
    for name in ("mp", "sb", "lb", "2+2w", "r", "s", "iriw", "sb+mfences", "coRR"):
        test = get_test(name)
        for candidate in candidate_executions(test):
            execution = candidate.execution
            assert sc_model.allows(execution) == is_sc_reference(execution), name
            assert tso_model.allows(execution) == is_tso_reference(execution), name


def test_cpp_ra_verdicts():
    cpp = cpp_ra_architecture()
    assert simulate(get_test("mp"), cpp).verdict == "Forbid"
    assert simulate(get_test("lb"), cpp).verdict == "Forbid"
    assert simulate(get_test("sb"), cpp).verdict == "Allow"
    assert simulate(get_test("2+2w"), cpp).verdict == "Allow"


def test_arm_llh_allows_corr_but_not_coww():
    llh = arm_llh_architecture()
    assert simulate(get_test("coRR"), llh).verdict == "Allow"
    assert simulate(get_test("coWW"), llh).verdict == "Forbid"
    assert simulate(get_test("coWR"), llh).verdict == "Forbid"


def test_model_repr_and_names():
    model = Model(arm_architecture())
    assert model.name == "arm"
    assert "arm" in repr(model)


def test_check_result_describe():
    result = Model(sc_architecture()).check(_coww_execution())
    assert "forbidden" in result.describe()
    allowed = Model(power_architecture()).check(_sb_execution())
    assert allowed.describe() == "allowed"
