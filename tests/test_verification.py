"""Tests for the bounded model-checking substrate (Sec. 8.4)."""

import pytest

from repro.litmus.registry import get_test
from repro.verification import (
    AssertStmt,
    Assign,
    BinOp,
    BoundedModelChecker,
    Const,
    FenceStmt,
    IfStmt,
    LoadStmt,
    Program,
    StoreStmt,
    Var,
    WhileStmt,
    all_examples,
    apache_example,
    postgresql_example,
    rcu_example,
    verify_litmus,
    verify_program,
)
from repro.verification.examples import dekker_example
from repro.verification.program import evaluate, expression_variables
from repro.verification.semantics import enumerate_program_paths


# -- IR basics -------------------------------------------------------------------


def test_expression_evaluation_and_variables():
    expr = BinOp("and", BinOp("==", Var("a"), Const(1)), BinOp("<", Var("b"), Const(3)))
    assert evaluate(expr, {"a": 1, "b": 2}) == 1
    assert evaluate(expr, {"a": 0, "b": 2}) == 0
    assert set(expression_variables(expr)) == {"a", "b"}
    with pytest.raises(ValueError):
        evaluate(BinOp("**", Const(1), Const(2)), {})


def test_program_constants_and_shared_variables():
    program = postgresql_example()
    assert set(program.shared_variables()) == {"flag", "latch"}
    assert 1 in program.constants() and 0 in program.constants()


# -- per-thread symbolic execution --------------------------------------------------


def test_enumerate_program_paths_forks_on_loads_and_branches():
    program = postgresql_example()
    waiter_paths = enumerate_program_paths(program, 1)
    # The waiter loads the latch (forks over the value domain); only the
    # latch==1 fork performs the second load.
    assert len(waiter_paths) >= 2
    lengths = {len(path.execution.memory_events) for path in waiter_paths}
    assert 1 in lengths and 2 in lengths


def test_control_dependencies_and_fences_are_recorded():
    program = apache_example(fenced=True)
    consumer_paths = enumerate_program_paths(program, 1)
    long_paths = [p for p in consumer_paths if len(p.execution.memory_events) == 2]
    assert long_paths
    path = long_paths[0]
    first, second = path.execution.memory_events
    assert (first, second) in set(path.execution.ctrl)
    assert (first, second) in set(path.execution.ctrl_cfence)


def test_address_dependency_flag_is_recorded():
    program = rcu_example(fenced=True)
    reader_paths = enumerate_program_paths(program, 1)
    dependent = [p for p in reader_paths if p.execution.addr]
    assert dependent, "the RCU reader must carry an address dependency"


def test_assertions_are_evaluated_per_path():
    program = Program(
        name="assert-demo",
        shared={"x": 0},
        threads=[
            (
                LoadStmt("v", "x"),
                AssertStmt(BinOp("==", Var("v"), Const(0)), message="x stays 0"),
            )
        ],
    )
    paths = enumerate_program_paths(program, 0)
    outcomes = {path.execution.load_values[0]: path.violated for path in paths}
    assert outcomes[0] is False
    assert all(violated for value, violated in outcomes.items() if value != 0)


def test_while_loop_unrolls_up_to_bound():
    program = Program(
        name="loop-demo",
        shared={"flag": 0},
        threads=[
            (
                Assign("tries", Const(0)),
                WhileStmt(
                    BinOp("<", Var("tries"), Const(3)),
                    body=(
                        LoadStmt("seen", "flag"),
                        Assign("tries", BinOp("+", Var("tries"), Const(1))),
                    ),
                    bound=2,
                ),
            )
        ],
    )
    paths = enumerate_program_paths(program, 0)
    assert max(len(path.execution.memory_events) for path in paths) == 2


# -- the checker ---------------------------------------------------------------------


def test_examples_are_safe_when_fenced_and_unsafe_otherwise():
    for fenced_program, unfenced_program in zip(all_examples(True), all_examples(False)):
        assert verify_program(fenced_program, "power").safe, fenced_program.name
        result = verify_program(unfenced_program, "power")
        assert not result.safe, unfenced_program.name
        assert result.counterexample is not None
        assert result.violated_assertion


def test_dekker_needs_full_fences_on_tso_and_power():
    assert not verify_program(dekker_example(False), "tso").safe
    assert not verify_program(dekker_example(False), "power").safe
    assert verify_program(dekker_example(True, fence="mfence"), "tso").safe
    assert verify_program(dekker_example(True, fence="sync"), "power").safe


def test_examples_are_safe_under_sc_even_unfenced():
    for program in all_examples(False):
        assert verify_program(program, "sc").safe, program.name


def test_backends_agree_on_examples():
    for program in all_examples(True) + [dekker_example(False)]:
        verdicts = {
            backend: verify_program(program, "power", backend).safe
            for backend in ("axiomatic", "multi-event", "operational")
        }
        assert len(set(verdicts.values())) == 1, (program.name, verdicts)


def test_verify_litmus_matches_herd_verdicts():
    from repro.herd import simulate

    for name in ("mp+lwsync+addr", "sb+syncs", "sb", "lb+addrs"):
        test = get_test(name)
        result = verify_litmus(test, "power", "axiomatic")
        expected_safe = simulate(test, "power").verdict == "Forbid"
        assert result.safe == expected_safe, name


def test_checker_rejects_unknown_backend_and_model():
    with pytest.raises(ValueError):
        BoundedModelChecker("power", backend="symbolic")
    with pytest.raises(TypeError):
        BoundedModelChecker(3.14)


def test_verification_result_describe():
    result = verify_program(postgresql_example(), "power")
    assert "SAFE" in result.describe()
    assert "PgSQL" in result.describe()
    result = verify_program(postgresql_example(False), "power")
    assert "UNSAFE" in result.describe()
