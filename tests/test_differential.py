"""Differential suite: pruning engine vs the naive reference oracle.

The pruning engine (:mod:`repro.herd.engine`) must be observationally
identical to the brute-force enumerator (:mod:`repro.herd.enumerate`):

* its surviving candidates are exactly the naive candidates that satisfy
  SC PER LOCATION — same events, same rf, same co, same outcomes;
* its combinatorial counting reproduces the naive candidate totals;
* the simulator summaries (counts, outcome sets, verdicts) agree
  between ``engine="pruning"`` and ``engine="naive"`` across models;
* the ``until="target"`` early-exit fast path proves the same verdicts.
"""

import pytest

from repro.core import axioms
from repro.core.architectures import get_architecture
from repro.diy.families import two_thread_family
from repro.herd import engine
from repro.herd.enumerate import candidate_executions
from repro.herd.simulator import Simulator
from repro.litmus.registry import entries, get_test

MODELS = ("sc", "tso", "power", "arm")

REGISTRY_SAMPLE = (
    "mp", "mp+lwsync+addr", "sb", "sb+syncs", "lb", "lb+addrs", "r", "s",
    "2+2w", "wrc", "wrc+addrs", "rwc", "iriw", "iriw+syncs", "isa2",
    "coRR", "coWW", "coRW1", "coRW2", "w+rw+2w", "mp+lwsync+addr-po-detour",
)


def _registry_tests():
    known = {entry.name for entry in entries()}
    return [get_test(name) for name in REGISTRY_SAMPLE if name in known]


def _family_tests():
    return two_thread_family("power", limit=10)


def _candidate_key(candidate, test):
    execution = candidate.execution
    return (
        frozenset(execution.events),
        execution.rf.pairs,
        execution.co.pairs,
        candidate.outcome(test),
    )


def _uniproc_holds(candidate, variant="standard"):
    return axioms.check_sc_per_location(candidate.execution, variant) is None


@pytest.mark.parametrize("test", _registry_tests() + _family_tests(), ids=lambda t: t.name)
def test_survivors_are_exactly_the_uniproc_consistent_candidates(test):
    naive = list(candidate_executions(test))
    naive_keys = {_candidate_key(candidate, test) for candidate in naive}
    surviving_naive = {
        _candidate_key(candidate, test)
        for candidate in naive
        if _uniproc_holds(candidate)
    }

    total = 0
    surviving_engine = set()
    outcomes_engine = set()
    for plan in engine.plans(test):
        total += plan.total
        walked = 0
        for candidate, outcome in plan.survivors():
            walked += 1
            key = _candidate_key(candidate, test)
            assert key in naive_keys, "engine invented a candidate"
            assert outcome == candidate.outcome(test)
            surviving_engine.add(key)
            outcomes_engine.add(outcome)
        # The subtree counting must account for every pruned candidate.
        assert walked + plan.pruned == plan.total

    assert total == len(naive)
    assert surviving_engine == surviving_naive
    assert outcomes_engine == {
        candidate.outcome(test)
        for candidate in naive
        if _uniproc_holds(candidate)
    }


@pytest.mark.parametrize("test", _registry_tests()[:8], ids=lambda t: t.name)
def test_llh_variant_prunes_exactly_the_llh_violations(test):
    naive = list(candidate_executions(test))
    surviving_naive = {
        _candidate_key(candidate, test)
        for candidate in naive
        if _uniproc_holds(candidate, "llh")
    }
    surviving_engine = {
        _candidate_key(candidate, test)
        for plan in engine.plans(test, variant="llh")
        for candidate, _ in plan.survivors()
    }
    assert surviving_engine == surviving_naive


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("test", _registry_tests() + _family_tests(), ids=lambda t: t.name)
def test_simulation_summaries_agree_between_engines(test, model):
    pruning = Simulator(model, engine="pruning").run(test)
    naive = Simulator(model, engine="naive").run(test)
    assert pruning.num_candidates == naive.num_candidates
    assert pruning.num_allowed == naive.num_allowed
    assert pruning.allowed_outcomes == naive.allowed_outcomes
    assert pruning.all_outcomes == naive.all_outcomes
    assert pruning.verdict == naive.verdict
    assert pruning.condition_holds == naive.condition_holds


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("test", _registry_tests(), ids=lambda t: t.name)
def test_verdict_fast_path_agrees_with_full_runs(test, model):
    full = Simulator(model, engine="naive").run(test).verdict
    assert Simulator(model).verdict(test) == full
    assert (
        Simulator(model, engine="naive").run(test, until="target").verdict == full
    )


def test_verdict_fast_path_defaults_missing_registers_to_zero():
    """A condition atom naming a thread/register the test never writes
    reads as 0 (the litmus convention) — the target-plan prefilter must
    not drop such combinations (regression: out-of-range threads were
    treated as unmatchable)."""
    from repro.litmus.ast import TestBuilder

    builder = TestBuilder("ghost-reg", arch="power")
    t0 = builder.thread()
    t0.store("x", 1)
    builder.exists({(1, "r9"): 0})  # thread 1 does not exist
    test = builder.build()
    naive = Simulator("sc", engine="naive").run(test).verdict
    assert Simulator("sc").verdict(test) == naive == "Allow"


def test_count_candidates_matches_naive_materialization():
    from repro.herd.enumerate import count_candidates

    for test in _registry_tests():
        assert count_candidates(test) == sum(
            1 for _ in candidate_executions(test)
        ), test.name
