"""The shared campaign runtime: sharding, context caching, invalidation.

Differential guarantees, in the spirit of ``tests/test_differential.py``:

* sharded campaign results equal serial results for all five drivers
  (fence repair, hardware testing, mole censuses, diy sweeps, BMC);
* context-cache hits return results identical to cold runs, across
  models and SC-PER-LOCATION variants;
* splicing a test (fence repair) never hits the original's cached
  context — structural fingerprints make stale relations unreachable.
"""

import pickle

import pytest

from repro.campaign import (
    CampaignPool,
    ContextCache,
    SimulationContext,
    chunked,
    run_sharded,
    test_fingerprint,
    worker_count,
)
from repro.diy.families import sweep_family, two_thread_family
from repro.fences.campaign import repair_family
from repro.fences.validate import repair_test
from repro.hardware import default_arm_chips, default_power_chips, run_campaign
from repro.herd.simulator import Simulator, resolve_model
from repro.litmus.registry import get_test
from repro.mole import analyse_corpus, debian_corpus
from repro.verification import verify_batch
from repro.verification.examples import all_examples

MODELS = ("power", "arm", "tso", "arm-llh")


def _family():
    return two_thread_family("power", limit=12)


# -- the sharding runner ------------------------------------------------------------


def _double_chunk(chunk, payload):
    return [item * 2 + (payload or 0) for item in chunk]


def _sum_chunk(chunk, payload):
    return [item + payload for item in chunk], sum(chunk)


def test_worker_count_resolution():
    assert worker_count(None) == 1
    assert worker_count(0) == 1
    assert worker_count(1) == 1
    assert worker_count(3) == 3
    assert worker_count("auto") >= 1
    with pytest.raises(ValueError):
        worker_count(-2)


def test_chunking_preserves_order_and_covers_everything():
    jobs = list(range(23))
    chunks = chunked(jobs, 5)
    assert [len(chunk) for chunk in chunks] == [5, 5, 5, 5, 3]
    assert [item for chunk in chunks for item in chunk] == jobs
    with pytest.raises(ValueError):
        chunked(jobs, 0)


def test_run_sharded_order_and_serial_fallback_identity():
    jobs = list(range(17))
    serial = run_sharded(_double_chunk, jobs, payload=1, processes=None, chunk_size=4)
    sharded = run_sharded(_double_chunk, jobs, payload=1, processes=2, chunk_size=4)
    assert serial == sharded == [item * 2 + 1 for item in jobs]


def test_run_sharded_merge_collects_chunk_extras_in_order():
    jobs = list(range(10))
    extras = []
    results = run_sharded(
        _sum_chunk,
        jobs,
        payload=100,
        processes=2,
        chunk_size=3,
        merge=extras.append,
    )
    assert results == [item + 100 for item in jobs]
    assert extras == [0 + 1 + 2, 3 + 4 + 5, 6 + 7 + 8, 9]


def test_campaign_pool_reuses_workers_across_batches():
    with CampaignPool(2) as pool:
        first = pool.run(_double_chunk, [1, 2, 3], payload=0, chunk_size=2)
        second = pool.run(_double_chunk, [4, 5], payload=0, chunk_size=2)
    assert first == [2, 4, 6]
    assert second == [8, 10]


# -- (a) sharded results == serial results across drivers ---------------------------


def test_sharded_fence_campaign_matches_serial():
    tests = _family()
    serial = repair_family(tests, "power")
    sharded = repair_family(tests, "power", processes=2, chunk_size=4)
    assert serial.model_name == sharded.model_name
    assert [
        (r.test_name, r.before_verdict, r.after_verdict, r.success, r.mechanisms)
        for r in serial.reports
    ] == [
        (r.test_name, r.before_verdict, r.after_verdict, r.success, r.mechanisms)
        for r in sharded.reports
    ]
    assert serial.total_cost == sharded.total_cost


def test_sharded_ilp_fence_campaign_matches_serial():
    """ILP repairs shard and cache exactly like greedy ones: the chunk
    workers carry the strategy in their payload, and sharded results
    (mechanisms, costs, memo behaviour) are byte-equal to serial."""
    from repro.diy.families import shared_gap_family

    tests = _family() + shared_gap_family()
    serial = repair_family(tests, "power", strategy="ilp")
    sharded = repair_family(
        tests, "power", strategy="ilp", processes=2, chunk_size=4
    )
    assert serial.model_name == sharded.model_name
    assert [
        (r.test_name, r.before_verdict, r.after_verdict, r.success,
         r.mechanisms, r.strategy, r.cost)
        for r in serial.reports
    ] == [
        (r.test_name, r.before_verdict, r.after_verdict, r.success,
         r.mechanisms, r.strategy, r.cost)
        for r in sharded.reports
    ]
    assert serial.total_cost == sharded.total_cost


def test_sharded_hardware_campaign_matches_serial():
    tests = _family()[:6]
    chips = default_power_chips()[:2]
    serial = run_campaign(tests, chips, "power", iterations=20_000)
    sharded = run_campaign(
        tests, chips, "power", iterations=20_000, processes=2, chunk_size=2
    )
    assert serial.results == sharded.results  # observations included, seed for seed


def test_sharded_hardware_campaign_arm_errata_match_serial():
    tests = [get_test("coRR"), get_test("mp"), get_test("sb")]
    chips = default_arm_chips()[:2]
    serial = run_campaign(tests, chips, "power-arm", iterations=50_000)
    sharded = run_campaign(
        tests, chips, "power-arm", iterations=50_000, processes=2, chunk_size=1
    )
    assert serial.results == sharded.results


def test_sharded_hardware_campaign_custom_chip_falls_back_to_serial():
    import dataclasses

    from repro.core.architectures import power_architecture
    from repro.core.model import Model
    from repro.hardware.testing import _chip_references

    chips = default_power_chips()[:2]
    assert _chip_references(chips) == ("Power6", "Power7")
    # A same-named chip with a swapped implementation model is custom:
    # workers must not silently rebuild the default in its place.
    custom = dataclasses.replace(chips[0], implementation=Model(power_architecture()))
    assert _chip_references([custom, chips[1]]) is None
    tests = _family()[:3]
    serial = run_campaign(tests, [custom, chips[1]], "power", iterations=5_000)
    sharded = run_campaign(
        tests, [custom, chips[1]], "power", iterations=5_000, processes=2, chunk_size=1
    )
    assert serial.results == sharded.results


def test_sharded_mole_census_matches_serial():
    corpus = debian_corpus()
    serial = analyse_corpus(corpus)
    sharded = analyse_corpus(corpus, processes=2, chunk_size=2)
    assert set(serial) == set(sharded)
    for package in serial:
        assert serial[package].cycles == sharded[package].cycles


def test_sharded_family_sweep_matches_serial():
    tests = _family()
    for model in ("power", "tso"):
        serial = sweep_family(tests, model)
        sharded = sweep_family(tests, model, processes=2, chunk_size=3)
        assert serial.verdicts == sharded.verdicts
        assert serial.model_name == sharded.model_name


def test_sharded_family_sweep_canonicalizes_model_name():
    tests = _family()[:4]
    serial = sweep_family(tests, "Power")
    sharded = sweep_family(tests, "Power", processes=2, chunk_size=2)
    assert serial.model_name == sharded.model_name == "power"
    assert serial.verdicts == sharded.verdicts


def test_run_sharded_single_shard_stays_in_process():
    # One shard has no parallelism to win; the runner must run it in
    # this very process (observable through side effects on a local).
    seen = []
    jobs = list(range(5))

    def record_chunk(chunk, payload):
        seen.extend(chunk)
        return [item + payload for item in chunk]

    results = run_sharded(record_chunk, jobs, payload=1, processes=4, chunk_size=8)
    assert results == [item + 1 for item in jobs]
    assert seen == jobs  # ran here, not in a forked worker


def test_sharded_bmc_batch_matches_serial():
    items = list(all_examples())[:3] + [get_test("mp"), get_test("sb+syncs")]
    serial = verify_batch(items, "power")
    sharded = verify_batch(items, "power", processes=2, chunk_size=2)

    def key(result):
        return (
            result.name,
            result.model_name,
            result.backend,
            result.safe,
            result.violated_assertion,
            result.candidates_explored,
            result.allowed_executions,
        )

    assert [key(r) for r in serial] == [key(r) for r in sharded]


# -- (b) context-cache hits == cold runs --------------------------------------------


def test_context_cache_hits_reproduce_cold_results():
    tests = _family()[:8]
    cache = ContextCache()
    for model in MODELS:
        simulator = Simulator(model)
        for test in tests:
            cold = simulator.run(test)
            warm = simulator.run(test, context=cache.get(test))
            again = simulator.run(test, context=cache.get(test))
            for cached in (warm, again):
                assert cached.allowed_outcomes == cold.allowed_outcomes
                assert cached.all_outcomes == cold.all_outcomes
                assert cached.num_candidates == cold.num_candidates
                assert cached.num_allowed == cold.num_allowed
                assert cached.verdict == cold.verdict
                assert cached.condition_holds == cold.condition_holds
    assert cache.hits > 0
    # One context per distinct test serves every model and variant.
    assert cache.misses == len(tests)


def test_context_cache_verdict_fast_path_matches_cold():
    tests = _family()
    cache = ContextCache()
    for model in ("power", "arm-llh"):
        simulator = Simulator(model)
        for test in tests:
            assert simulator.verdict(test, context=cache.get(test)) == (
                simulator.verdict(test)
            )


def test_context_cache_is_keyed_structurally_not_by_name():
    mp = get_test("mp")
    cache = ContextCache()
    clone = pickle.loads(pickle.dumps(mp))
    clone.name = "renamed-mp"
    assert test_fingerprint(mp) == test_fingerprint(clone)
    assert cache.get(mp) is cache.get(clone)


def test_context_cache_capacity_evicts_least_recently_used():
    tests = _family()[:6]
    cache = ContextCache(capacity=2)
    for test in tests:
        cache.get(test)
    assert len(cache) == 2
    assert cache.evictions == len(tests) - 2


# -- (c) cache invalidation on splice ------------------------------------------------


def test_spliced_test_never_hits_the_original_context():
    mp = get_test("mp")
    report = repair_test(mp, "power")
    assert report.needed_repair and report.success
    repaired = report.repaired

    cache = ContextCache()
    original_context = cache.get(mp)
    spliced_context = cache.get(repaired)
    # The splice changed the instruction stream: different fingerprint,
    # different context, no stale relations.
    assert test_fingerprint(mp) != test_fingerprint(repaired)
    assert spliced_context is not original_context

    simulator = Simulator("power")
    assert simulator.verdict(mp, context=cache.get(mp)) == "Allow"
    assert simulator.verdict(repaired, context=cache.get(repaired)) == "Forbid"


def test_repair_with_context_cache_matches_plain_repair():
    cache = ContextCache()
    for name in ("mp", "sb", "lb", "wrc"):
        plain = repair_test(get_test(name), "power")
        cached = repair_test(get_test(name), "power", context_cache=cache)
        assert plain.before_verdict == cached.before_verdict
        assert plain.after_verdict == cached.after_verdict
        assert plain.success == cached.success
        assert plain.mechanisms == cached.mechanisms
        assert plain.validations == cached.validations


def test_explicit_invalidation_drops_the_entry():
    mp = get_test("mp")
    cache = ContextCache()
    cache.get(mp)
    assert cache.invalidate(mp)
    assert not cache.invalidate(mp)
    assert len(cache) == 0


# -- process-boundary safety ---------------------------------------------------------


def test_event_hash_is_recomputed_on_unpickle():
    from repro.core.events import Event, MemoryWrite

    event = Event(thread=0, poi=1, eid="a", action=MemoryWrite("x", 1))
    clone = pickle.loads(pickle.dumps(event))
    assert clone == event
    assert hash(clone) == hash(event)
    # A freshly built equal event must find the unpickled one in a dict.
    fresh = Event(thread=0, poi=1, eid="a", action=MemoryWrite("x", 1))
    assert {clone: "found"}[fresh] == "found"


def test_relation_and_index_caches_are_dropped_on_pickle():
    from repro.herd.enumerate import combination_contexts

    context = next(combination_contexts(get_test("mp")))
    po = context.po
    assert po.transitive_closure() is po.transitive_closure()  # memo warms
    clone = pickle.loads(pickle.dumps(po))
    assert clone._cache == {}
    assert clone.pairs == po.pairs
    index_clone = pickle.loads(pickle.dumps(context.index))
    assert index_clone._mask_cache == {}
    assert index_clone.n == context.index.n
    assert index_clone.events == context.index.events


def test_resolve_model_is_idempotent_and_shared():
    resolved = resolve_model("power")
    assert resolve_model(resolved) is resolved
    assert Simulator(resolved).model is resolved


def test_simulation_context_builds_combinations_lazily():
    mp = get_test("mp")
    context = SimulationContext(mp)
    # A verdict-only query against mp's register-only condition interns a
    # strict subset of the combinations.
    list(context.target_plans("standard"))
    interned_for_target = len(context._contexts)
    assert 0 < interned_for_target < len(context.combinations())
    list(context.plans("standard"))
    assert len(context._contexts) == len(context.combinations())
