"""Unit and property tests for the directed-graph helpers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.util import digraph


def test_is_acyclic_simple_chain():
    assert digraph.is_acyclic([(1, 2), (2, 3), (3, 4)])


def test_has_cycle_simple_loop():
    assert digraph.has_cycle([(1, 2), (2, 3), (3, 1)])


def test_self_loop_is_a_cycle_and_not_irreflexive():
    assert digraph.has_cycle([(1, 1)])
    assert not digraph.is_irreflexive([(1, 1)])
    assert digraph.is_irreflexive([(1, 2), (2, 3)])


def test_find_cycle_returns_closed_path():
    cycle = digraph.find_cycle([(1, 2), (2, 3), (3, 1), (3, 4)])
    assert cycle is not None
    assert cycle[0] == cycle[-1]
    edges = set(zip(cycle, cycle[1:]))
    assert edges <= {(1, 2), (2, 3), (3, 1), (3, 4)}


def test_find_cycle_none_on_dag():
    assert digraph.find_cycle([(1, 2), (1, 3), (2, 4), (3, 4)]) is None


def test_transitive_closure_chain():
    closure = digraph.transitive_closure([(1, 2), (2, 3)])
    assert closure == frozenset({(1, 2), (2, 3), (1, 3)})


def test_reflexive_transitive_closure_includes_universe():
    closure = digraph.reflexive_transitive_closure([(1, 2)], universe=[7])
    assert (7, 7) in closure
    assert (1, 1) in closure and (2, 2) in closure and (1, 2) in closure


def test_topological_sort_respects_edges():
    order = digraph.topological_sort([(1, 2), (1, 3), (3, 4)], nodes=[5])
    assert set(order) == {1, 2, 3, 4, 5}
    assert order.index(1) < order.index(2)
    assert order.index(3) < order.index(4)


def test_topological_sort_raises_on_cycle():
    with pytest.raises(ValueError):
        digraph.topological_sort([(1, 2), (2, 1)])


def test_linear_extensions_all_permutations_without_constraints():
    extensions = list(digraph.linear_extensions([1, 2, 3], []))
    assert len(extensions) == 6
    assert len(set(extensions)) == 6


def test_linear_extensions_respect_constraints():
    extensions = list(digraph.linear_extensions([1, 2, 3], [(1, 2), (1, 3)]))
    assert all(order[0] == 1 for order in extensions)
    assert len(extensions) == 2


def test_linear_extensions_empty_and_singleton():
    assert list(digraph.linear_extensions([], [])) == [()]
    assert list(digraph.linear_extensions([9], [])) == [(9,)]


def test_strongly_connected_components():
    sccs = digraph.strongly_connected_components([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
    assert frozenset({1, 2}) in sccs
    assert frozenset({3, 4}) in sccs


def test_elementary_cycles_finds_both_loops():
    cycles = digraph.elementary_cycles([(1, 2), (2, 1), (2, 3), (3, 2)])
    normalised = {frozenset(cycle) for cycle in cycles}
    assert frozenset({1, 2}) in normalised
    assert frozenset({2, 3}) in normalised


def test_elementary_cycles_respects_max_length():
    edges = [(1, 2), (2, 3), (3, 4), (4, 1)]
    assert digraph.elementary_cycles(edges, max_length=3) == []
    assert len(digraph.elementary_cycles(edges, max_length=4)) == 1


# -- property-based tests -------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)), min_size=0, max_size=20
)


@given(edges=edge_lists)
@settings(max_examples=100, deadline=None)
def test_property_acyclicity_matches_topological_sortability(edges):
    acyclic = digraph.is_acyclic(edges)
    try:
        digraph.topological_sort(edges)
        sortable = True
    except ValueError:
        sortable = False
    assert acyclic == sortable


@given(edges=edge_lists)
@settings(max_examples=100, deadline=None)
def test_property_transitive_closure_is_idempotent(edges):
    once = digraph.transitive_closure(edges)
    twice = digraph.transitive_closure(once)
    assert once == twice


@given(edges=edge_lists)
@settings(max_examples=100, deadline=None)
def test_property_cycle_witness_is_real(edges):
    cycle = digraph.find_cycle(edges)
    if cycle is None:
        assert digraph.is_acyclic(edges)
    else:
        edge_set = set(edges)
        assert all(pair in edge_set for pair in zip(cycle, cycle[1:]))
        assert cycle[0] == cycle[-1]


@given(
    nodes=st.lists(st.integers(0, 5), min_size=0, max_size=5, unique=True),
    constraints=st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_property_linear_extensions_respect_constraints(nodes, constraints):
    relevant = [(a, b) for a, b in constraints if a in nodes and b in nodes and a != b]
    if not digraph.is_acyclic(relevant):
        return
    extensions = list(digraph.linear_extensions(nodes, relevant))
    assert extensions, "an acyclic constraint set always has at least one extension"
    for order in extensions:
        positions = {node: index for index, node in enumerate(order)}
        assert all(positions[a] < positions[b] for a, b in relevant)
