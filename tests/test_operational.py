"""Tests for the intermediate machine, the PLDI comparator and Thm. 7.1."""

import pytest

from repro.core.architectures import arm_architecture, power_architecture, tso_architecture
from repro.core.model import Model
from repro.herd import candidate_executions, simulate
from repro.litmus.registry import get_test
from repro.operational import (
    IntermediateMachine,
    OperationalSimulator,
    check_equivalence,
    pldi_machine,
    pldi_operational_simulator,
)


def test_machine_accepts_sc_like_executions_of_mp():
    machine = IntermediateMachine(power_architecture())
    model = Model(power_architecture())
    for candidate in candidate_executions(get_test("mp")):
        assert machine.accepts(candidate.execution) == model.allows(candidate.execution)


@pytest.mark.parametrize(
    "name",
    [
        "mp", "mp+lwsync+addr", "sb", "sb+syncs", "sb+lwsyncs", "lb", "lb+addrs",
        "coWW", "coWR", "coRW1", "coRW2", "coRR",
        "2+2w", "2+2w+lwsyncs", "r", "r+syncs", "r+lwsync+sync", "s", "s+lwsync+data",
        "wrc+lwsync+addr", "rwc+syncs", "iriw+syncs", "iriw+lwsyncs",
        "w+rwc+eieio+addr+sync", "mp+lwsync+addr-po-detour", "lb+addrs+ww",
    ],
)
def test_theorem_71_equivalence_per_test(name):
    """Thm. 7.1: the machine and the axiomatic model accept the same executions."""
    machine = IntermediateMachine(power_architecture())
    model = Model(power_architecture())
    for candidate in candidate_executions(get_test(name)):
        assert machine.accepts(candidate.execution) == model.allows(candidate.execution), name


def test_theorem_71_equivalence_on_arm_and_tso():
    arm_tests = [get_test(n) for n in ("mp+dmb+addr", "mp+dmb+fri-rfi-ctrlisb", "sb+dmbs")]
    report = check_equivalence(arm_tests, arm_architecture())
    assert report.equivalent, report.describe()

    tso_tests = [get_test(n) for n in ("sb", "sb+mfences", "mp", "iriw")]
    report = check_equivalence(tso_tests, tso_architecture())
    assert report.equivalent, report.describe()


def test_equivalence_report_describe_and_counts():
    report = check_equivalence([get_test("mp")], power_architecture())
    assert report.equivalent
    assert report.tests_checked == 1
    assert report.executions_checked > 0
    assert "equivalent" in report.describe()


def test_operational_simulator_matches_herd_verdicts():
    simulator = OperationalSimulator(power_architecture())
    for name in ("mp", "mp+lwsync+addr", "sb+syncs", "lb+addrs", "2+2w+lwsyncs"):
        test = get_test(name)
        assert simulator.verdict(test) == simulate(test, "power").verdict, name


def test_operational_simulator_allowed_outcomes_subset_of_candidates():
    simulator = OperationalSimulator(power_architecture())
    test = get_test("sb")
    outcomes = simulator.allowed_outcomes(test)
    all_outcomes = {candidate.outcome(test) for candidate in candidate_executions(test)}
    assert outcomes <= all_outcomes
    assert outcomes  # sb has allowed outcomes


def test_pldi_machine_reproduces_the_documented_flaw():
    """Tab. I / Sec. 8.2: the PLDI 2011 model forbids behaviours observed on hardware."""
    pldi = pldi_operational_simulator()
    detour = get_test("mp+lwsync+addr-po-detour")
    assert pldi.verdict(detour) == "Forbid"
    assert simulate(detour, "power").verdict == "Allow"

    # On the common tests the two models agree.
    for name in ("mp", "mp+lwsync+addr", "sb+syncs", "lb+addrs"):
        test = get_test(name)
        assert pldi.verdict(test) == simulate(test, "power").verdict, name


def test_pldi_machine_name_and_architecture():
    machine = pldi_machine()
    assert machine.architecture.name == "pldi2011"
    assert "pldi2011" in machine.name
