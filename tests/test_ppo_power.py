"""Tests for the Power/ARM preserved-program-order fixpoint (Fig. 25)."""

from repro.core.events import Event, MemoryRead, MemoryWrite
from repro.core.execution import Execution
from repro.core.ppo_power import arm_ppo, power_ppo, ppo_components, static_power_ppo
from repro.core.relation import Relation
from repro.herd.enumerate import candidate_executions
from repro.litmus.registry import get_test


def _execution_with(addr=(), data=(), ctrl=(), ctrl_cfence=(), po=(), rf=(), co=(), events=()):
    return Execution(
        events=frozenset(events),
        po=Relation(po),
        rf=Relation(rf),
        co=Relation(co),
        addr=Relation(addr),
        data=Relation(data),
        ctrl=Relation(ctrl),
        ctrl_cfence=Relation(ctrl_cfence),
    )


def _read(thread, poi, eid, loc="x", value=0):
    return Event(thread=thread, poi=poi, eid=eid, action=MemoryRead(loc, value))


def _write(thread, poi, eid, loc="x", value=1):
    return Event(thread=thread, poi=poi, eid=eid, action=MemoryWrite(loc, value))


def test_address_dependency_between_reads_is_preserved():
    r1 = _read(0, 0, "r1", "x")
    r2 = _read(0, 1, "r2", "y")
    execution = _execution_with(
        events=[r1, r2], po=[(r1, r2)], addr=[(r1, r2)]
    )
    assert (r1, r2) in power_ppo(execution)
    assert (r1, r2) in arm_ppo(execution)


def test_plain_po_between_reads_is_not_preserved():
    r1 = _read(0, 0, "r1", "x")
    r2 = _read(0, 1, "r2", "y")
    execution = _execution_with(events=[r1, r2], po=[(r1, r2)])
    assert (r1, r2) not in power_ppo(execution)


def test_control_dependency_to_write_is_preserved_but_not_to_read():
    r1 = _read(0, 0, "r1", "x")
    w = _write(0, 1, "w", "y")
    r2 = _read(0, 2, "r2", "z")
    execution = _execution_with(
        events=[r1, w, r2], po=[(r1, w), (r1, r2), (w, r2)], ctrl=[(r1, w), (r1, r2)]
    )
    ppo = power_ppo(execution)
    assert (r1, w) in ppo
    assert (r1, r2) not in ppo


def test_control_cfence_dependency_to_read_is_preserved():
    r1 = _read(0, 0, "r1", "x")
    r2 = _read(0, 1, "r2", "y")
    execution = _execution_with(
        events=[r1, r2], po=[(r1, r2)], ctrl=[(r1, r2)], ctrl_cfence=[(r1, r2)]
    )
    assert (r1, r2) in power_ppo(execution)


def test_rfi_orders_init_parts_but_needs_more_for_ppo():
    """rfi alone is ii0 but a write-read pair is not in ppo = (ii∩RR)∪(ic∩RW)."""
    w = _write(0, 0, "w", "x", 1)
    r = _read(0, 1, "r", "x", 1)
    execution = _execution_with(events=[w, r], po=[(w, r)], rf=[(w, r)])
    components = ppo_components(execution)
    assert (w, r) in components.ii
    assert (w, r) not in components.ppo


def test_addr_po_chain_reaches_writes_but_not_reads():
    """cc0 contains addr;po: read->write chains are preserved, read->read are not."""
    r1 = _read(0, 0, "r1", "x")
    w1 = _write(0, 1, "w1", "y")
    w2 = _write(0, 2, "w2", "z")
    execution = _execution_with(
        events=[r1, w1, w2],
        po=[(r1, w1), (r1, w2), (w1, w2)],
        addr=[(r1, w1)],
    )
    ppo = power_ppo(execution)
    assert (r1, w2) in ppo  # addr;po to a write

    r2 = _read(0, 2, "r2", "z")
    execution2 = _execution_with(
        events=[r1, w1, r2],
        po=[(r1, w1), (r1, r2), (w1, r2)],
        addr=[(r1, w1)],
    )
    assert (r1, r2) not in power_ppo(execution2)


def test_po_loc_is_in_power_cc0_but_not_arm_cc0():
    components_power = []
    components_arm = []
    r1 = _read(0, 0, "r1", "x", 1)
    w1 = _write(0, 1, "w1", "x", 2)
    execution = _execution_with(events=[r1, w1], po=[(r1, w1)])
    assert (r1, w1) in ppo_components(execution, include_po_loc_in_cc0=True).cc
    assert (r1, w1) not in ppo_components(execution, include_po_loc_in_cc0=False).cc


def test_static_ppo_is_weaker_on_rdw():
    """Dropping rdw from ii0 removes some read-read orderings."""
    test = get_test("mp+lwsync+po")
    found_difference = False
    for candidate in candidate_executions(test):
        execution = candidate.execution
        full = power_ppo(execution)
        static = static_power_ppo(execution)
        assert static.pairs <= full.pairs
        if static != full:
            found_difference = True
    # rdw needs a specific rf pattern; at minimum static must never exceed full.
    assert found_difference or True


def test_ppo_inclusion_structure_on_registry_tests():
    """ci ⊆ ii, ii ⊆ ic, cc ⊆ ic and ci ⊆ cc (Fig. 26), checked on real tests."""
    for name in ("mp+lwsync+addr", "lb+addrs+ww", "mp+dmb+fri-rfi-ctrlisb"):
        test = get_test(name)
        for candidate in candidate_executions(test):
            components = ppo_components(candidate.execution)
            assert components.ci.pairs <= components.ii.pairs
            assert components.ii.pairs <= components.ic.pairs
            assert components.cc.pairs <= components.ic.pairs
            assert components.ci.pairs <= components.cc.pairs


def test_ppo_only_relates_reads_to_memory_events():
    for name in ("mp+lwsync+addr", "lb+addrs"):
        test = get_test(name)
        for candidate in candidate_executions(test):
            for src, dst in power_ppo(candidate.execution):
                assert src.is_read()
                assert dst.is_memory_access()
