"""Bounded, idle-expiring caches for long-lived sessions.

A session behind the verdict service lives for days: every shared memo
(resolved models, repair cycle signatures, simulation contexts) must be
bounded in both entry count and idle time, or the process grows without
limit.  These tests drive :class:`~repro.util.caches.BoundedTTLCache`
with a fake clock and pin the session-level wiring: TTL reaches every
shared cache and evictions land in ``Session.stats()``.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign.context import ContextCache
from repro.litmus.registry import get_test
from repro.session import Session
from repro.telemetry import CacheStats
from repro.util.caches import BoundedTTLCache


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_lru_bound_evicts_oldest_and_counts():
    stats = CacheStats("test")
    cache = BoundedTTLCache(max_entries=2, stats=stats)
    cache["a"], cache["b"] = 1, 2
    assert cache["a"] == 1  # touch: "a" is now most recently used
    cache["c"] = 3
    assert "b" not in cache
    assert dict(cache) == {"a": 1, "c": 3}
    assert stats.evictions == 1


def test_idle_ttl_expires_untouched_entries_only():
    clock = Clock()
    stats = CacheStats("test")
    cache = BoundedTTLCache(ttl=10.0, stats=stats, clock=clock)
    cache["young"] = 1
    cache["old"] = 2
    clock.now = 8.0
    assert cache["young"] == 1  # the read refreshes the idle stamp
    clock.now = 12.0
    assert "old" not in cache  # idle 12s > ttl
    assert cache["young"] == 1  # idle only 4s since the refresh
    with pytest.raises(KeyError):
        cache["old"]
    assert stats.evictions == 1
    assert len(cache) == 1


def test_purge_sweeps_everything_expired_at_once():
    clock = Clock()
    cache = BoundedTTLCache(ttl=5.0, clock=clock)
    for key in ("a", "b", "c"):
        cache[key] = key
    clock.now = 6.0
    cache["fresh"] = 1
    assert cache.purge() == 3
    assert list(cache) == ["fresh"]
    assert cache.purge() == 0


def test_mutable_mapping_protocol_supports_campaign_drivers():
    cache = BoundedTTLCache(max_entries=8)
    cache.update({"a": 1, "b": 2})  # merge, as repair_family does
    snapshot = dict(cache)  # snapshot, as the sharded payload does
    assert snapshot == {"a": 1, "b": 2}
    del cache["a"]
    assert cache.get("a") is None
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_cache_validates_its_bounds():
    with pytest.raises(ValueError):
        BoundedTTLCache(max_entries=0)
    with pytest.raises(ValueError):
        BoundedTTLCache(ttl=0)
    assert BoundedTTLCache(max_entries=None, ttl=None) is not None


def test_idle_expiry_is_attributed_separately_from_capacity_eviction():
    clock = Clock()
    stats = CacheStats("test")
    cache = BoundedTTLCache(max_entries=2, ttl=10.0, stats=stats, clock=clock)
    cache["a"], cache["b"] = 1, 2
    cache["c"] = 3  # capacity eviction of "a": not an expiry
    assert (stats.evictions, stats.expirations) == (1, 0)
    clock.now = 12.0
    assert "b" not in cache  # idle expiry: both counters move
    assert (stats.evictions, stats.expirations) == (2, 1)
    cache["d"] = 4
    clock.now = 24.0
    assert cache.purge() == 2  # purge-driven expiry is attributed too
    assert (stats.evictions, stats.expirations) == (4, 3)


def test_context_cache_expiry_reaches_stats_and_telemetry():
    from repro import telemetry

    cache = ContextCache(capacity=8, ttl=0.02)
    test = get_test("sb")
    metrics = telemetry.enable()
    try:
        cache.get(test)
        time.sleep(0.05)
        cache.get(test)  # rebuilds: one eviction, attributed as expiry
        assert cache.evictions == 1
        assert cache.expirations == 1
        assert cache.stats()["expirations"] == 1
        assert cache.cache_stats().as_dict()["expirations"] == 1
        counters = metrics.snapshot().counters
        assert counters["cache.context.expirations"] == 1
        assert counters["cache.context.evictions"] == 1
    finally:
        telemetry.disable()


def test_context_cache_idle_ttl_rebuilds_expired_contexts():
    cache = ContextCache(capacity=8, ttl=0.02)
    test = get_test("sb")
    first = cache.get(test)
    assert cache.get(test) is first
    assert cache.hits == 1
    time.sleep(0.05)
    rebuilt = cache.get(test)
    assert rebuilt is not first, "an idle-expired context must be rebuilt"
    assert cache.evictions == 1
    assert cache.misses == 2
    with pytest.raises(ValueError):
        ContextCache(ttl=-1.0)


def test_session_ttl_reaches_every_shared_cache():
    session = Session(model="power", cache_ttl=123.0, cycle_cache_size=7)
    assert session.context_cache.ttl == 123.0
    assert session.cycle_cache.ttl == 123.0
    assert session.cycle_cache.max_entries == 7
    assert session._models.ttl == 123.0


def test_session_error_ring_is_bounded_and_drops_are_reported():
    session = Session(model="power", error_ring=2)
    session.last_errors.extend(["one", "two", "three"])
    assert list(session.last_errors) == ["two", "three"]
    assert session.stats()["supervisor"]["errors_dropped"] == 1
    session.last_errors.clear()
    # Lifetime counter: visible even after the next batch reset.
    assert session.stats()["supervisor"]["errors_dropped"] == 1
