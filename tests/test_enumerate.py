"""Tests for candidate-execution enumeration."""

from repro.core.execution import Execution
from repro.herd.enumerate import Candidate, candidate_executions, count_candidates
from repro.litmus.ast import TestBuilder
from repro.litmus.registry import get_test


def _simple_mp():
    builder = TestBuilder("mp-builder", arch="power")
    t0 = builder.thread()
    t0.store("x", 1)
    t0.store("y", 1)
    t1 = builder.thread()
    r1 = t1.load("y")
    r2 = t1.load("x")
    builder.exists({(1, r1): 1, (1, r2): 0})
    return builder.build(), r1, r2


def test_every_candidate_is_well_formed():
    test, _, _ = _simple_mp()
    candidates = list(candidate_executions(test))
    assert candidates
    for candidate in candidates:
        candidate.execution.validate()


def test_mp_candidate_count_and_outcomes():
    test, r1, r2 = _simple_mp()
    candidates = list(candidate_executions(test))
    # Two loads, two possible values each; every combination has exactly one
    # rf/co choice.
    assert len(candidates) == 4
    outcomes = {candidate.outcome(test) for candidate in candidates}
    assert len(outcomes) == 4


def test_initial_writes_are_present_and_co_first():
    test, _, _ = _simple_mp()
    candidate = next(iter(candidate_executions(test)))
    execution = candidate.execution
    init_writes = execution.init_writes
    assert {w.location for w in init_writes} == {"x", "y"}
    co_closure = execution.co.transitive_closure()
    for init in init_writes:
        for write in execution.writes:
            if write.location == init.location and not write.is_init():
                assert (init, write) in co_closure


def test_final_registers_follow_load_values():
    test, r1, r2 = _simple_mp()
    for candidate in candidate_executions(test):
        reads = {event.location: event.value for event in candidate.execution.reads}
        assert candidate.final_registers[(1, r1)] == reads["y"]
        assert candidate.final_registers[(1, r2)] == reads["x"]


def test_coherence_enumeration_multiplies_candidates():
    # Two writes to the same location on different threads: two coherence
    # orders per rf choice.
    builder = TestBuilder("2w", arch="power")
    t0 = builder.thread()
    t0.store("x", 1)
    t1 = builder.thread()
    t1.store("x", 2)
    builder.exists({"x": 2})
    test = builder.build()
    assert count_candidates(test) == 2


def test_infeasible_read_values_are_dropped():
    # A single thread loading x can only see 0 (init) or 1 (its own store is
    # absent here); the value 2 in the condition enlarges the domain, but the
    # combination where the load returns 2 has no read-from source.
    builder = TestBuilder("drop", arch="power")
    t0 = builder.thread()
    register = t0.load("x")
    t1 = builder.thread()
    t1.store("x", 1)
    builder.exists({(0, register): 2})
    test = builder.build()
    values = {
        candidate.final_registers[(0, register)]
        for candidate in candidate_executions(test)
    }
    assert values == {0, 1}


def test_registry_iriw_candidate_count():
    test = get_test("iriw")
    # Two reader threads with two reads each over {0,1}: 16 combinations,
    # each with a unique rf/co assignment.
    assert count_candidates(test) == 16


def test_candidate_outcome_projects_condition_registers():
    test = get_test("sb")
    candidate = next(iter(candidate_executions(test)))
    outcome = dict(candidate.outcome(test))
    assert set(outcome) == {f"{atom.thread}:{atom.name}" for atom in test.condition.atoms}
