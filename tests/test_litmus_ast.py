"""Tests for the litmus AST, conditions and the programmatic builder."""

import pytest

from repro.litmus.ast import Condition, ConditionAtom, LitmusTest, TestBuilder
from repro.litmus.instructions import Fence, Load, MoveImmediate, Store, Xor


def test_condition_atom_register_and_memory():
    reg_atom = ConditionAtom.register(1, "r1", 5)
    mem_atom = ConditionAtom.memory("x", 2)
    assert reg_atom.holds({(1, "r1"): 5}, {})
    assert not reg_atom.holds({(1, "r1"): 4}, {})
    assert mem_atom.holds({}, {"x": 2})
    assert not mem_atom.holds({}, {})  # defaults to 0


def test_condition_kinds_verdicts():
    atoms = (ConditionAtom.memory("x", 1),)
    exists = Condition("exists", atoms)
    not_exists = Condition("not exists", atoms)
    forall = Condition("forall", atoms)
    assert exists.verdict(True, False) is True
    assert exists.verdict(False, False) is False
    assert not_exists.verdict(True, False) is False
    assert forall.verdict(True, True) is True
    assert forall.verdict(True, False) is False


def test_condition_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Condition("maybe", ())


def test_condition_string_rendering():
    condition = Condition(
        "exists", (ConditionAtom.register(0, "r1", 1), ConditionAtom.memory("x", 2))
    )
    assert str(condition) == "exists (0:r1=1 /\\ x=2)"


def test_builder_store_load_allocates_address_registers():
    builder = TestBuilder("t")
    t0 = builder.thread()
    t0.store("x", 1)
    register = t0.load("y")
    test = builder.build()
    assert test.init_registers[(0, "rAx")] == "x"
    assert test.init_registers[(0, "rAy")] == "y"
    assert test.init_memory == {"x": 0, "y": 0}
    assert isinstance(test.threads[0][0], MoveImmediate)
    assert isinstance(test.threads[0][1], Store)
    assert isinstance(test.threads[0][2], Load)
    assert test.threads[0][2].dst == register


def test_builder_addr_dep_emits_xor_and_indexed_load():
    builder = TestBuilder("t")
    t0 = builder.thread()
    source = t0.load("x")
    t0.load_addr_dep("y", dep_on=source)
    instructions = builder.build().threads[0]
    assert any(isinstance(i, Xor) for i in instructions)
    indexed = [i for i in instructions if isinstance(i, Load) and i.index_reg is not None]
    assert len(indexed) == 1


def test_builder_ctrl_dep_emits_compare_branch_label_and_optional_fence():
    builder = TestBuilder("t")
    t0 = builder.thread()
    source = t0.load("x")
    t0.store_ctrl_dep("y", 1, dep_on=source)
    t0.load_ctrl_dep("z", dep_on=source, cfence="isync")
    instructions = builder.build().threads[0]
    fences = [i for i in instructions if isinstance(i, Fence)]
    assert [f.name for f in fences] == ["isync"]


def test_builder_conditions_register_values():
    builder = TestBuilder("t")
    t0 = builder.thread()
    register = t0.load("x")
    builder.exists({(0, register): 3, "x": 3})
    test = builder.build()
    assert test.condition is not None
    assert test.condition.kind == "exists"
    assert {str(atom) for atom in test.condition.atoms} == {"0:r1=3", "x=3"}


def test_locations_collects_memory_registers_and_condition():
    builder = TestBuilder("t")
    t0 = builder.thread()
    t0.store("x", 1)
    builder.exists({"y": 0})
    test = builder.build()
    assert test.locations() == ("x", "y")


def test_pretty_rendering_contains_threads_and_condition():
    builder = TestBuilder("demo", arch="power", doc="a demo")
    t0 = builder.thread()
    t0.store("x", 1)
    t1 = builder.thread()
    register = t1.load("x")
    builder.exists({(1, register): 1})
    text = builder.build().pretty()
    assert "POWER demo" in text
    assert "P0:" in text and "P1:" in text
    assert "exists" in text
