"""Tests for the cat language: lexer, parser, interpreter and shipped models."""

import pytest

from repro.cat import (
    builtin_model_names,
    builtin_model_source,
    load_builtin_model,
    load_cat_model,
    parse_cat,
)
from repro.cat import ast as cat_ast
from repro.cat.interpreter import CatEvaluationError, builtin_environment
from repro.cat.lexer import CatSyntaxError, tokenize
from repro.herd import candidate_executions, simulate
from repro.litmus.registry import entries, get_test


# -- lexer ---------------------------------------------------------------------


def test_tokenize_identifiers_and_operators():
    tokens = tokenize("let hb = ppo|fences;rfe*")
    kinds = [token.kind for token in tokens]
    assert "LET" in kinds and "IDENT" in kinds and "|" in kinds and ";" in kinds
    assert kinds[-1] == "EOF"


def test_tokenize_composite_ctrl_identifiers():
    tokens = tokenize("ctrl+isync | ctrl+isb")
    idents = [token.value for token in tokens if token.kind == "IDENT"]
    assert idents == ["ctrl+isync", "ctrl+isb"]


def test_tokenize_block_and_line_comments():
    tokens = tokenize("(* a (* nested *) comment *) let x = po // trailing\n")
    assert [t.value for t in tokens if t.kind == "IDENT"] == ["x", "po"]


def test_tokenize_rejects_unterminated_comment_and_bad_char():
    with pytest.raises(CatSyntaxError):
        tokenize("(* oops")
    with pytest.raises(CatSyntaxError):
        tokenize("let x = @")


# -- parser --------------------------------------------------------------------


def test_parse_let_and_check():
    program = parse_cat("let hb = po | rfe\nacyclic hb as no-thin-air\n")
    assert isinstance(program.statements[0], cat_ast.Let)
    check = program.statements[1]
    assert isinstance(check, cat_ast.Check)
    assert check.kind == "acyclic" and check.name == "no-thin-air"


def test_parse_let_rec_groups_bindings():
    program = parse_cat("let rec a = b | po\nand b = a ; rf\nacyclic a\n")
    letrec = program.statements[0]
    assert isinstance(letrec, cat_ast.LetRec)
    assert [name for name, _ in letrec.bindings] == ["a", "b"]


def test_parse_precedence_union_binds_weaker_than_sequence():
    program = parse_cat("acyclic po | rf ; fr\n")
    expr = program.statements[0].expr
    assert isinstance(expr, cat_ast.Union)
    assert isinstance(expr.right, cat_ast.Sequence)


def test_parse_direction_filters_and_closures():
    program = parse_cat("let x = WW(po)* | RM(lwsync)+\nacyclic x\n")
    expr = program.statements[0].expr
    assert isinstance(expr, cat_ast.Union)
    assert isinstance(expr.left, cat_ast.ReflexiveTransitiveClosure)
    assert isinstance(expr.left.operand, cat_ast.DirectionFilter)


def test_parse_leading_model_name():
    program = parse_cat("mymodel\nacyclic po\n")
    assert program.name == "mymodel"


def test_parse_errors():
    with pytest.raises(CatSyntaxError):
        parse_cat("let = po\n")
    with pytest.raises(CatSyntaxError):
        parse_cat("acyclic (po\n")
    with pytest.raises(CatSyntaxError):
        parse_cat("frobnicate po\n")


# -- interpreter -----------------------------------------------------------------


def _one_execution(test_name):
    return next(iter(candidate_executions(get_test(test_name)))).execution


def test_builtin_environment_contains_paper_relations():
    environment = builtin_environment(_one_execution("mp"))
    for name in ("po", "po-loc", "rf", "rfe", "co", "fr", "addr", "data", "ctrl",
                 "ctrl+isync", "sync", "lwsync", "dmb", "mfence", "com", "id"):
        assert name in environment


def test_unknown_relation_raises():
    model = load_cat_model("acyclic frobnicate\n")
    with pytest.raises(CatEvaluationError):
        model.check(_one_execution("mp"))


def test_letrec_fixpoint_terminates_and_grows():
    model = load_cat_model(
        "let rec path = po | (path ; path)\nacyclic path as closure\n", name="fixpoint"
    )
    execution = _one_execution("mp")
    relations = model.relations(execution)
    assert relations["path"].pairs >= execution.po.pairs


def test_simple_sc_model_matches_builtin_sc():
    source = "acyclic po | rf | fr | co as sc\n"
    model = load_cat_model(source, name="mini-sc")
    assert simulate(get_test("mp"), model).verdict == "Forbid"
    assert simulate(get_test("sb"), model).verdict == "Forbid"


# -- shipped models ---------------------------------------------------------------


def test_builtin_model_names_and_sources():
    names = builtin_model_names()
    assert {"sc", "tso", "power", "arm", "arm-llh", "cpp-ra", "power-arm"} <= set(names)
    assert "acyclic" in builtin_model_source("power")
    with pytest.raises(KeyError):
        builtin_model_source("itanium")


@pytest.mark.parametrize("model_name", sorted(builtin_model_names()))
def test_cat_models_match_paper_expectations(model_name):
    """Each shipped .cat file reproduces the paper verdicts of its architecture."""
    cat_model = load_builtin_model(model_name)
    checked = 0
    for entry in entries():
        expected = entry.expectations.get(model_name)
        if expected is None:
            continue
        result = simulate(entry.build(), cat_model)
        assert result.verdict == expected, f"{entry.name} under cat {model_name}"
        checked += 1
    assert checked > 0 or model_name not in ("power", "arm", "tso", "sc")


def test_fig38_power_cat_equals_builtin_power_on_named_tests():
    cat_power = load_builtin_model("power")
    for name in ("mp+lwsync+addr", "sb+syncs", "lb+addrs", "2+2w+lwsyncs",
                 "r+lwsync+sync", "iriw+lwsyncs", "w+rwc+eieio+addr+sync"):
        test = get_test(name)
        assert (
            simulate(test, cat_power).verdict == simulate(test, "power").verdict
        ), name


# -- stdlib memoization --------------------------------------------------------


def test_load_builtin_model_parses_once_per_name():
    from repro.cat import clear_model_cache, load_stats

    clear_model_cache()
    try:
        first = load_builtin_model("power")
        stats = load_stats()
        assert stats["misses"] == 1 and stats["hits"] == 0
        second = load_builtin_model("power")
        stats = load_stats()
        assert stats["misses"] == 1 and stats["hits"] == 1
        # Fresh wrapper objects over one shared (frozen) program.
        assert first is not second
        assert first.program is second.program
        assert second.name == "power"
    finally:
        clear_model_cache()


def test_cached_builtin_models_cannot_be_corrupted_by_callers():
    from repro.cat import clear_model_cache

    clear_model_cache()
    try:
        tampered = load_builtin_model("tso")
        tampered.program = None  # a hostile caller mutates its copy...
        reloaded = load_builtin_model("tso")
        assert reloaded.program is not None  # ...the cache never sees it
        assert simulate(get_test("sb"), reloaded).verdict == "Allow"
        # The program itself is frozen: its fields cannot be rebound.
        with pytest.raises(AttributeError):
            reloaded.program.name = "evil"
    finally:
        clear_model_cache()


def test_builtin_model_source_is_memoized_and_consistent():
    from repro.cat import clear_model_cache

    clear_model_cache()
    try:
        assert builtin_model_source("arm") is builtin_model_source("arm")
    finally:
        clear_model_cache()
