"""Unit and property tests for the relation algebra."""

from hypothesis import given, settings, strategies as st

from repro.core.events import Event, MemoryRead, MemoryWrite
from repro.core.relation import Relation


def _events(count):
    return [
        Event(thread=i % 2, poi=i, eid=f"e{i}", action=MemoryWrite("x", i))
        for i in range(count)
    ]


EVENTS = _events(6)


def _relation(pairs):
    return Relation((EVENTS[a], EVENTS[b]) for a, b in pairs)


def test_union_intersection_difference():
    r1 = _relation([(0, 1), (1, 2)])
    r2 = _relation([(1, 2), (2, 3)])
    assert (EVENTS[0], EVENTS[1]) in (r1 | r2)
    assert len(r1 | r2) == 3
    assert (r1 & r2) == _relation([(1, 2)])
    assert (r1 - r2) == _relation([(0, 1)])


def test_sequence_composition():
    r1 = _relation([(0, 1), (2, 3)])
    r2 = _relation([(1, 2), (3, 4)])
    assert (r1 @ r2) == _relation([(0, 2), (2, 4)])


def test_inverse():
    r = _relation([(0, 1), (1, 2)])
    assert r.inverse() == _relation([(1, 0), (2, 1)])


def test_transitive_closure_and_star():
    r = _relation([(0, 1), (1, 2)])
    plus = r.plus()
    assert (EVENTS[0], EVENTS[2]) in plus
    star = r.star(EVENTS[:3])
    assert (EVENTS[0], EVENTS[0]) in star
    assert (EVENTS[0], EVENTS[2]) in star


def test_star_accepts_one_shot_iterables_and_memoizes():
    r = _relation([(0, 1)])
    star = r.star(iter(EVENTS[:3]))  # a generator must not be half-consumed
    for event in EVENTS[:3]:
        assert (event, event) in star
    assert r.star(EVENTS[:3]) == star  # cached result, same universe
    assert r.plus() is r.plus()  # closure memoized per instance


def test_acyclicity_and_irreflexivity():
    acyclic = _relation([(0, 1), (1, 2)])
    cyclic = _relation([(0, 1), (1, 0)])
    reflexive = _relation([(0, 0)])
    assert acyclic.is_acyclic() and acyclic.is_irreflexive()
    assert not cyclic.is_acyclic()
    assert cyclic.is_irreflexive()
    assert not reflexive.is_irreflexive()
    assert not reflexive.is_acyclic()


def test_internal_external_split():
    read = Event(thread=0, poi=0, eid="r", action=MemoryRead("x", 0))
    write_same = Event(thread=0, poi=1, eid="w0", action=MemoryWrite("x", 1))
    write_other = Event(thread=1, poi=0, eid="w1", action=MemoryWrite("x", 1))
    r = Relation([(read, write_same), (read, write_other)])
    assert r.internal() == Relation([(read, write_same)])
    assert r.external() == Relation([(read, write_other)])


def test_same_location_filter():
    rx = Event(thread=0, poi=0, eid="rx", action=MemoryRead("x", 0))
    wy = Event(thread=0, poi=1, eid="wy", action=MemoryWrite("y", 1))
    wx = Event(thread=0, poi=2, eid="wx", action=MemoryWrite("x", 1))
    r = Relation([(rx, wy), (rx, wx)])
    assert r.same_location() == Relation([(rx, wx)])


def test_from_order_and_totality():
    order = Relation.from_order(EVENTS[:3])
    assert len(order) == 3
    assert order.is_total_over(EVENTS[:3])
    assert not Relation.from_order(EVENTS[:2]).is_total_over(EVENTS[:3])


def test_domain_range_events_successors():
    r = _relation([(0, 1), (0, 2)])
    assert r.domain() == frozenset({EVENTS[0]})
    assert r.range() == frozenset({EVENTS[1], EVENTS[2]})
    assert r.events() == frozenset({EVENTS[0], EVENTS[1], EVENTS[2]})
    assert r.successors(EVENTS[0]) == frozenset({EVENTS[1], EVENTS[2]})
    assert r.predecessors(EVENTS[1]) == frozenset({EVENTS[0]})


def test_restrict_by_sets():
    r = _relation([(0, 1), (1, 2), (2, 3)])
    restricted = r.restrict(sources={EVENTS[0], EVENTS[1]}, targets={EVENTS[2]})
    assert restricted == _relation([(1, 2)])


# -- property-based tests -------------------------------------------------------

pair_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=0, max_size=15
)


@given(pairs=pair_lists)
@settings(max_examples=100, deadline=None)
def test_property_sequence_with_identity_is_noop(pairs):
    r = _relation(pairs)
    identity = Relation.identity(EVENTS)
    assert r.seq(identity) == r
    assert identity.seq(r) == r


@given(pairs=pair_lists)
@settings(max_examples=100, deadline=None)
def test_property_double_inverse_is_identity(pairs):
    r = _relation(pairs)
    assert r.inverse().inverse() == r


@given(left=pair_lists, right=pair_lists)
@settings(max_examples=100, deadline=None)
def test_property_union_commutative_and_contains_operands(left, right):
    r1, r2 = _relation(left), _relation(right)
    union = r1 | r2
    assert union == r2 | r1
    assert r1.pairs <= union.pairs and r2.pairs <= union.pairs


@given(pairs=pair_lists)
@settings(max_examples=100, deadline=None)
def test_property_plus_is_transitive_and_contains_relation(pairs):
    r = _relation(pairs)
    plus = r.plus()
    assert r.pairs <= plus.pairs
    assert plus.seq(plus).pairs <= plus.pairs


@given(left=pair_lists, right=pair_lists)
@settings(max_examples=100, deadline=None)
def test_property_inverse_distributes_over_sequence(left, right):
    r1, r2 = _relation(left), _relation(right)
    assert (r1 @ r2).inverse() == r2.inverse() @ r1.inverse()
