"""API-surface snapshots: the public names of the package root and of
every driver subpackage.  These tests fail when a public name vanishes
(or silently appears), which is exactly when a deliberate decision —
and a changelog entry — is required.

The root re-exports are lazy: ``import repro`` must not pay for any
driver import until a name is actually used (checked in a subprocess so
this test is independent of import order elsewhere in the suite).
"""

from __future__ import annotations

import importlib
import subprocess
import sys

import pytest

#: The committed public surface of the package root.
ROOT_API = [
    "CacheStats",
    "CampaignPool",
    "ComparisonReport",
    "ContextCache",
    "CorpusBudget",
    "LitmusTest",
    "Metrics",
    "MetricsSnapshot",
    "Report",
    "Session",
    "SimulationResult",
    "Simulator",
    "TestBuilder",
    "__version__",
    "all_tests",
    "analyse",
    "compare_models",
    "default_session",
    "get_test",
    "load_builtin_model",
    "observe",
    "repair",
    "resolve_model",
    "simulate",
    "sweep",
    "verdict",
    "verify",
]

#: The committed public surface of each driver subpackage.
SUBPACKAGE_API = {
    "repro.campaign": [
        "CampaignPicklingWarning",
        "CampaignPool",
        "ContextCache",
        "DEFAULT_CHUNK_SIZE",
        "FailedItem",
        "PoisonItemError",
        "ErrorRing",
        "SimulationContext",
        "SupervisorPolicy",
        "chunked",
        "run_sharded",
        "test_fingerprint",
        "worker_count",
    ],
    "repro.compare": [
        "ComparisonReport",
        "CorpusBudget",
        "Witness",
        "classify",
        "compare_models",
        "comparison_corpus",
        "event_count",
        "find_distinguishing_tests",
        "minimal_witness",
        "paired_verdicts",
        "size_key",
        "uses_dependencies",
        "uses_fences",
    ],
    "repro.cat": [
        "CatModel",
        "builtin_model_names",
        "builtin_model_source",
        "clear_model_cache",
        "load_builtin_model",
        "load_cat_model",
        "load_stats",
        "parse_cat",
    ],
    "repro.diy": [
        "Cycle",
        "Edge",
        "FamilySweep",
        "coe",
        "coi",
        "cycle_name",
        "dep",
        "extended_family",
        "fenced",
        "fre",
        "fri",
        "generate_test",
        "po",
        "rfe",
        "rfi",
        "standard_family",
        "sweep_family",
        "two_thread_family",
    ],
    "repro.fences": [
        "AbstractEvent",
        "AbstractEventGraph",
        "CampaignResult",
        "CriticalCycle",
        "Mechanism",
        "PLACEMENT_STRATEGIES",
        "Placement",
        "PoEdge",
        "RepairError",
        "RepairReport",
        "aeg_from_litmus",
        "aeg_from_program",
        "apply_placements",
        "critical_cycles",
        "plan_ilp_cover",
        "plan_placements",
        "repair_family",
        "repair_one",
        "repair_test",
        "solve_cover",
        "validate_repair",
    ],
    "repro.hardware": [
        "CampaignReport",
        "Erratum",
        "ObservedTest",
        "SimulatedChip",
        "chip_by_name",
        "classify_anomalies",
        "default_arm_chips",
        "default_power_chips",
        "observe_test",
        "run_campaign",
    ],
    "repro.herd": [
        "Candidate",
        "SimulationResult",
        "Simulator",
        "candidate_executions",
        "simulate",
    ],
    "repro.mole": [
        "MoleReport",
        "StaticAccess",
        "StaticCycle",
        "analyse_corpus",
        "analyse_program",
        "corpus_package_names",
        "debian_corpus",
        "find_cycles",
    ],
    "repro.telemetry": [
        "CacheStats",
        "Counter",
        "Gauge",
        "Histogram",
        "Metrics",
        "MetricsSnapshot",
        "SpanEvent",
        "active",
        "count",
        "disable",
        "enable",
        "enabled",
        "observe",
        "set_gauge",
        "span",
        "timer",
    ],
    "repro.service": [
        "CLOSED",
        "CircuitBreaker",
        "HALF_OPEN",
        "HttpError",
        "OPEN",
        "ServiceClient",
        "ServiceConfig",
        "ServiceResponse",
        "ServiceThread",
        "VerdictService",
        "serve",
    ],
    "repro.session": [
        "Session",
        "analyse",
        "compare",
        "default_session",
        "observe",
        "repair",
        "simulate",
        "sweep",
        "verdict",
        "verify",
    ],
    "repro.verification": [
        "AssertStmt",
        "Assign",
        "BinOp",
        "BoundedModelChecker",
        "Const",
        "FenceStmt",
        "IfStmt",
        "LoadStmt",
        "Program",
        "StoreStmt",
        "Var",
        "VerificationResult",
        "WhileStmt",
        "all_examples",
        "apache_example",
        "postgresql_example",
        "rcu_example",
        "verify_batch",
        "verify_litmus",
        "verify_program",
    ],
}


def test_root_all_matches_the_snapshot():
    import repro

    assert sorted(repro.__all__) == sorted(ROOT_API)


def test_every_root_name_resolves():
    import repro

    for name in ROOT_API:
        assert getattr(repro, name) is not None, name
    # Resolved names are cached into the package namespace.
    assert "Session" in vars(repro)


def test_unknown_root_names_raise_attribute_error():
    import repro

    with pytest.raises(AttributeError):
        repro.definitely_not_a_public_name


def test_dir_lists_the_lazy_exports():
    import repro

    listing = dir(repro)
    for name in ROOT_API:
        assert name in listing


@pytest.mark.parametrize("module_name", sorted(SUBPACKAGE_API))
def test_subpackage_all_matches_the_snapshot(module_name):
    module = importlib.import_module(module_name)
    assert sorted(module.__all__) == sorted(SUBPACKAGE_API[module_name])
    for name in module.__all__:
        assert getattr(module, name) is not None, f"{module_name}.{name}"


def test_importing_repro_is_lazy():
    """``import repro`` must not import any driver; touching one verb
    must only import what that verb needs."""
    code = (
        "import sys; import repro; "
        "heavy = [m for m in sys.modules if m.startswith('repro.')]; "
        "assert not heavy, f'import repro pulled in {heavy}'; "
        "repro.get_test; "
        "assert 'repro.litmus.registry' in sys.modules; "
        "assert 'repro.fences' not in sys.modules; "
        "assert 'repro.verification' not in sys.modules"
    )
    subprocess.run(
        [sys.executable, "-c", code],
        check=True,
        env={"PYTHONPATH": "src"},
        cwd=__file__.rsplit("/tests/", 1)[0],
    )
