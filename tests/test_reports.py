"""The uniform Report protocol: every result type the toolbox produces
implements ``describe``/``to_dict``/``to_json``, ``to_dict`` is
JSON-plain (``json.loads(r.to_json()) == r.to_dict()`` exactly), and
verdict-bearing results expose ``verdict``.
"""

from __future__ import annotations

import json

import pytest

from repro.diy.families import (
    compare_placement_costs,
    sweep_family,
    two_thread_family,
)
from repro.fences.campaign import repair_family
from repro.fences.validate import repair_test
from repro.hardware.chips import default_power_chips
from repro.hardware.testing import run_campaign
from repro.herd.simulator import simulate
from repro.litmus.registry import get_test
from repro.mole.corpus import debian_corpus
from repro.mole.report import analyse_corpus
from repro.report import Report, plain
from repro.verification.bmc import verify_litmus


@pytest.fixture(scope="module")
def reports():
    """One instance of every result type, built once for the module."""
    mp = get_test("mp")
    family = two_thread_family("power", limit=6)
    chips = default_power_chips()
    corpus = debian_corpus()
    campaign = run_campaign([mp, get_test("sb")], chips, "power", iterations=10_000)
    built = {
        "simulation": simulate(mp, "power"),
        "repair": repair_test(mp, "power"),
        "repair-campaign": repair_family(family[:4], "power"),
        "observed-test": campaign.results[0],
        "hardware-campaign": campaign,
        "mole-census": analyse_corpus({"postgresql": corpus["postgresql"]})["postgresql"],
        "family-sweep": sweep_family(family, "power"),
        "cost-comparison": compare_placement_costs(family[:4], "power"),
        "verification": verify_litmus(mp, "power"),
    }
    return built


def test_every_result_type_conforms_to_the_protocol(reports):
    for name, report in reports.items():
        assert isinstance(report, Report), name
        description = report.describe()
        assert isinstance(description, str) and description, name


def test_to_dict_round_trips_through_json_exactly(reports):
    for name, report in reports.items():
        as_dict = report.to_dict()
        assert json.loads(report.to_json()) == as_dict, name
        # The dictionary is already JSON-plain: coercion is a no-op.
        assert plain(as_dict) == as_dict, name
        assert as_dict["type"] == name


def test_to_json_is_deterministic_and_indentable(reports):
    for report in reports.values():
        assert report.to_json() == report.to_json()
        assert json.loads(report.to_json(indent=2)) == report.to_dict()


def test_verdict_bearing_reports_expose_their_verdict(reports):
    assert reports["simulation"].verdict in ("Allow", "Forbid")
    assert reports["simulation"].to_dict()["verdict"] == reports["simulation"].verdict
    assert reports["repair"].verdict == reports["repair"].after_verdict
    assert reports["observed-test"].verdict == reports["observed-test"].model_verdict


def test_dict_content_matches_the_live_objects(reports):
    simulation = reports["simulation"]
    as_dict = simulation.to_dict()
    assert as_dict["num_candidates"] == simulation.num_candidates
    assert len(as_dict["allowed_outcomes"]) == len(simulation.allowed_outcomes)

    campaign = reports["repair-campaign"]
    assert campaign.to_dict()["num_repaired"] == campaign.num_repaired
    assert len(campaign.to_dict()["reports"]) == campaign.num_tests

    census = reports["mole-census"]
    assert census.to_dict()["patterns"] == census.patterns()

    swept = reports["family-sweep"]
    assert swept.to_dict()["verdicts"] == [list(row) for row in swept.verdicts]

    verification = reports["verification"]
    assert verification.to_dict()["safe"] == verification.safe

    observed = reports["observed-test"]
    per_chip = observed.to_dict()["observed_outcomes"]
    assert set(per_chip) == set(observed.observed_outcomes)
    for chip, counts in observed.observed_outcomes.items():
        assert sum(per_chip[chip].values()) == sum(counts.values())


def test_plain_coerces_arbitrary_structures():
    assert plain((1, 2)) == [1, 2]
    assert plain(frozenset({("a", 1)})) == [["a", 1]]
    assert plain({1: {"x"}}) == {"1": ["x"]}
    assert plain(None) is None
    assert isinstance(plain(object()), str)
