"""Tests for events and actions."""

from repro.core.events import (
    BranchEvent,
    Event,
    FenceEvent,
    MemoryRead,
    MemoryWrite,
    RegisterRead,
    RegisterWrite,
    event_name,
    addr,
    proc,
)


def test_action_predicates():
    assert MemoryRead("x", 0).is_read()
    assert MemoryRead("x", 0).is_memory_access()
    assert MemoryWrite("x", 1).is_write()
    assert not MemoryWrite("x", 1).is_read()
    assert RegisterRead("r1", 0).is_register_access()
    assert RegisterWrite("r1", 0).is_register_access()
    assert BranchEvent().is_branch()
    assert FenceEvent("sync").is_fence()


def test_event_accessors():
    event = Event(thread=2, poi=1, eid="a", action=MemoryWrite("y", 3))
    assert proc(event) == 2
    assert addr(event) == "y"
    assert event.value == 3
    assert event.is_write() and not event.is_read()
    assert not event.is_init()


def test_init_event_detection():
    event = Event(thread=-1, poi=0, eid="init_x", action=MemoryWrite("x", 0))
    assert event.is_init()


def test_fence_event_name_matching():
    event = Event(thread=0, poi=0, eid="f", action=FenceEvent("lwsync"))
    assert event.is_fence()
    assert event.is_fence("lwsync")
    assert not event.is_fence("sync")


def test_register_event_accessors():
    event = Event(thread=0, poi=0, eid="r", action=RegisterRead("r5", 7))
    assert event.register == "r5"
    assert event.location is None
    assert event.value == 7


def test_event_ordering_is_by_thread_then_poi():
    first = Event(thread=0, poi=0, eid="a", action=MemoryWrite("x", 1))
    second = Event(thread=0, poi=1, eid="b", action=MemoryWrite("x", 2))
    third = Event(thread=1, poi=0, eid="c", action=MemoryWrite("x", 3))
    assert sorted([third, second, first]) == [first, second, third]


def test_event_string_rendering():
    event = Event(thread=0, poi=0, eid="a", action=MemoryRead("x", 1))
    assert "Rx=1" in str(event)
    assert "T0" in str(event)


def test_event_name_generation():
    assert event_name(0) == "a"
    assert event_name(25) == "z"
    assert event_name(26) == "aa"
    assert event_name(27) == "ab"
