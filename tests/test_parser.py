"""Tests for the litmus text-format parser."""

import pytest

from repro.herd import simulate
from repro.litmus.instructions import Fence, Load, MoveImmediate, Store, Xor
from repro.litmus.parser import LitmusParseError, parse_litmus

MP_POWER = """
Power mp+lwsync+addr
"message passing with lwsync and an address dependency"
{
0:r2=x; 0:r4=y;
1:r2=y; 1:r4=x;
x=0; y=0;
}
 P0           | P1            ;
 li r1,1      | lwz r1,0(r2)  ;
 stw r1,0(r2) | xor r3,r1,r1  ;
 lwsync       | lwzx r5,r3,r4 ;
 li r3,1      |               ;
 stw r3,0(r4) |               ;
exists (1:r1=1 /\\ 1:r5=0)
"""

MP_ARM = """
ARM mp+dmb+addr
{
0:r2=x; 0:r4=y;
1:r2=y; 1:r4=x;
}
 P0           | P1            ;
 mov r1,#1    | ldr r1,[r2]   ;
 str r1,[r2]  | eor r3,r1,r1  ;
 dmb          | ldr r5,[r4,r3];
 mov r3,#1    |               ;
 str r3,[r4]  |               ;
exists (1:r1=1 /\\ 1:r5=0)
"""

SB_X86 = """
X86 sb
{ x=0; y=0; }
 P0          | P1          ;
 mov r1,$1   | mov r1,$1   ;
 mov [x],r1  | mov [y],r1  ;
 mov r2,[y]  | mov r2,[x]  ;
exists (0:r2=0 /\\ 1:r2=0)
"""


def test_parse_power_header_and_init():
    test = parse_litmus(MP_POWER)
    assert test.name == "mp+lwsync+addr"
    assert test.arch == "power"
    assert test.doc.startswith("message passing")
    assert test.init_registers[(0, "r2")] == "x"
    assert test.init_registers[(1, "r4")] == "x"
    assert test.init_memory == {"x": 0, "y": 0}


def test_parse_power_instructions():
    test = parse_litmus(MP_POWER)
    t0, t1 = test.threads
    assert isinstance(t0[0], MoveImmediate) and t0[0].value == 1
    assert isinstance(t0[1], Store)
    assert isinstance(t0[2], Fence) and t0[2].name == "lwsync"
    assert isinstance(t1[0], Load) and t1[0].index_reg is None
    assert isinstance(t1[1], Xor)
    assert isinstance(t1[2], Load) and t1[2].index_reg == "r3"


def test_parse_condition_atoms():
    test = parse_litmus(MP_POWER)
    assert test.condition is not None
    assert test.condition.kind == "exists"
    assert {str(atom) for atom in test.condition.atoms} == {"1:r1=1", "1:r5=0"}


def test_parsed_power_test_gives_paper_verdicts():
    test = parse_litmus(MP_POWER)
    assert simulate(test, "power").verdict == "Forbid"
    assert simulate(test, "tso").verdict == "Forbid"


def test_parse_arm_dialect_and_verdict():
    test = parse_litmus(MP_ARM)
    assert test.arch == "arm"
    assert simulate(test, "arm").verdict == "Forbid"
    assert simulate(test, "power-arm").verdict == "Forbid"


def test_parse_x86_dialect_and_tso_verdict():
    test = parse_litmus(SB_X86)
    assert test.arch == "x86"
    assert simulate(test, "tso").verdict == "Allow"
    assert simulate(test, "sc").verdict == "Forbid"


def test_parse_errors_on_unknown_arch():
    with pytest.raises(LitmusParseError):
        parse_litmus("MIPS t\n{ }\n P0 ;\n nop ;\nexists (x=0)")


def test_parse_errors_on_unknown_instruction():
    bad = MP_POWER.replace("lwsync", "frobnicate")
    with pytest.raises(LitmusParseError):
        parse_litmus(bad)


def test_parse_errors_on_missing_init_section():
    with pytest.raises(LitmusParseError):
        parse_litmus("Power t\n P0 ;\n sync ;\nexists (x=0)")


def test_roundtrip_pretty_contains_program():
    test = parse_litmus(MP_POWER)
    text = test.pretty()
    assert "lwsync" in text and "exists" in text
