"""Integration tests for the herd simulator and cross-model properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.diy.cycles import Cycle, coe, dep, fenced, fre, po, rfe
from repro.diy.generator import generate_test
from repro.herd import Simulator, simulate
from repro.litmus.registry import get_test


def test_simulation_result_fields_for_sb():
    result = simulate(get_test("sb"), "tso")
    assert result.model_name == "tso"
    assert result.num_candidates == 4
    assert result.num_allowed == 4
    assert result.target_reachable and result.verdict == "Allow"
    assert result.condition_holds  # the exists clause is satisfied
    assert len(result.allowed_outcomes) == 4
    assert result.allowed_outcomes <= result.all_outcomes
    assert "sb" in result.describe()


def test_simulation_result_forbidden_outcome_excluded():
    result = simulate(get_test("mp"), "sc")
    # Under SC the (1, 0) outcome of mp is excluded but others remain.
    assert result.verdict == "Forbid"
    assert len(result.allowed_outcomes) == 3
    assert len(result.all_outcomes) == 4


def test_keep_candidates_returns_both_sides():
    simulator = Simulator("sc")
    result = simulator.run(get_test("sb"), keep_candidates=True, stop_at_first_violation=False)
    assert len(result.allowed_candidates) == result.num_allowed
    assert len(result.forbidden_candidates) == result.num_candidates - result.num_allowed
    for _, check in result.forbidden_candidates:
        assert check.violations


def test_simulator_accepts_model_like_objects():
    from repro.core.architectures import power_architecture
    from repro.core.model import Model

    test = get_test("mp+lwsync+addr")
    assert simulate(test, power_architecture()).verdict == "Forbid"
    assert simulate(test, Model(power_architecture())).verdict == "Forbid"
    with pytest.raises(TypeError):
        simulate(test, 42)


MODEL_STRENGTH_ORDER = ("sc", "tso", "power")


@pytest.mark.parametrize(
    "name",
    ["mp", "sb", "lb", "r", "s", "2+2w", "wrc", "rwc", "iriw", "coRR", "coWW"],
)
def test_allowed_outcomes_grow_as_models_weaken(name):
    """SC ⊆ TSO ⊆ Power in terms of allowed outcomes (model strength)."""
    test = get_test(name)
    outcomes = [simulate(test, model).allowed_outcomes for model in MODEL_STRENGTH_ORDER]
    assert outcomes[0] <= outcomes[1] <= outcomes[2]


_PER_THREAD = st.sampled_from(
    [
        lambda a, b: po(a, b),
        lambda a, b: fenced("lwsync", a, b),
        lambda a, b: fenced("sync", a, b),
        lambda a, b: dep("addr", b) if a == "R" else po(a, b),
        lambda a, b: dep("ctrl", b) if a == "R" else po(a, b),
    ]
)
_COMM = st.sampled_from([rfe, fre, coe])


@given(
    comm1=_COMM, comm2=_COMM, mech1=_PER_THREAD, mech2=_PER_THREAD
)
@settings(max_examples=25, deadline=None)
def test_property_generated_two_thread_tests_are_well_behaved(comm1, comm2, mech1, mech2):
    """Any two-thread critical cycle yields a well-formed test whose allowed
    outcomes respect the model-strength inclusions.

    SC ⊆ TSO and SC ⊆ Power hold unconditionally.  TSO ⊆ Power only
    holds for fence-free tests: TSO does not interpret Power's fences,
    so e.g. sb+syncs is forbidden by Power yet allowed by TSO.
    """
    first_dirs = (comm2().dst_dir, comm1().src_dir)
    second_dirs = (comm1().dst_dir, comm2().src_dir)
    edges = [
        mech1(*first_dirs),
        comm1(),
        mech2(*second_dirs),
        comm2(),
    ]
    test = generate_test(Cycle.of(edges))
    outcomes = [simulate(test, model).allowed_outcomes for model in MODEL_STRENGTH_ORDER]
    assert outcomes[0] <= outcomes[1]
    assert outcomes[0] <= outcomes[2]
    if not any(edge.fence is not None for edge in edges):
        assert outcomes[1] <= outcomes[2]
    # The SC simulator allows at least one outcome of every test.
    assert outcomes[0]


def test_every_registry_test_has_at_least_one_sc_outcome():
    for name in ("mp", "sb", "lb", "iriw", "wrc", "isa2", "w+rw+2w"):
        result = simulate(get_test(name), "sc")
        assert result.allowed_outcomes, name
