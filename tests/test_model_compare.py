"""The model comparator, end to end: corpora, paired verdicts,
classification, witness minimality, the Session verb and the CLI.

The load-bearing facts are the paper's (Alglave-Maranget-Tautschnig
Sec. 8 / memalloy): TSO and Power are incomparable over the full corpus
(Power relaxes store buffering further, but interprets fences TSO does
not), the smallest TSO-allows/Power-forbids witnesses are the 4-event
sync-fenced cycles (``r+syncs``, ``sb+syncs``, ``wr+ww+syncs``), and on
the fence-free corpus the hierarchy is total: sc >= tso >= power.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.compare import (
    ComparisonReport,
    CorpusBudget,
    classify,
    compare_models,
    comparison_corpus,
    event_count,
    find_distinguishing_tests,
    minimal_witness,
    paired_verdicts,
    size_key,
    uses_dependencies,
    uses_fences,
)
from repro.litmus.registry import get_test
from repro.session import Session

SMALL = CorpusBudget(max_events=4)


# -- the corpus ---------------------------------------------------------------------


def test_corpus_respects_the_budget():
    budget = CorpusBudget(max_events=5, max_threads=2)
    corpus = comparison_corpus(budget)
    assert corpus, "the budget corpus must not be empty"
    for test in corpus:
        assert event_count(test) <= 5, test.name
        assert test.num_threads() <= 2, test.name


def test_corpus_is_deduplicated_and_size_sorted():
    corpus = comparison_corpus(CorpusBudget(max_events=6))
    names = [test.name for test in corpus]
    assert len(names) == len(set(names))
    keys = [size_key(test) for test in corpus]
    assert keys == sorted(keys)


def test_fence_free_corpus_has_no_fences():
    corpus = comparison_corpus(CorpusBudget(max_events=6, fences=False))
    assert corpus
    for test in corpus:
        assert not uses_fences(test), test.name


def test_dependency_free_corpus_has_no_dependency_idioms():
    corpus = comparison_corpus(
        CorpusBudget(max_events=6, fences=False, dependencies=False)
    )
    assert corpus
    for test in corpus:
        assert not uses_dependencies(test), test.name


def test_event_count_counts_memory_accesses():
    assert event_count(get_test("sb")) == 4
    assert event_count(get_test("iriw")) == 6


def test_limit_keeps_the_smallest_tests():
    full = comparison_corpus(CorpusBudget(max_events=6))
    limited = comparison_corpus(CorpusBudget(max_events=6, limit=10))
    assert [t.name for t in limited] == [t.name for t in full[:10]]


def test_bad_budgets_are_rejected():
    with pytest.raises(ValueError):
        CorpusBudget(max_events=3)
    with pytest.raises(ValueError):
        CorpusBudget(max_threads=1)
    with pytest.raises(ValueError):
        CorpusBudget(limit=0)


# -- the paper's separations --------------------------------------------------------


def test_tso_vs_power_rediscovers_the_sync_separators():
    report = compare_models("tso", "power", budget=SMALL)
    assert report.verdict == "incomparable"
    # The minimal TSO-allows/Power-forbids witness is a 4-event
    # sync-fenced cycle; sb+syncs is rediscovered among the separators.
    assert report.witness_a is not None
    assert report.witness_a.events == 4
    assert report.witness_a.name == "r+syncs"
    assert "sb+syncs" in report.distinguishing
    assert report.verdicts_of("sb+syncs") == ("Allow", "Forbid")
    # The converse direction exists too (Power relaxes what TSO keeps).
    assert report.witness_b is not None
    assert report.verdicts_of(report.witness_b.name) == ("Forbid", "Allow")


@pytest.mark.parametrize(
    "strong,weak", [("sc", "tso"), ("tso", "power"), ("sc", "power")]
)
def test_fence_free_hierarchy_is_total(strong, weak):
    budget = CorpusBudget(max_events=6, fences=False)
    report = compare_models(strong, weak, budget=budget)
    assert report.verdict == "stronger", report.describe()
    assert report.witness_a is None
    assert report.witness_b is not None


def test_model_compared_with_itself_is_equivalent_on_corpus():
    report = compare_models("power", "power", budget=SMALL)
    assert report.verdict == "equivalent-on-corpus"
    assert report.witness_a is None and report.witness_b is None
    assert report.distinguishing == ()
    assert report.equivalent


# -- paired verdicts: sharded == serial ---------------------------------------------


def test_sharded_paired_verdicts_match_serial():
    corpus = comparison_corpus(CorpusBudget(max_events=4, limit=40))
    serial = paired_verdicts(corpus, ("tso", "power"))
    sharded = paired_verdicts(corpus, ("tso", "power"), processes=2)
    assert sharded == serial


def test_session_compare_shards_over_the_warm_pool():
    with Session(model="power", processes=2) as session:
        report = session.compare("tso", "power", budget=SMALL)
    assert report.verdict == "incomparable"
    assert report.witness_a.name == "r+syncs"


def test_session_compare_defaults_to_the_session_model():
    with Session(model="power", processes=1) as session:
        report = session.compare("tso", budget=SMALL)
    assert report.model_b == "power"


# -- witness minimality -------------------------------------------------------------


def test_witness_is_minimal_against_a_brute_force_scan():
    budget = CorpusBudget(max_events=5)
    report = compare_models("tso", "power", budget=budget)
    by_name = {test.name: test for test in comparison_corpus(budget)}
    brute = sorted(
        (
            size_key(by_name[name])
            for name in report.distinguishing
            if report.verdicts_of(name) == ("Allow", "Forbid")
        ),
    )
    assert report.witness_a is not None
    assert size_key(by_name[report.witness_a.name]) == brute[0]


def test_minimality_recheck_sweeps_smaller_corpus_members():
    # The caller hands over only sb+syncs: distinguishing, but not
    # minimal.  With a budget alongside, the re-check must sweep the
    # smaller corpus members and land on r+syncs instead.
    report = compare_models(
        "tso", "power", tests=[get_test("sb+syncs")], budget=SMALL
    )
    assert report.witness_a is not None
    assert report.witness_a.name == "r+syncs"
    # Without the budget the supplied tests are the whole world.
    unchecked = compare_models("tso", "power", tests=[get_test("sb+syncs")])
    assert unchecked.witness_a.name == "sb+syncs"


# -- the violates/satisfies filter --------------------------------------------------


def test_find_distinguishing_tests_matches_the_known_separators():
    matches = find_distinguishing_tests(
        violates="power", satisfies="tso", budget=SMALL
    )
    assert [test.name for test in matches] == [
        "r+syncs",
        "sb+syncs",
        "wr+ww+syncs",
    ]


def test_find_distinguishing_tests_requires_a_model():
    with pytest.raises(ValueError):
        find_distinguishing_tests(budget=SMALL)


# -- classification and report protocol ---------------------------------------------


def test_classify_covers_all_four_verdicts():
    allow_a = ("t1", "Allow", "Forbid", 4, 2)
    allow_b = ("t2", "Forbid", "Allow", 4, 2)
    same = ("t3", "Allow", "Allow", 4, 2)
    assert classify([allow_a, allow_b]) == "incomparable"
    assert classify([allow_b, same]) == "stronger"
    assert classify([allow_a, same]) == "weaker"
    assert classify([same]) == "equivalent-on-corpus"


def test_minimal_witness_orders_by_events_threads_name():
    rows = [
        ("zz", "Allow", "Forbid", 4, 2),
        ("aa", "Allow", "Forbid", 6, 2),
        ("mm", "Allow", "Forbid", 4, 3),
    ]
    witness = minimal_witness(rows, "a", "b", "a")
    assert witness.name == "zz"
    assert minimal_witness(rows, "a", "b", "b") is None


def test_report_json_round_trips():
    report = compare_models("tso", "power", budget=SMALL)
    assert isinstance(report, ComparisonReport)
    assert json.loads(report.to_json()) == report.to_dict()
    payload = report.to_dict()
    assert payload["type"] == "model-comparison"
    assert payload["witness_a"]["test"] == "r+syncs"
    assert payload["budget"]["max_events"] == 4


def test_describe_names_both_witnesses():
    text = compare_models("tso", "power", budget=SMALL).describe()
    assert "incomparable" in text
    assert "tso allows r+syncs" in text


# -- the command line ---------------------------------------------------------------


def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.compare", *args],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src"},
        cwd=__file__.rsplit("/tests/", 1)[0],
    )


def test_cli_compares_two_models():
    done = _run_cli("tso", "power", "--events", "4")
    assert done.returncode == 0, done.stderr
    assert "incomparable" in done.stdout
    assert "r+syncs" in done.stdout


def test_cli_json_output_is_the_report_dict():
    done = _run_cli("tso", "power", "--events", "4", "--json")
    assert done.returncode == 0, done.stderr
    payload = json.loads(done.stdout)
    assert payload["verdict"] == "incomparable"
    assert payload["witness_a"]["test"] == "r+syncs"


def test_cli_filter_mode_lists_separators():
    done = _run_cli(
        "--violates", "power", "--satisfies", "tso", "--events", "4"
    )
    assert done.returncode == 0, done.stderr
    assert "sb+syncs" in done.stdout


def test_cli_usage_errors_exit_2():
    assert _run_cli("tso").returncode == 2
    assert _run_cli("tso", "power", "--violates", "sc").returncode == 2
